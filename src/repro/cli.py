"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                    # artifacts and benchmarks
    python -m repro table1|table2|table3|table4|fig5
    python -m repro fig9  [--steps N]
    python -m repro fig10|fig11|fig12|fig13|fig14  [--steps N]
    python -m repro fig15 [--steps N]
    python -m repro fig16 [--steps N] [--profile] [--matrix]
    # figure sweeps also accept [--jobs N] [--no-cache] [--cache-dir DIR]
    python -m repro sharing                 # future-work tenancy studies
    python -m repro fault-tolerance [--config NAME] [--steps N] [--seed S]
                                            # chaos + recovery study
    python -m repro elasticity [--benchmark B] [--steps N] [--smoke]
                               [--output study.json]
                                            # elastic resize study
    python -m repro recommend <benchmark>   # topology recommendation
    python -m repro train <benchmark> [--config NAME] [--steps N]
                                            [--export out.csv|out.json]
                                            [--trace-out trace.json]
    python -m repro trace <benchmark> [--backend local|falcon|hybrid]
                                      [--steps N] [--trace-out trace.json]
                                      [--smoke]
    python -m repro plan <benchmark> [--strategy dp|ddp|sharded|pipeline
                                                 |tp|2d|fsdp]
                                     [--config NAME] [--validate]
                                     [--global-batch N] [--accumulation N]
                                     [--diff OTHER-STRATEGY]
                                     [--opt PASS[,PASS...]|all]
    python -m repro matrix [--smoke] [--steps N] [--models A,B]
                           [--strategies A,B] [--opt PASS|all]
                           [--output grid.json]
                                            # strategy x model crossover
                                            # frontier on both backends
    python -m repro fig16-opt [--steps N] [--trace-out trace.json]
    python -m repro perfbench [--smoke] [--jobs N] [--output DIR]
    python -m repro profile <benchmark> [--backend local|falcon|hybrid]
                                        [--strategy dp|...|tp|2d|fsdp]
                                        [--steps N] [--format text|json]
                                        [--global-batch N]
                                        [--accumulation N]
                                        [--no-what-if] [--output PATH]
    python -m repro regress [--baseline PATH] [--tolerance F] [--full]
                            [--output PATH]
    python -m repro fleet [--smoke] [--chassis N] [--hosts N]
                          [--gpus-per-chassis N] [--oversub F]
                          [--trace-jobs N] [--seed S] [--interarrival F]
                          [--output PATH]
                                            # multi-chassis fleet study

Every command prints the same rows the paper's tables/figures report.
``trace`` writes a Chrome/Perfetto ``trace_event`` JSON (open in
``chrome://tracing`` or https://ui.perfetto.dev) and prints the per-step
compute/comm/stall/checkpoint attribution; non-local backends also trace
a local baseline and print the Fig. 11 overhead split derived from spans.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import (
    COMM_REQUIREMENTS,
    CONFIGURATION_DESCRIPTIONS,
    CONFIGURATION_ORDER,
    ComposableSystem,
    SOFTWARE_STACK,
)
from .workloads import benchmark_names, get_benchmark

__all__ = ["main", "build_parser"]

#: ``trace --backend`` choices -> Table III configurations.
TRACE_BACKENDS = {
    "local": "localGPUs",
    "falcon": "falconGPUs",
    "hybrid": "hybridGPUs",
}

#: ``plan --strategy`` choices; resolved via ``STRATEGY_REGISTRY``.
PLAN_STRATEGIES = ("dp", "ddp", "sharded", "pipeline", "tp", "2d",
                   "fsdp")


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    """``--jobs``/``--no-cache``/``--cache-dir`` for the sweep commands."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="run sweep cells across N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the on-disk result "
                             "cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Composable-system DL performance analysis "
                    "(IPPS 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list artifacts and benchmarks")
    for name in ("table1", "table2", "table3", "table4", "fig5"):
        sub.add_parser(name, help=f"print {name}")
    for name in ("fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                 "fig15", "fig16", "sharing", "scaleout", "scaling"):
        p = sub.add_parser(name, help=f"run the {name} experiment")
        p.add_argument("--steps", type=int, default=8,
                       help="simulated optimizer steps per run")
        if name.startswith("fig1"):
            # The Figs. 10-16 sweeps run many independent cells; they
            # take the parallel/memoized harness knobs.
            _add_parallel_args(p)
        if name == "fig16":
            p.add_argument("--profile", action="store_true",
                           help="annotate every grid cell with its "
                                "bottleneck label (plan-level "
                                "critical-path attribution)")
            p.add_argument("--matrix", action="store_true",
                           help="also print the strategy crossover "
                                "frontier for the fig16 benchmark "
                                "(every registered strategy on both "
                                "backends)")

    ft = sub.add_parser("fault-tolerance",
                        help="chaos scenario vs resilient training")
    ft.add_argument("--benchmark", default="bert-large",
                    choices=benchmark_names())
    ft.add_argument("--config", default="falconGPUs",
                    choices=CONFIGURATION_ORDER)
    ft.add_argument("--steps", type=int, default=8)
    ft.add_argument("--interval", type=int, default=2,
                    help="checkpoint every N optimizer steps")
    ft.add_argument("--seed", type=int, default=None,
                    help="randomized scenario seed (default: scripted "
                         "cable-pull scenario)")
    ft.add_argument("--no-spare", action="store_true",
                    help="do not install a standby chassis GPU")
    ft.add_argument("--sweep", action="store_true",
                    help="also sweep checkpoint cadence under a port flap")

    el = sub.add_parser("elasticity",
                        help="elastic training study: resize cost, "
                             "lost work vs checkpoint-restart, "
                             "autoscaling policies")
    el.add_argument("--benchmark", default="resnet50",
                    choices=benchmark_names())
    el.add_argument("--steps", type=int, default=12)
    el.add_argument("--smoke", action="store_true",
                    help="small run for CI; also verifies the batch "
                         "invariant and exits non-zero on violation")
    el.add_argument("--output", default=None, metavar="PATH",
                    help="write the full study JSON here")

    rec = sub.add_parser("recommend",
                         help="recommend a topology for a benchmark")
    rec.add_argument("benchmark", choices=benchmark_names())
    rec.add_argument("--steps", type=int, default=8)
    rec.add_argument("--tolerance", type=float, default=7.0,
                     help="acceptable slowdown vs fastest, percent")

    train = sub.add_parser("train", help="run one training job")
    train.add_argument("benchmark", choices=benchmark_names())
    train.add_argument("--config", default="localGPUs",
                       choices=CONFIGURATION_ORDER)
    train.add_argument("--steps", type=int, default=10)
    train.add_argument("--export", default=None,
                       help="write the record to a .json or .csv file")
    train.add_argument("--trace-out", default=None,
                       help="also capture spans and write a Chrome "
                            "trace_event JSON file")

    trace = sub.add_parser(
        "trace", help="trace one short run and attribute its time")
    trace.add_argument("benchmark", choices=benchmark_names())
    trace.add_argument("--backend", default="falcon",
                       choices=sorted(TRACE_BACKENDS),
                       help="GPU attachment to trace (default: falcon; "
                            "non-local backends also trace a local "
                            "baseline for the overhead split)")
    trace.add_argument("--steps", type=int, default=10)
    trace.add_argument("--trace-out", default=None,
                       help="write the Chrome trace_event JSON here")
    trace.add_argument("--smoke", action="store_true",
                       help="tiny run + validate the trace against the "
                            "trace_event schema; non-zero exit on "
                            "violations")
    trace.add_argument("--timeline-width", type=int, default=72,
                       help="columns for the ASCII step timeline "
                            "(clamped to [8, 400])")

    fig16 = sub.add_parser(
        "fig16-opt", help="fig16 DDP variant with the optimizing plan "
                          "passes: exposed-sync closing the falcon gap")
    fig16.add_argument("--steps", type=int, default=6,
                       help="simulated optimizer steps per run")
    fig16.add_argument("--trace-out", default=None,
                       help="write a Chrome trace of the optimized run")
    fig16.add_argument("--profile", action="store_true",
                       help="annotate each optimized DDP cell with its "
                            "bottleneck label")
    _add_parallel_args(fig16)

    perfbench = sub.add_parser(
        "perfbench", help="benchmark the simulator itself: fast-path vs "
                          "event-loop plan evaluation and the Fig. 16 "
                          "grid wall-clock; writes BENCH_<date>.json")
    perfbench.add_argument("--smoke", action="store_true",
                           help="small cell subset for CI")
    perfbench.add_argument("--jobs", type=int, default=1,
                           help="also time the grid across N processes")
    perfbench.add_argument("--output", default=None, metavar="DIR",
                           help="directory for BENCH_<date>.json "
                                "(default: current directory)")

    autotune = sub.add_parser(
        "autotune", help="search plan-pass parameters (bucket cap, "
                         "chunk target, overlap on/off) per "
                         "configuration x variant; prints the "
                         "tuned-vs-default frontier and writes a "
                         "reusable TUNING.json")
    autotune.add_argument("--smoke", action="store_true",
                          help="reduced candidate grid and cell subset "
                               "for CI")
    autotune.add_argument("--no-what-if", action="store_true",
                          help="skip the per-cell what-if ceilings")
    autotune.add_argument("--output", default=None, metavar="DIR",
                          help="directory for TUNING.json "
                               "(default: current directory)")

    profile = sub.add_parser(
        "profile", help="profile one benchmark x strategy x backend "
                        "cell: critical-path attribution, utilization, "
                        "what-if speedup ceilings, bottleneck verdict")
    profile.add_argument("benchmark", choices=benchmark_names())
    profile.add_argument("--backend", default="falcon",
                         choices=sorted(TRACE_BACKENDS),
                         help="GPU attachment (default: falcon)")
    profile.add_argument("--strategy", default="ddp",
                         choices=PLAN_STRATEGIES)
    profile.add_argument("--steps", type=int, default=None,
                         help="simulated optimizer steps (default: the "
                              "training config's)")
    profile.add_argument("--opt", default=None, metavar="PASS[,PASS...]",
                         help="apply optimization passes before "
                              "profiling (names or 'all')")
    profile.add_argument("--global-batch", type=int, default=None,
                         help="override the benchmark's native global "
                              "batch (memory-hungry strategies may "
                              "need a smaller one)")
    profile.add_argument("--accumulation", type=int, default=1,
                         help="gradient accumulation steps "
                              "(default: 1)")
    profile.add_argument("--format", default="text",
                         choices=("text", "json"),
                         help="report format (default: text)")
    profile.add_argument("--no-what-if", action="store_true",
                         help="skip the what-if re-evaluations (faster; "
                              "keeps attribution and the verdict)")
    profile.add_argument("--output", default=None, metavar="PATH",
                         help="also write the JSON report here")

    matrix = sub.add_parser(
        "matrix", help="strategy x model crossover matrix: every "
                       "registered strategy on both backends, winners "
                       "by time/sample, and the models whose winner "
                       "flips between local and falcon")
    matrix.add_argument("--smoke", action="store_true",
                        help="two-model slice for CI; exits non-zero "
                             "unless a crossover model is found")
    matrix.add_argument("--steps", type=int, default=6,
                        help="simulated optimizer steps per cell")
    matrix.add_argument("--models", default=None,
                        metavar="NAME[,NAME...]",
                        help="benchmark subset (default: all)")
    matrix.add_argument("--strategies", default=None,
                        metavar="NAME[,NAME...]",
                        help="strategy subset (default: all registered)")
    matrix.add_argument("--opt", default=None, metavar="PASS[,PASS...]",
                        help="apply optimization passes to every cell "
                             "(names or 'all')")
    matrix.add_argument("--output", default=None, metavar="PATH",
                        help="also write the full grid as JSON here")
    _add_parallel_args(matrix)

    fleet = sub.add_parser(
        "fleet", help="multi-chassis fleet study: run a seeded job "
                      "trace through the cluster scheduler and report "
                      "utilization, queueing delay, and spine "
                      "contention")
    fleet.add_argument("--smoke", action="store_true",
                       help="small CI-sized run; also asserts the run "
                            "invariants and exits non-zero on violation")
    fleet.add_argument("--chassis", type=int, default=None,
                       help="Falcon chassis count (default: preset)")
    fleet.add_argument("--hosts", type=int, default=None,
                       help="composable host count (default: preset)")
    fleet.add_argument("--gpus-per-chassis", type=int, default=None,
                       help="GPUs installed per chassis (default: preset)")
    fleet.add_argument("--oversub", type=float, default=None,
                       help="host spine-uplink oversubscription factor "
                            "(default: preset)")
    fleet.add_argument("--trace-jobs", type=int, default=None,
                       help="jobs in the synthetic trace")
    fleet.add_argument("--seed", type=int, default=0,
                       help="trace generator seed")
    fleet.add_argument("--interarrival", type=float, default=None,
                       help="mean job inter-arrival time, seconds")
    fleet.add_argument("--output", default=None, metavar="PATH",
                       help="write the full study JSON here")

    regress = sub.add_parser(
        "regress", help="gate a fresh perfbench run against the "
                        "committed BENCH_*.json baseline; non-zero "
                        "exit on semantic drift or perf regression")
    regress.add_argument("--baseline", default=None, metavar="PATH",
                         help="baseline report (default: newest "
                              "BENCH_*.json in the current directory)")
    regress.add_argument("--tolerance", type=float, default=None,
                         help="allowed fractional speedup drop "
                              "(default: 0.35)")
    regress.add_argument("--full", action="store_true",
                         help="run the full perfbench instead of the "
                              "smoke subset")
    regress.add_argument("--output", default=None, metavar="PATH",
                         help="write the comparison JSON here")

    plan = sub.add_parser(
        "plan", help="compile one training step to the plan IR and "
                     "print it without simulating")
    plan.add_argument("benchmark", choices=benchmark_names())
    plan.add_argument("--strategy", default="ddp", choices=PLAN_STRATEGIES)
    plan.add_argument("--config", default="localGPUs",
                      choices=CONFIGURATION_ORDER)
    plan.add_argument("--global-batch", type=int, default=None,
                      help="override the benchmark's default global batch")
    plan.add_argument("--accumulation", type=int, default=1,
                      help="gradient-accumulation micro-steps (shrinks "
                           "the micro-batch, e.g. to fit tp/2d plans)")
    plan.add_argument("--validate", action="store_true",
                      help="run the cycle/rank-symmetry/bytes-conservation "
                           "passes; non-zero exit on problems")
    plan.add_argument("--diff", default=None, choices=PLAN_STRATEGIES,
                      metavar="OTHER",
                      help="also compile OTHER strategy's plan and print "
                           "an op-level diff against it (the same --opt "
                           "pipeline is applied to both sides)")
    plan.add_argument("--opt", default=None, metavar="PASS[,PASS...]",
                      help="apply optimization passes before printing: "
                           "comma-separated pass names or 'all' "
                           "(bucketing, overlap, copy-fusion, chunk-size)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Imported here so `--help` stays instant.
    from .experiments import (
        count_dips,
        gpu_config_sweep,
        gpu_utilization_trace,
        reconfiguration_study,
        relative_time_rows,
        render_table,
        ring_placement_study,
        run_configuration,
        software_optimization_study,
        storage_config_sweep,
        table4,
        telemetry_rows,
        tenancy_isolation_study,
        time_reduction_pct,
        traffic_rows,
        TopologyRecommender,
    )
    from .experiments.export import write_records
    from .experiments.sweeps import GPU_CONFIGS

    out = sys.stdout.write

    def sweep_kwargs():
        """``jobs``/``cache`` kwargs from the parallel-harness flags."""
        from .experiments import NullCache, ResultCache
        cache = (NullCache() if args.no_cache
                 else ResultCache(args.cache_dir))
        return {"jobs": args.jobs, "cache": cache}

    if args.command == "list":
        out("artifacts: table1 table2 table3 table4 fig5 fig9 fig10 "
            "fig11 fig12 fig13 fig14 fig15 fig16 sharing "
            "fault-tolerance elasticity fleet\n")
        out("benchmarks: " + " ".join(benchmark_names()) + "\n")
        out("configurations: " + " ".join(CONFIGURATION_ORDER) + "\n")
        return 0

    if args.command == "table1":
        out(render_table(["Component", "Version"],
                         sorted(SOFTWARE_STACK.items()),
                         title="Table I") + "\n")
        return 0

    if args.command == "table2":
        rows = []
        for key in benchmark_names():
            b = get_benchmark(key)
            g = b.build()
            rows.append((b.display_name, b.domain, b.dataset.name,
                         f"{g.params / 1e6:.1f}M", b.paper_depth))
        out(render_table(["Benchmark", "Domain", "Dataset", "Parameters",
                          "Depth"], rows, title="Table II") + "\n")
        return 0

    if args.command == "table3":
        out(render_table(["Label", "Host Configuration"],
                         list(CONFIGURATION_DESCRIPTIONS.items()),
                         title="Table III") + "\n")
        return 0

    if args.command == "table4":
        rows = [(k, round(r.bidirectional_bandwidth_gbs, 2),
                 round(r.p2p_write_latency_us, 2), r.protocol)
                for k, r in table4().items()]
        out(render_table(["Pair", "Bidir BW GB/s", "Latency us",
                          "Protocol"], rows, title="Table IV") + "\n")
        return 0

    if args.command == "fig5":
        out(render_table(
            ["Communication", "Latency", "Bandwidth", "Link Length"],
            [(r.path, r.latency, r.bandwidth, r.link_length)
             for r in COMM_REQUIREMENTS], title="Fig 5") + "\n")
        return 0

    if args.command == "fig9":
        rows = []
        for key in benchmark_names():
            trace = gpu_utilization_trace(key, sim_steps=args.steps * 3,
                                          sim_checkpoints=3)
            rows.append((key, round(trace.plateau_mean, 1),
                         round(trace.peak, 1), count_dips(trace)))
        out(render_table(["Benchmark", "Plateau %", "Peak %", "Dips"],
                         rows, title="Fig 9") + "\n")
        return 0

    if args.command in ("fig10", "fig11", "fig12", "fig13", "fig14"):
        sweep = gpu_config_sweep(sim_steps=args.steps, **sweep_kwargs())
        if args.command == "fig10":
            for metric in ("gpu_utilization", "gpu_memory",
                           "gpu_mem_access"):
                out(render_table(["Benchmark", *GPU_CONFIGS],
                                 telemetry_rows(sweep, metric),
                                 title=f"Fig 10: {metric}") + "\n\n")
        elif args.command == "fig11":
            out(render_table(["Benchmark", "hybrid %", "falcon %"],
                             relative_time_rows(sweep),
                             title="Fig 11") + "\n")
        elif args.command == "fig12":
            out(render_table(["Benchmark", "hybrid GB/s", "falcon GB/s"],
                             traffic_rows(sweep), title="Fig 12") + "\n")
        elif args.command == "fig13":
            out(render_table(["Benchmark", *GPU_CONFIGS],
                             telemetry_rows(sweep, "cpu_utilization"),
                             title="Fig 13") + "\n")
        else:
            out(render_table(["Benchmark", *GPU_CONFIGS],
                             telemetry_rows(sweep, "host_memory"),
                             title="Fig 14") + "\n")
        return 0

    if args.command == "fig15":
        sweep = storage_config_sweep(sim_steps=args.steps,
                                     **sweep_kwargs())
        out(render_table(["Benchmark", "localNVMe %", "falconNVMe %"],
                         relative_time_rows(sweep),
                         title="Fig 15") + "\n")
        return 0

    if args.command == "fig16":
        study = software_optimization_study(
            sim_steps=max(4, args.steps // 2), **sweep_kwargs())
        rows = [(v, round(study["localGPUs"][v] * 1e3, 3),
                 round(study["falconGPUs"][v] * 1e3, 3))
                for v in study["localGPUs"]]
        out(render_table(["Variant", "local ms/sample",
                          "falcon ms/sample"], rows,
                         title="Fig 16") + "\n")
        ddp = time_reduction_pct(study["localGPUs"]["DDP-FP32"],
                                 study["localGPUs"]["DDP-FP16"])
        out(f"FP16 over FP32 (DDP, local): {ddp:.1f}% reduction\n")
        if getattr(args, "profile", False):
            from .experiments import bottleneck_labels
            grid = bottleneck_labels()
            rows = [(v, grid["localGPUs"][v]["label"],
                     grid["falconGPUs"][v]["label"])
                    for v in study["localGPUs"]]
            out("\n" + render_table(
                ["Variant", "local bottleneck", "falcon bottleneck"],
                rows, title="Fig 16 bottleneck annotation "
                            "(critical-path attribution)") + "\n")
        if getattr(args, "matrix", False):
            from .experiments import format_matrix, run_matrix
            report = run_matrix(models=("bert-large",),
                                sim_steps=max(4, args.steps // 2),
                                **sweep_kwargs())
            out("\n" + format_matrix(report) + "\n")
        return 0

    if args.command == "fig16-opt":
        from .experiments import optimized_ddp_study
        study = optimized_ddp_study(sim_steps=args.steps,
                                    trace_out=args.trace_out,
                                    **sweep_kwargs())
        rows = []
        for name, profile in study.profiles.items():
            rows.append((name, round(profile.step_time * 1e3, 3),
                         round(profile.exposed_sync * 1e3, 3),
                         round(study.sync_reduction_pct(name), 1),
                         round(study.step_reduction_pct(name), 1)))
        out(render_table(
            ["Passes", "step ms", "exposed-sync ms", "sync cut %",
             "step cut %"], rows,
            title=f"{study.benchmark} DDP-FP16 on "
                  f"{study.configuration}: optimizing plan passes")
            + "\n")
        if study.trace_path:
            out(f"wrote optimized-run trace to {study.trace_path}\n")
        if getattr(args, "profile", False):
            from .experiments import bottleneck_labels
            from .experiments.software_opts import (
                OPT_PIPELINES,
                VARIANTS,
            )
            ddp16 = [v for v in VARIANTS if v.name == "DDP-FP16"]
            rows = []
            for name, spec in OPT_PIPELINES:
                grid = bottleneck_labels(
                    configurations=(study.configuration,),
                    variants=ddp16, benchmark=study.benchmark,
                    plan_passes=spec)
                cell = grid[study.configuration]["DDP-FP16"]
                shares = " ".join(f"{k}={v:.0%}" for k, v in
                                  sorted(cell["shares"].items()))
                rows.append((name, cell["label"], shares))
            out("\n" + render_table(
                ["Passes", "Bottleneck", "Critical-path shares"],
                rows, title="Optimized-DDP bottleneck annotation")
                + "\n")
        return 0

    if args.command == "perfbench":
        from .experiments import run_perfbench, write_bench_report
        report = run_perfbench(smoke=args.smoke, jobs=args.jobs)
        out(render_table(
            ["Configuration", "Variant", "Ops", "Fast steps/s",
             "Executor steps/s", "Speedup"],
            [(r["configuration"], r["variant"], r["ops"],
              round(r["fastpath_steps_per_s"], 1),
              round(r["executor_steps_per_s"], 1),
              round(r["speedup"], 2))
             for r in report["plan_eval"]],
            title="Plan evaluation: fast path vs event-loop executor")
            + "\n\n")
        grid = report["fig16_grid"]
        out(render_table(
            ["Metric", "Value"],
            [("cells", grid["cells"]),
             ("sim steps / cell", grid["sim_steps"]),
             ("event-loop study (s)", round(grid["baseline_eventloop_s"],
                                            3)),
             ("fast-path grid (s)", round(grid["fastpath_s"], 3)),
             ("fast-path grid, --jobs (s)",
              "-" if grid.get("fastpath_jobs_s") is None
              else round(grid["fastpath_jobs_s"], 3)),
             ("speedup", round(grid["speedup"], 2)),
             ("values match (<=1e-5)", grid["values_match"]),
             ("max relative error", f"{grid['max_rel_err']:.2e}")],
            title="Fig. 16 grid wall-clock") + "\n\n")
        batched = report["batched_grid"]
        out(render_table(
            ["Metric", "Value"],
            [("lanes (cells x factors)",
              f"{batched['cells']} x {len(batched['factors'])} = "
              f"{batched['lanes']}"),
             ("scalar fast path (s)",
              round(batched["scalar_fastpath_s"], 3)),
             ("batched replay (s)", round(batched["batched_s"], 3)),
             ("speedup vs scalar",
              round(batched["speedup_vs_scalar"], 2)),
             ("est. speedup vs event-loop study",
              round(batched["speedup_vs_eventloop_study"], 1)),
             ("diverged lanes (scalar fallback)",
              batched["diverged_lanes"]),
             ("values match (<=1e-9)", batched["values_match"])],
            title="Widened grid: batched tape replay") + "\n")
        path = write_bench_report(report, args.output)
        out(f"wrote {path}\n")
        return 0 if grid["values_match"] else 1

    if args.command == "autotune":
        from .experiments.autotune import run_autotune, write_tuning_table
        report = run_autotune(smoke=args.smoke,
                              what_if_ceilings=not args.no_what_if)
        rows = []
        for cell in report["cells"]:
            rows.append((cell["configuration"], cell["variant"],
                         f"{cell['default_makespan_s'] * 1e3:.3f}",
                         f"{cell['tuned_makespan_s'] * 1e3:.3f}",
                         f"{cell['improvement_pct']:.2f}%",
                         cell["tuned_candidate"]))
        out(render_table(
            ["Configuration", "Variant", "Default (ms)", "Tuned (ms)",
             "Win", "Tuned pipeline"],
            rows, title="Autotune frontier: tuned vs default passes")
            + "\n")
        meta = report["meta"]
        out(f"{meta['candidates']} candidates x {meta['cells']} cells "
            f"in {meta['wall_clock_s']:.1f}s\n")
        path = write_tuning_table(report, args.output)
        out(f"wrote {path}\n")
        return 0 if report["tuned_never_slower"] else 1

    if args.command == "sharing":
        iso = tenancy_isolation_study(sim_steps=max(4, args.steps // 2))
        place = ring_placement_study(sim_steps=max(4, args.steps // 2))
        rec = reconfiguration_study(sim_steps=max(4, args.steps // 2))
        out(f"tenant isolation interference: "
            f"{iso.interference_pct:+.2f}%\n")
        out(f"ring crossing penalty: {place.crossing_penalty_pct:+.1f}%, "
            f"shared-crossing interference: "
            f"{place.interference_pct:+.1f}%\n")
        out(f"reconfiguration: {rec.reconfiguration_seconds:.1f}s for "
            f"{rec.gpus_moved} GPUs, breakeven "
            f"{rec.breakeven_seconds:.1f}s\n")
        return 0

    if args.command == "scaleout":
        from .experiments import allreduce_scale_out_study, \
            dual_connection_study
        r = allreduce_scale_out_study()
        out(f"BERT-large gradient allreduce: NVLink "
            f"{r.local_nvlink * 1e3:.0f} ms, falcon "
            f"{r.falcon_pcie * 1e3:.0f} ms "
            f"({r.falcon_vs_local:.1f}x), 10GbE 2-host "
            f"{r.ethernet_2hosts * 1e3:.0f} ms "
            f"({r.ethernet_2hosts / r.local_nvlink:.1f}x)\n")
        d = dual_connection_study(sim_steps=max(4, args.steps // 2))
        out(f"dual-connection drawer on BERT-large: "
            f"{d.dual_vs_single_pct:+.1f}% vs single connection\n")
        return 0

    if args.command == "scaling":
        from .experiments import overhead_vs_batch, overhead_vs_model_size
        depth = overhead_vs_model_size(sim_steps=max(4, args.steps // 2))
        out(render_table(
            ["Layers", "Params M", "Falcon overhead %"],
            [(p.num_layers, round(p.params_m, 1),
              round(p.overhead_pct, 1)) for p in depth],
            title="Overhead vs depth (batch fixed at 6/GPU)") + "\n\n")
        batch = overhead_vs_batch(sim_steps=max(4, args.steps // 2))
        out(render_table(
            ["Batch/GPU", "Falcon overhead %"],
            [(p.batch_per_gpu, round(p.overhead_pct, 1)) for p in batch],
            title="Overhead vs per-GPU batch (BERT-large)") + "\n")
        return 0

    if args.command == "fault-tolerance":
        from .experiments import (checkpoint_cadence_sweep,
                                  fault_tolerance_study)
        r = fault_tolerance_study(
            benchmark=args.benchmark, configuration=args.config,
            sim_steps=args.steps, checkpoint_interval=args.interval,
            spare=not args.no_spare, seed=args.seed)
        out(render_table(
            ["Metric", "Value"],
            [("scenario", r.scenario),
             ("completed", r.completed),
             ("attempts", r.attempts),
             ("faults detected", r.faults),
             ("lost steps (rolled back)", r.lost_steps),
             ("MTTR (s)", round(r.mttr, 2)),
             ("raw throughput (samples/s)", round(r.raw_throughput, 1)),
             ("goodput (samples/s)", round(r.goodput, 1)),
             ("goodput fraction", round(r.goodput_fraction, 3)),
             ("final world size", r.final_world_size),
             ("recovery actions", " ".join(r.recovery_actions) or "-")],
            title=f"{args.benchmark} on {args.config} under chaos")
            + "\n")
        if args.sweep:
            sweep = checkpoint_cadence_sweep(
                benchmark=args.benchmark, sim_steps=max(8, args.steps))
            out("\n" + render_table(
                ["Ckpt interval", "Goodput", "Lost steps", "Wall s"],
                [(s.checkpoint_interval, round(s.goodput, 1),
                  s.lost_steps, round(s.wall_time, 2)) for s in sweep],
                title="Checkpoint cadence under H1 port flap") + "\n")
        return 0

    if args.command == "elasticity":
        import json

        from .experiments import elasticity_study
        study = elasticity_study(benchmark=args.benchmark,
                                 sim_steps=args.steps, smoke=args.smoke)
        acc = study["acceptance"]
        out(render_table(
            ["Metric", "Value"],
            [("completed", acc["completed"]),
             ("resizes", acc["resizes"]),
             ("world trajectory",
              " ".join(str(w) for w in acc["world_trajectory"])),
             ("effective batch (per step)",
              " ".join(str(b) for b in set(acc["effective_batches"]))),
             ("batch invariant", acc["batch_invariant"]),
             ("mean recompose (s)", round(acc["mean_recompose_s"], 3)),
             ("mean reshard (s)", round(acc["mean_reshard_s"], 4))],
            title=f"{args.benchmark}: one shrink + one grow "
                  "(acceptance)") + "\n\n")
        lost = study["lost_work"]
        out(render_table(
            ["Recovery", "Lost steps", "Goodput", "Wall s"],
            [(k, lost[k]["lost_steps"],
              round(lost[k]["goodput_samples_s"], 1),
              round(lost[k]["wall_time_s"], 2))
             for k in ("elastic", "checkpoint_restart")],
            title=f"Lost work (saved: {lost['lost_steps_saved']} steps)")
            + "\n\n")
        out(render_table(
            ["Resizes", "Goodput", "Completed"],
            [(r["label"], round(r["goodput_samples_s"], 1),
              r["completed"]) for r in study["reconfiguration_sweep"]],
            title="Goodput vs reconfiguration frequency") + "\n\n")
        out(render_table(
            ["Policy", "Final world", "Wasted grows", "Goodput"],
            [(k, r["final_world_size"], r["grow_abandoned"],
              round(r["goodput_samples_s"], 1))
             for k, r in study["autoscalers"].items()],
            title="Autoscaling policies") + "\n")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(study, fh, indent=1)
            out(f"wrote {args.output}\n")
        if args.smoke:
            ok = (acc["completed"] and acc["batch_invariant"]
                  and acc["resizes"] >= 2
                  and study["lost_work"]["lost_steps_saved"] > 0)
            out("smoke OK\n" if ok else "smoke FAILED\n")
            return 0 if ok else 1
        return 0

    if args.command == "recommend":
        recommender = TopologyRecommender(tolerance_pct=args.tolerance)
        recommendation = recommender.evaluate(args.benchmark,
                                              sim_steps=args.steps)
        out(render_table(
            ["Configuration", "Total s", "Samples/s", "Cost",
             "Slowdown %", "Tput/cost", "Note"],
            recommendation.table_rows(),
            title=f"{args.benchmark}: recommended = "
                  f"{recommendation.recommended}") + "\n")
        return 0

    if args.command == "train":
        if args.trace_out:
            from .experiments import traced_run
            from .telemetry import write_chrome_trace
            run = traced_run(args.benchmark, args.config,
                             sim_steps=args.steps)
            record = run.record
        else:
            run = None
            record = run_configuration(args.benchmark, args.config,
                                       sim_steps=args.steps)
        out(render_table(
            ["Metric", "Value"],
            [("step time (ms)", round(record.step_time * 1e3, 2)),
             ("throughput (samples/s)", round(record.throughput, 1)),
             ("epoch time (s)", round(record.epoch_time, 1)),
             ("total time (s)", round(record.total_time, 1)),
             ("GPU utilization (%)", round(record.gpu_utilization, 1)),
             ("falcon traffic (GB/s)",
              round(record.falcon_gpu_traffic_gbs, 2))],
            title=f"{args.benchmark} on {args.config}") + "\n")
        if args.export:
            path = write_records([record], args.export)
            out(f"wrote {path}\n")
        if run is not None:
            path = write_chrome_trace(run.tracer, args.trace_out)
            out(f"wrote trace ({len(run.tracer)} spans) to {path}\n")
        return 0

    if args.command == "trace":
        from .experiments import overhead_split, traced_run
        from .experiments.tracing import CATEGORIES
        from .telemetry import (
            render_ascii_timeline,
            render_flame_summary,
            to_chrome_trace,
            validate_chrome_trace,
            write_chrome_trace,
        )

        steps = max(3, args.steps // 3) if args.smoke else args.steps
        configuration = TRACE_BACKENDS[args.backend]

        def show(run, label):
            out(render_table(
                ["Step", "Wall ms",
                 *(f"{c} ms" for c in CATEGORIES)],
                run.attribution_rows(),
                title=f"{args.benchmark} on {label}: "
                      "per-step attribution") + "\n")
            split = run.mean_step_split()
            parts = ", ".join(f"{c} {split[c] * 1e3:.3f}"
                              for c in CATEGORIES)
            out(f"steady step: {run.mean_step_seconds * 1e3:.3f} ms "
                f"({parts} ms)\n")
            out(f"span-reconstructed total: "
                f"{run.reconstructed_total:.3f} s vs reported "
                f"{run.record.total_time:.3f} s "
                f"(error {run.reconciliation_error * 100:.3f}%)\n\n")

        if args.backend == "local":
            run = traced_run(args.benchmark, configuration,
                             sim_steps=steps)
            show(run, configuration)
        else:
            split = overhead_split(args.benchmark, composed=configuration,
                                   sim_steps=steps)
            run = split.composed
            show(run, configuration)
            out(render_table(
                ["Category", "local ms", f"{args.backend} ms",
                 "delta ms", "share %"],
                split.split_rows(),
                title=f"Fig 11 split: {args.benchmark} "
                      f"{configuration} vs localGPUs "
                      f"(+{split.overhead_pct:.1f}% total)") + "\n\n")

        out(render_flame_summary(run.tracer) + "\n\n")
        if run.steps:
            first = run.steady_steps[0]
            out("steady-state step timeline "
                f"(rank 0, step {first.step}):\n")
            out(render_ascii_timeline(run.tracer, run.track,
                                      first.start, first.end,
                                      width=args.timeline_width) + "\n")

        trace = to_chrome_trace(run.tracer)
        if args.trace_out:
            path = write_chrome_trace(run.tracer, args.trace_out)
            out(f"\nwrote trace ({len(trace['traceEvents'])} events) "
                f"to {path}\n")
        if args.smoke:
            errors = validate_chrome_trace(trace)
            if errors:
                for error in errors[:20]:
                    out(f"trace schema violation: {error}\n")
                return 1
            out(f"\ntrace OK: {len(trace['traceEvents'])} events pass "
                "the trace_event schema\n")
        return 0

    if args.command == "profile":
        import json

        from .experiments import profile_cell

        if args.opt:
            from .plan.passes import PassError, resolve_passes
            try:
                resolve_passes(args.opt)
            except PassError as exc:
                out(f"error: {exc}\n")
                return 2
        try:
            report = profile_cell(
                args.benchmark, TRACE_BACKENDS[args.backend],
                args.strategy, sim_steps=args.steps,
                plan_passes=args.opt,
                evaluate_what_ifs=not args.no_what_if,
                global_batch=args.global_batch,
                accumulation_steps=args.accumulation)
        except (ValueError, MemoryError) as exc:
            out(f"error: {exc}\n")
            out("hint: shrink --global-batch or raise "
                "--accumulation\n")
            return 2
        if args.format == "json":
            out(report.render_json() + "\n")
        else:
            out(report.render_text() + "\n")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.to_json(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            if args.format != "json":  # keep stdout parseable
                out(f"wrote {args.output}\n")
        return 0

    if args.command == "fleet":
        import json

        from .core import FLEET_FOUR_CHASSIS, FleetSpec
        from .experiments import fleet_study
        from .experiments.fleet import SMOKE_SPEC

        base = SMOKE_SPEC if args.smoke else FLEET_FOUR_CHASSIS
        spec = FleetSpec(
            name="cli",
            chassis=args.chassis or base.chassis,
            hosts=args.hosts or base.hosts,
            gpus_per_chassis=(args.gpus_per_chassis
                              or base.gpus_per_chassis),
            oversubscription=(args.oversub if args.oversub is not None
                              else base.oversubscription))
        report = fleet_study(smoke=args.smoke, spec=spec,
                             jobs=args.trace_jobs, seed=args.seed,
                             mean_interarrival=args.interarrival)
        out(render_table(
            ["Job", "Benchmark", "GPUs", "Host", "Chassis", "Queue s",
             "Run s", "Samples/s"],
            [(r["job_id"], r["benchmark"], r["gpus"], r["host"],
              "+".join(str(c) for c in r["chassis"]),
              round(r["queue_delay_s"], 1), round(r["run_s"], 1),
              round(r["throughput_samples_s"], 1))
             for r in report["records"]],
            title=f"fleet trace (seed {args.seed}): "
                  f"{report['jobs']} jobs on {report['chassis']} "
                  f"chassis x {report['total_gpus'] // report['chassis']}"
                  " GPUs") + "\n\n")
        out(render_table(
            ["Metric", "Value"],
            [("makespan (s)", round(report["makespan_s"], 1)),
             ("GPU utilization", f"{report['gpu_utilization']:.1%}"),
             ("mean queue delay (s)",
              round(report["mean_queue_delay_s"], 2)),
             ("max queue delay (s)",
              round(report["max_queue_delay_s"], 2)),
             ("cross-chassis jobs", report["cross_chassis_jobs"]),
             ("host-uplink oversubscription",
              f"{report['oversubscription']:g}:1"),
             ("busiest spine link", report["busiest_spine_link"])],
            title="fleet aggregates") + "\n\n")
        traffic = report["spine_traffic_gbs"]
        out(render_table(
            ["Spine link", "to spine GB/s", "from spine GB/s"],
            [(label, round(t["to_spine_gbs"], 3),
              round(t["from_spine_gbs"], 3))
             for label, t in sorted(traffic.items())],
            title="cross-job spine contention (run mean)") + "\n")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            out(f"wrote {args.output}\n")
        if args.smoke:
            checks = report["checks"]
            for name, ok in checks.items():
                if name != "ok" and not ok:
                    out(f"invariant violated: {name}\n")
            out("smoke OK\n" if checks["ok"] else "smoke FAILED\n")
            return 0 if checks["ok"] else 1
        return 0

    if args.command == "regress":
        import json

        from .experiments import run_regression
        from .experiments.regress import DEFAULT_TOLERANCE

        tolerance = (DEFAULT_TOLERANCE if args.tolerance is None
                     else args.tolerance)
        try:
            report = run_regression(baseline_path=args.baseline,
                                    tolerance=tolerance,
                                    smoke=not args.full)
        except (FileNotFoundError, ValueError) as exc:
            out(f"error: {exc}\n")
            return 2
        out(report.render_text() + "\n")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            out(f"wrote {args.output}\n")
        return 0 if report.ok else 1

    if args.command == "matrix":
        import json

        from .experiments import format_matrix, run_matrix
        from .experiments.matrix import MATRIX_MODELS, SMOKE_MODELS

        models = tuple(args.models.split(",")) if args.models else None
        strategies = (tuple(args.strategies.split(","))
                      if args.strategies else None)
        if models is None:
            models = SMOKE_MODELS if args.smoke else MATRIX_MODELS
        known = benchmark_names()
        bad = [m for m in models if m not in known]
        if bad:
            out(f"error: unknown benchmark(s) {', '.join(bad)}; "
                f"one of {', '.join(known)}\n")
            return 2
        if args.opt:
            from .plan.passes import PassError, resolve_passes
            try:
                resolve_passes(args.opt)
            except PassError as exc:
                out(f"error: {exc}\n")
                return 2
        steps = min(args.steps, 4) if args.smoke else args.steps
        report = run_matrix(
            models=models, strategies=strategies, sim_steps=steps,
            plan_passes=args.opt, **sweep_kwargs())
        out(format_matrix(report) + "\n")
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            out(f"wrote {args.output}\n")
        if args.smoke:
            if not report.crossover_models:
                out("matrix smoke FAILED: no model's winning strategy "
                    "differs between backends\n")
                return 1
            out(f"matrix smoke OK: crossover on "
                f"{', '.join(report.crossover_models)}\n")
        return 0

    if args.command == "plan":
        from .plan import diff_plans, format_diff, format_plan, validate_plan
        from .training import (
            STRATEGY_REGISTRY,
            TrainingConfig,
            TrainingJob,
        )

        strategy_classes = STRATEGY_REGISTRY

        if args.opt:
            from .plan.passes import PassError, resolve_passes
            try:
                resolve_passes(args.opt)
            except PassError as exc:
                out(f"error: {exc}\n")
                return 2

        def compile_plan(strategy_name):
            # A fresh system per compile: TrainingJob's constructor does
            # the whole compile (costs, memory checks, plan, passes)
            # without advancing the simulation, so nothing is ever run.
            system = ComposableSystem()
            active = system.configure(args.config)
            config = TrainingConfig(
                benchmark=get_benchmark(args.benchmark),
                strategy=strategy_classes[strategy_name](),
                global_batch=args.global_batch,
                accumulation_steps=args.accumulation,
                plan_passes=args.opt,
            )
            job = TrainingJob(system.env, system.topology, system.host,
                              list(active.gpus), active.storage, config)
            return job

        try:
            job = compile_plan(args.strategy)
        except (ValueError, MemoryError) as exc:
            out(f"error: {exc}\n"
                "hint: shrink --global-batch or raise --accumulation\n")
            return 2
        plan = job.step_plan
        out(format_plan(plan) + "\n")
        for report in job.pass_reports:
            out(f"pass {report.summary()}\n")
        status = 0
        if args.validate:
            problems = validate_plan(plan)
            if problems:
                for problem in problems:
                    out(f"plan problem: {problem}\n")
                status = 1
            else:
                out(f"\nplan OK: {len(plan)} ops pass the structure, "
                    "cycle, rank-symmetry, and bytes-conservation "
                    "passes\n")
        if args.diff:
            other = compile_plan(args.diff).step_plan
            out("\n" + format_diff(diff_plans(plan, other), plan, other)
                + "\n")
        return status

    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
