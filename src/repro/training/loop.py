"""The data-parallel training loop (paper Fig. 8's workflow).

Per optimizer step, the simulation executes the paper's data workflow
end to end:

1. the **dataloader** reads a global batch from storage (unless the
   dataset is page-cached in host DRAM), preprocesses it on CPU worker
   cores, and enqueues per-rank micro-batches (bounded prefetch queues
   give natural pipelining and backpressure);
2. each **rank process** copies its micro-batch host-to-device over the
   PCIe/fabric path, then executes its program of the strategy's
   *compiled step plan* (forward, backward with overlapped gradient
   synchronization, optimizer) through the generic plan executor;
3. periodically rank 0 **checkpoints**: all ranks synchronize, the
   weights stream device-to-host and onto storage, and the other GPUs sit
   idle — producing the sharp utilization dips of the paper's Fig. 9.

Because full training runs take hours of simulated time, a job simulates
a configurable number of steps plus checkpoints at steady state and
extrapolates total training time from measured averages (the per-step
pattern is strictly repetitive, which is the same argument the paper
makes for training fewer epochs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..devices.gpu import GPU
from ..devices.host import HostServer
from ..devices.storage import StorageDevice
from ..fabric.topology import (
    DeviceFailure,
    LinkFailure,
    NoRouteError,
    Topology,
)
from ..plan import ExecutionContext, PlanBuilder, PlanExecution
from ..sim import Environment, Interrupt, Store
from ..telemetry import MetricsCollector
from ..telemetry.trace import NULL_TRACER, Category, Tracer, Track
from ..workloads.registry import Benchmark
from .collectives import CollectiveTimeout, Communicator
from .parallel import (
    CompileContext,
    DistributedDataParallel,
    ParallelStrategy,
    StepCosts,
)
from .precision import AMP_POLICY, PrecisionPolicy

__all__ = ["TrainingConfig", "TrainingInterrupted", "TrainingJob",
           "TrainingResult", "clear_plan_compile_cache",
           "plan_compile_stats"]

#: Host-side framework footprint (CUDA pinned buffers, Python runtime...).
HOST_FRAMEWORK_BYTES = 12e9
#: Warmup steps excluded from step-time statistics.
WARMUP_STEPS = 2

# Compiling a step plan is pure: its output depends only on the strategy
# (and its knobs), the cost model scalars, and the device roster.  Sweeps
# instantiate hundreds of jobs over a handful of distinct cells, so the
# compiled (pre-pass) plan is memoized process-wide.  Plans are immutable
# after construction, which makes sharing one instance across jobs safe;
# pass pipelines run per-job on the shared input and produce new plans.
_PLAN_COMPILE_CACHE: dict = {}
_plan_compile_stats = {"hits": 0, "misses": 0}


def _plan_compile_key(strategy, costs: StepCosts, world_size: int,
                      accumulation: int, gpus) -> tuple:
    policy = costs.policy
    model = costs.model
    return (
        type(strategy).__name__,
        tuple(sorted((k, repr(v)) for k, v in vars(strategy).items())),
        (model.name, model.params, model.depth,
         model.activation_bytes_per_sample(policy.compute)),
        (policy.name, policy.compute, policy.communication,
         policy.master_weights, policy.step_overhead),
        costs.efficiency,
        costs.batch_per_gpu,
        costs.forward_flops,
        costs.backward_flops,
        costs.forward_hbm_bytes,
        costs.backward_hbm_bytes,
        costs.gradient_bytes,
        costs.weight_bytes,
        world_size,
        accumulation,
        # Membership, not just shape: elastic resize recompiles at the
        # same world size but a different rank roster (a hot-swapped
        # spare, a parked straggler), and rank identity feeds the
        # execution context — a recompiled post-resize plan must never
        # alias a stale entry keyed only by GPU specs.
        tuple((g.name, repr(g.spec)) for g in gpus),
    )


def clear_plan_compile_cache() -> None:
    """Drop all memoized step plans and reset the hit/miss counters."""
    _PLAN_COMPILE_CACHE.clear()
    _plan_compile_stats["hits"] = 0
    _plan_compile_stats["misses"] = 0


def plan_compile_stats() -> dict:
    """``{"hits": int, "misses": int}`` for the step-plan compile memo."""
    return dict(_plan_compile_stats)


class TrainingInterrupted(Exception):
    """A fault tore the job down before it completed its steps.

    Raised out of the job's completion event after an orderly teardown
    (workers interrupted, collectives aborted, memory reconciled).  The
    attributes carry everything a checkpoint-restart runtime needs to
    resume: how far training got, and the last step whose checkpoint hit
    storage (``None`` if no checkpoint completed).
    """

    def __init__(self, cause: BaseException, steps_completed: int,
                 last_checkpoint_step: Optional[int], at: float):
        super().__init__(
            f"training interrupted after {steps_completed} steps: {cause}")
        self.cause = cause
        self.steps_completed = steps_completed
        self.last_checkpoint_step = last_checkpoint_step
        #: Simulation time at which the fault was detected.
        self.at = at


@dataclass
class TrainingConfig:
    """Everything that defines one training run."""

    benchmark: Benchmark
    strategy: ParallelStrategy = field(default_factory=DistributedDataParallel)
    policy: PrecisionPolicy = AMP_POLICY
    #: Global batch size; defaults to the paper's per-benchmark value.
    global_batch: Optional[int] = None
    #: Epochs; defaults to the paper's per-benchmark value.
    epochs: Optional[int] = None
    #: Steps actually simulated (statistics extrapolate the rest).
    sim_steps: int = 24
    #: Checkpoints actually simulated.
    sim_checkpoints: int = 1
    #: Real checkpoint cadence, as a fraction of an epoch.
    checkpoint_every_epoch_fraction: float = 0.25
    #: Dataloader worker threads (4 per rank on the 8-GPU host).
    dataloader_workers: int = 32
    #: Prefetch queue depth (global batches).
    prefetch_batches: int = 3
    #: Telemetry sampling interval, seconds.
    sample_interval: float = 0.25
    #: Force dataset (non-)residency in the host page cache; None = auto
    #: (resident when the dataset fits in host DRAM, as ImageNet/COCO/
    #: SQuAD all do on the 756 GB hosts).
    dataset_cached: Optional[bool] = None
    #: Per-protocol NCCL transport byte inflation; None = calibrated
    #: defaults (sensitivity-study knob).
    transport_penalty: Optional[dict] = None
    #: Gradient-accumulation micro-steps per optimizer step.  The global
    #: batch is split into this many micro-batches per rank (PyTorch
    #: ``no_sync()`` pattern), trading step latency for activation
    #: memory — e.g. BERT-large at an effective 96 global batch fits DDP
    #: with ``accumulation_steps=2``.
    accumulation_steps: int = 1
    #: Lognormal sigma of per-kernel time noise (0 = deterministic).
    kernel_jitter: float = 0.0
    #: Seed for the jitter RNG (runs are reproducible at fixed seed).
    jitter_seed: int = 0x5EED
    #: Checkpoint every N optimizer steps instead of ``sim_checkpoints``
    #: evenly-spaced ones — the knob a fault-tolerance study sweeps to
    #: trade checkpoint overhead against lost work (Young/Daly).
    checkpoint_interval_steps: Optional[int] = None
    #: NCCL-watchdog timeout for collectives, seconds of simulated time;
    #: ``None`` disables the watchdog (a rank stuck on a dead peer hangs,
    #: as NCCL does without a timeout configured).
    collective_timeout: Optional[float] = None
    #: Optimization passes applied to the compiled step plan, as a spec
    #: accepted by :func:`repro.plan.passes.resolve_passes` — a comma
    #: string ("bucketing,overlap"), "all", or a sequence mixing names
    #: and PlanPass instances.  ``None`` (default) runs the compiler's
    #: plan untouched, byte-for-byte identical to pre-pass behaviour.
    #: The checkpoint plan is never rewritten: it is latency-bound
    #: sequential drain with nothing to overlap or bucket.
    plan_passes: Optional[object] = None

    def __post_init__(self):
        if self.sim_steps <= 0:
            raise ValueError(
                f"sim_steps must be a positive step count, "
                f"got {self.sim_steps}")
        if self.accumulation_steps < 1:
            raise ValueError(
                f"accumulation_steps must be >= 1, "
                f"got {self.accumulation_steps}")
        if self.checkpoint_interval_steps is not None \
                and self.checkpoint_interval_steps < 0:
            raise ValueError(
                "checkpoint_interval_steps must be None (auto), "
                "0 (disabled), or a positive cadence, got "
                f"{self.checkpoint_interval_steps}")

    def resolved_global_batch(self) -> int:
        return self.global_batch or self.benchmark.global_batch

    def resolved_epochs(self) -> int:
        return self.epochs or self.benchmark.epochs


@dataclass
class TrainingResult:
    """Measured and extrapolated outcomes of a training run."""

    benchmark_key: str
    strategy_name: str
    policy_name: str
    world_size: int
    global_batch: int
    steps_simulated: int
    #: Steady-state seconds per optimizer step (mean over measured steps).
    step_time: float
    step_time_std: float
    #: Seconds per checkpoint (device->host->storage, ranks idle).
    checkpoint_time: float
    #: First-epoch dataset staging overhead beyond compute, seconds.
    staging_overhead: float
    steps_per_epoch: int
    epochs: int
    checkpoints_per_epoch: int
    #: Simulation window over which telemetry was collected.
    t_start: float
    t_end: float
    collector: MetricsCollector
    #: (start, end) spans spent inside checkpoints (ranks stalled).
    checkpoint_spans: list[tuple[float, float]] = field(default_factory=list)
    gpus: list[GPU] = field(repr=False, default_factory=list)

    def steady_windows(self) -> list[tuple[float, float]]:
        """The measurement window minus checkpoint stalls — the spans over
        which steady-state traffic and utilization should be averaged."""
        windows: list[tuple[float, float]] = []
        cursor = self.t_start
        for c0, c1 in sorted(self.checkpoint_spans):
            if c0 > cursor:
                windows.append((cursor, min(c0, self.t_end)))
            cursor = max(cursor, c1)
        if cursor < self.t_end:
            windows.append((cursor, self.t_end))
        return windows or [(self.t_start, self.t_end)]

    @property
    def epoch_time(self) -> float:
        """Estimated wall seconds per steady-state epoch."""
        return (self.steps_per_epoch * self.step_time
                + self.checkpoints_per_epoch * self.checkpoint_time)

    @property
    def total_time(self) -> float:
        """Estimated wall seconds for the full training run."""
        return self.epochs * self.epoch_time + self.staging_overhead

    @property
    def throughput(self) -> float:
        """Steady-state samples per second."""
        return self.global_batch / self.step_time if self.step_time else 0.0

    def summary(self) -> dict:
        return {
            "benchmark": self.benchmark_key,
            "strategy": self.strategy_name,
            "policy": self.policy_name,
            "world_size": self.world_size,
            "global_batch": self.global_batch,
            "step_time_s": self.step_time,
            "throughput_samples_s": self.throughput,
            "epoch_time_s": self.epoch_time,
            "total_time_s": self.total_time,
        }


class TrainingJob:
    """One data-parallel training run on a composed system."""

    def __init__(self, env: Environment, topology: Topology,
                 host: HostServer, gpus: list[GPU],
                 storage: StorageDevice, config: TrainingConfig,
                 collector: Optional[MetricsCollector] = None,
                 tracer: Optional[Tracer] = None,
                 prologue_plan=None):
        if not gpus:
            raise ValueError("training needs at least one GPU")
        self.env = env
        self.tracer = tracer or NULL_TRACER
        self.topology = topology
        self.host = host
        self.gpus = gpus
        self.storage = storage
        self.config = config
        self.benchmark = config.benchmark
        self.model = self.benchmark.build()
        self.world_size = len(gpus)
        self.global_batch = config.resolved_global_batch()
        # Strategies own batch placement: data-parallel splits the global
        # batch across ranks, pipeline parallelism streams the full batch
        # through every stage.
        self.batch_per_gpu = config.strategy.rank_batch(
            self.global_batch, self.world_size)
        self._input_ranks = tuple(sorted(
            config.strategy.input_ranks(self.world_size)))
        if self.batch_per_gpu % config.accumulation_steps != 0:
            raise ValueError(
                f"per-GPU batch {self.batch_per_gpu} not divisible by "
                f"accumulation_steps {config.accumulation_steps}")
        self.micro_batch_per_gpu = self.batch_per_gpu \
            // config.accumulation_steps
        self.comm = Communicator(env, topology, [g.name for g in gpus],
                                 gpus=gpus,
                                 transport_penalty=config.transport_penalty,
                                 watchdog=config.collective_timeout,
                                 tracer=self.tracer)
        self.costs = StepCosts.for_benchmark(
            self.model, config.policy,
            self._batch_adjusted_efficiency(),
            self.micro_batch_per_gpu,
            jitter=config.kernel_jitter,
            seed=config.jitter_seed)
        self.collector = collector or MetricsCollector(
            env, config.sample_interval)
        self.collector.watch_host(host)
        for gpu in gpus:
            self.collector.watch_gpu(gpu)

        # Validate device memory up front (the lever behind Fig. 16's
        # sharded batch-size increase).  Activations are sized by the
        # micro-batch: accumulation frees memory between micro-steps.
        per_gpu = config.strategy.memory_per_gpu(
            self.model, config.policy, self.micro_batch_per_gpu,
            self.world_size)
        capacity = min(g.spec.memory_bytes for g in gpus)
        if per_gpu > capacity:
            raise MemoryError(
                f"{self.model.name} with batch {self.batch_per_gpu}/GPU "
                f"needs {per_gpu / 1e9:.1f} GB > {capacity / 1e9:.1f} GB "
                f"device memory under {config.strategy.name}")
        self._gpu_resident_bytes = per_gpu

        # Compile the strategy's step into a plan once; the generic
        # executor replays it every optimizer step.  The checkpoint path
        # compiles the same way, so every device interaction the job
        # performs (outside data loading) is visible as a static op DAG.
        # Identical (strategy, workload, device) cells share one compiled
        # plan via the process-wide memo — jitter is applied at execution
        # time, so the plan is independent of it.
        memo_key = _plan_compile_key(
            config.strategy, self.costs, self.world_size,
            config.accumulation_steps, gpus)
        cached_plan = _PLAN_COMPILE_CACHE.get(memo_key)
        if cached_plan is not None:
            _plan_compile_stats["hits"] += 1
            self.step_plan = cached_plan
        else:
            _plan_compile_stats["misses"] += 1
            self.step_plan = config.strategy.compile_step(CompileContext(
                costs=self.costs, world_size=self.world_size,
                accumulation=config.accumulation_steps, gpus=gpus))
            _PLAN_COMPILE_CACHE[memo_key] = self.step_plan
        #: Per-pass reports when ``config.plan_passes`` is set (else []).
        self.pass_reports: list = []
        if config.plan_passes:
            from ..plan.passes import (
                PassContext,
                PassManager,
                resolve_passes,
            )
            manager = PassManager(resolve_passes(config.plan_passes))
            self.step_plan = manager.run(self.step_plan, PassContext(
                topology=topology,
                rank_nodes=[g.name for g in gpus],
                host_node=host.dram_node))
            self.pass_reports = manager.reports
        # Elastic resume: a state-redistribution plan spliced in front of
        # the first optimizer step, so resharding traffic and the new
        # ring's first step share one op DAG on the executor's timeline.
        if prologue_plan is not None:
            from ..plan import splice_plans
            if prologue_plan.world_size != self.world_size:
                raise ValueError(
                    f"prologue plan world {prologue_plan.world_size} != "
                    f"job world {self.world_size}")
            self._step0_plan = splice_plans(prologue_plan, self.step_plan)
        else:
            self._step0_plan = self.step_plan
        self.checkpoint_plan, self._ckpt_uids = self._compile_checkpoint()
        self._exec_ctx = ExecutionContext(
            env=env, comm=self.comm, gpus=gpus, topology=topology,
            host_node=host.dram_node, storage=storage, tracer=self.tracer,
            track_for=lambda rank: Track(host.name, gpus[rank].name),
            jitter=self.costs.jitter_factor)
        #: In-flight plan executions, keyed ("step"|"ckpt", step index);
        #: shared across ranks and reaped when the last rank finishes.
        self._executions: dict = {}

        # Step bookkeeping.
        self.steps_per_epoch = self.benchmark.dataset.steps_per_epoch(
            self.global_batch)
        frac = config.checkpoint_every_epoch_fraction
        self.checkpoints_per_epoch = max(1, int(round(1.0 / frac))) \
            if frac > 0 else 0
        self._queues = [Store(env, capacity=config.prefetch_batches)
                        for _ in gpus]
        self._device_queues = [Store(env, capacity=2) for _ in gpus]
        self._step_times: list[float] = []
        self._ckpt_times: list[float] = []
        self._ckpt_spans: list[tuple[float, float]] = []
        self._dataset_cached = self._resolve_cached()
        # Fault handling: the first fault any worker observes succeeds
        # this event (value = the exception); _main then tears down.
        self._failure = env.event()
        self._step_listeners: list = []
        self._ckpt_listeners: list = []
        self._steps_completed = 0
        self._last_checkpoint_step: Optional[int] = None
        # Host bytes the dataloader allocated that feeders have not yet
        # freed; reconciled at teardown so a killed job leaks nothing.
        self._transient_host_bytes = 0.0

    # -- derived quantities ----------------------------------------------------
    def _batch_adjusted_efficiency(self) -> float:
        """Sustained efficiency with mild per-GPU batch saturation.

        Larger micro-batches run GEMMs at better tensor-core occupancy;
        the ``b / (b + 1)`` saturation is anchored at the benchmark's
        reference per-GPU batch so the registry's calibrated efficiencies
        apply unchanged at the paper's batch sizes.  This is the lever
        that makes sharded training's 6 -> 10 batch increase a real
        per-sample win (paper §V-C.4).
        """
        table_eff = self.benchmark.efficiency[self.config.policy.compute]
        ref_b = max(1.0, self.benchmark.global_batch / 8.0)
        b = self.micro_batch_per_gpu
        return table_eff * ((ref_b + 1.0) / ref_b) * (b / (b + 1.0))

    def _resolve_cached(self) -> bool:
        if self.config.dataset_cached is not None:
            return self.config.dataset_cached
        dataset_bytes = self.benchmark.dataset.epoch_disk_bytes()
        return dataset_bytes + HOST_FRAMEWORK_BYTES \
            < 0.8 * self.host.spec.memory_bytes

    @property
    def checkpoint_bytes(self) -> float:
        """Serialized training state: FP32 weights + optimizer moments."""
        return self.model.params * 12.0

    def _compile_checkpoint(self):
        """Compile the periodic checkpoint into a plan.

        All ranks rendezvous, rank 0 drains the serialized state
        device-to-host and persists it to storage, then everyone
        rendezvous again — the other GPUs sit idle for the whole window
        (the sharp utilization dips of the paper's Fig. 9).  Returns the
        plan plus the uids the trainer needs for durability bookkeeping.
        """
        nbytes = self.checkpoint_bytes
        b = PlanBuilder("checkpoint", self.world_size,
                        meta={"strategy": "checkpoint"})
        b.declare_conservation("checkpoint-state", 2.0 * nbytes)
        uids = {}
        for rank in range(self.world_size):
            enter = b.barrier(rank, "ckpt-enter", traced=False)
            if rank == 0:
                d2h = b.d2h(rank, "ckpt-d2h", nbytes, deps=[enter],
                            label="d2h-ckpt", payload="checkpoint-state")
                write = b.storage_write(rank, "ckpt-write", nbytes,
                                        deps=[d2h],
                                        payload="checkpoint-state",
                                        category=Category.CHECKPOINT)
                b.barrier(rank, "ckpt-exit", deps=[write], traced=False)
                uids = {"enter": enter, "write": write}
            else:
                b.barrier(rank, "ckpt-exit", deps=[enter], traced=False)
        return b.build(), uids

    def _execution(self, key, plan) -> PlanExecution:
        """The shared in-flight execution for ``key``, created on first
        use (whichever rank gets there first)."""
        execution = self._executions.get(key)
        if execution is None:
            execution = self._executions[key] = PlanExecution(
                plan, self._exec_ctx)
        return execution

    def effective_read_bandwidth(self) -> float:
        """Storage read bandwidth after the random-access penalty."""
        return self.storage.spec.read_bandwidth

    def staging_time(self) -> float:
        """Time to pull the dataset from storage once (first epoch)."""
        dataset_bytes = self.benchmark.dataset.epoch_disk_bytes() \
            * self.benchmark.disk_read_factor
        return dataset_bytes / self.effective_read_bandwidth()

    # -- public progress API ---------------------------------------------------
    @property
    def step_times(self) -> list[float]:
        """Per-step wall times measured so far (rank 0's view)."""
        return list(self._step_times)

    @property
    def steps_completed(self) -> int:
        """Optimizer steps completed so far (rank 0's view)."""
        return self._steps_completed

    @property
    def last_checkpoint_step(self) -> Optional[int]:
        """Step index of the last checkpoint that hit storage, or None."""
        return self._last_checkpoint_step

    def add_step_listener(self, fn) -> None:
        """Call ``fn(steps_completed, time)`` after each optimizer step.

        The public alternative to polling private step counters: chaos
        injectors and experiments use this to trigger a fault at a
        precise training-progress point without busy-waiting.
        """
        self._step_listeners.append(fn)

    def add_checkpoint_listener(self, fn) -> None:
        """Call ``fn(step, time)`` once a checkpoint is durable."""
        self._ckpt_listeners.append(fn)

    # -- run ---------------------------------------------------------------------
    def start(self):
        """Launch the job's processes; returns the completion event.

        Use this (instead of :meth:`run`) to execute several jobs
        concurrently on a shared environment — e.g. two hosts sharing a
        Falcon drawer in advanced mode — then :meth:`collect` the results
        once the environment has run past completion.
        """
        if getattr(self, "_done", None) is not None:
            raise RuntimeError("job already started")
        self._done = self.env.process(self._main())
        return self._done

    def run(self) -> TrainingResult:
        """Execute the simulation and return measured + extrapolated data."""
        done = self.start()
        self.env.run(until=done)
        return self.collect()

    def collect(self) -> TrainingResult:
        """Assemble the result after the completion event has fired."""
        if getattr(self, "_done", None) is None or not self._done.processed:
            raise RuntimeError("job has not finished; run() or env.run() "
                               "past the event returned by start()")
        steady = self._step_times[WARMUP_STEPS:] or self._step_times
        step_mean = float(np.mean(steady))
        step_std = float(np.std(steady))
        ckpt_mean = float(np.mean(self._ckpt_times)) \
            if self._ckpt_times else 0.0
        # First-epoch staging beyond what steady-state compute hides.
        if self._dataset_cached:
            epoch_compute = self.steps_per_epoch * step_mean
            staging = max(0.0, self.staging_time() - epoch_compute)
        else:
            staging = 0.0  # loader reads storage in-band; already in steps
        return TrainingResult(
            benchmark_key=self.benchmark.key,
            strategy_name=self.config.strategy.name,
            policy_name=self.config.policy.name,
            world_size=self.world_size,
            global_batch=self.global_batch,
            steps_simulated=len(self._step_times),
            step_time=step_mean,
            step_time_std=step_std,
            checkpoint_time=ckpt_mean,
            staging_overhead=staging,
            steps_per_epoch=self.steps_per_epoch,
            epochs=self.config.resolved_epochs(),
            checkpoints_per_epoch=self.checkpoints_per_epoch,
            t_start=self._t_start,
            t_end=self._t_end,
            collector=self.collector,
            checkpoint_spans=list(self._ckpt_spans),
            gpus=self.gpus,
        )

    # -- processes ------------------------------------------------------------------
    #: Fabric/collective faults a worker converts into a job failure (as
    #: opposed to programming errors, which propagate and crash the run).
    _FAULTS = (LinkFailure, DeviceFailure, NoRouteError, CollectiveTimeout)

    def _report_failure(self, exc: BaseException) -> None:
        """First fault wins; _main picks it up and tears the job down."""
        if not self._failure.triggered:
            self._failure.succeed(exc)

    def _main(self):
        cfg = self.config
        # Resident allocations: device memory per GPU, host framework +
        # page-cached dataset (what Fig. 14's memory utilization shows).
        for gpu in self.gpus:
            yield gpu.alloc(self._gpu_resident_bytes)
        host_resident = HOST_FRAMEWORK_BYTES
        if self._dataset_cached:
            host_resident += self.benchmark.dataset.epoch_disk_bytes()
        host_resident = min(host_resident,
                            0.95 * self.host.spec.memory_bytes
                            - self.host.memory.level)
        if host_resident > 0:
            yield self.host.alloc_memory(host_resident)

        self.collector.start()
        self._t_start = self.env.now

        loader = self.env.process(self._dataloader(cfg.sim_steps))
        feeders = [self.env.process(self._feeder(rank, cfg.sim_steps))
                   for rank in self._input_ranks]
        trainers = [self.env.process(self._trainer(rank, cfg.sim_steps))
                    for rank in range(self.world_size)]
        workers = [loader] + feeders + trainers
        yield self.env.any_of([self.env.all_of(workers), self._failure])

        fault = self._failure.value if self._failure.triggered else None
        if fault is not None:
            # Orderly teardown: stop every surviving worker, cancel every
            # in-flight plan op (a bucket timer that outlives the job
            # would join an aborted collective and launch real kernels
            # into a successor's stream), abort the communicator so
            # nothing waits on a collective that will never complete,
            # then let the interrupts unwind (they are URGENT events; a
            # zero-delay NORMAL timeout runs after all of them) before
            # reconciling memory.
            for proc in workers:
                if proc.is_alive:
                    proc.interrupt(fault)
            for execution in list(self._executions.values()):
                execution.cancel(fault)
            self._executions.clear()
            self.comm.abort()
            yield self.env.timeout(0.0)

        self._t_end = self.env.now
        self.collector.stop()
        # Release resident memory so back-to-back jobs can share devices.
        for gpu in self.gpus:
            yield gpu.free(self._gpu_resident_bytes)
        if host_resident > 0:
            yield self.host.free_memory(host_resident)
        if self._transient_host_bytes > 0:
            # Staging buffers whose feeder died before freeing them.
            yield self.host.free_memory(self._transient_host_bytes)
            self._transient_host_bytes = 0.0
        if fault is not None:
            raise TrainingInterrupted(fault, self._steps_completed,
                                      self._last_checkpoint_step,
                                      self.env.now)

    def _dataloader(self, steps: int):
        """Read + preprocess global batches; feed per-rank queues."""
        ds = self.benchmark.dataset
        disk_bytes = ds.disk_bytes_per_sample * self.global_batch \
            * self.benchmark.disk_read_factor
        h2d_bytes = ds.h2d_bytes_per_sample * self.global_batch
        cpu_seconds = ds.preprocess_core_seconds * self.global_batch
        try:
            for step in range(steps):
                if not self._dataset_cached:
                    yield self.storage.read_to(self.host.dram_node,
                                               disk_bytes)
                alloc = self.host.alloc_memory(h2d_bytes)
                try:
                    yield alloc
                except Interrupt:
                    alloc.cancel()  # withdraw the queued allocation
                    return
                self._transient_host_bytes += h2d_bytes
                if cpu_seconds > 0:
                    yield self.host.cpu.run(cpu_seconds,
                                            self.config.dataloader_workers)
                puts = [self._queues[rank].put(step)
                        for rank in self._input_ranks]
                yield self.env.all_of(puts)
        except self._FAULTS as exc:
            self._report_failure(exc)
        except Interrupt:
            return

    def _feeder(self, rank: int, steps: int):
        """Pinned-memory prefetch: copy the next micro-batch to the device
        while the current step computes (PyTorch's non_blocking H2D)."""
        gpu = self.gpus[rank]
        # Input ranks split the loader's staging buffer between them
        # (equal to ``batch_per_gpu`` under data parallelism, the whole
        # batch for a pipeline's single ingest stage).
        h2d_rank = self.benchmark.dataset.h2d_bytes_per_sample \
            * (self.global_batch // len(self._input_ranks))
        try:
            for _ in range(steps):
                item = yield self._queues[rank].get()
                yield self.topology.transfer(self.host.dram_node, gpu.name,
                                             h2d_rank, label="h2d")
                free = self.host.free_memory(h2d_rank)
                try:
                    yield free
                except Interrupt:
                    free.cancel()  # teardown reconciles these bytes
                    return
                self._transient_host_bytes -= h2d_rank
                yield self._device_queues[rank].put(item)
        except self._FAULTS as exc:
            self._report_failure(exc)
        except Interrupt:
            return

    def _trainer(self, rank: int, steps: int):
        """One rank: await the prefetched batch, run its program of the
        compiled step plan, take periodic checkpoints."""
        ckpt_steps = self._resolve_checkpoint_steps(steps)
        tracer = self.tracer
        track = Track(self.host.name, self.gpus[rank].name)
        try:
            for step in range(steps):
                step_t0 = self.env.now
                step_span = tracer.span("step", Category.OTHER, track,
                                        step=step, rank=rank)
                if rank in self._input_ranks:
                    with tracer.span("wait-data", Category.STALL, track):
                        yield self._device_queues[rank].get()
                plan = self._step0_plan if step == 0 else self.step_plan
                execution = self._execution(("step", step), plan)
                yield from execution.run_rank(rank)
                if execution.all_ranks_done:
                    self._executions.pop(("step", step), None)
                step_span.close()
                if rank == 0:
                    self._step_times.append(self.env.now - step_t0)
                    self._steps_completed = step + 1
                    for fn in list(self._step_listeners):
                        fn(self._steps_completed, self.env.now)
                if step in ckpt_steps:
                    yield from self._checkpoint(rank, step)
        except self._FAULTS as exc:
            self._report_failure(exc)
        except Interrupt:
            return

    def _resolve_checkpoint_steps(self, steps: int) -> frozenset[int]:
        """Checkpoint positions: fixed cadence if configured, else the
        ``sim_checkpoints`` evenly-spaced ones."""
        interval = self.config.checkpoint_interval_steps
        if interval is not None:
            if interval <= 0:
                return frozenset()
            return frozenset(range(interval - 1, steps, interval))
        return self._checkpoint_steps(steps, self.config.sim_checkpoints)

    @staticmethod
    def _checkpoint_steps(steps: int, count: int) -> frozenset[int]:
        """Deterministic checkpoint positions, identical on every rank."""
        if count <= 0 or steps <= 0:
            return frozenset()
        every = max(1, steps // (count + 1))
        positions = [(i + 1) * every - 1 for i in range(count)]
        return frozenset(p for p in positions if p < steps)

    def _checkpoint(self, rank: int, step: int):
        """All ranks synchronize; rank 0 streams state to storage.

        The checkpoint is *durable* — and only then counts for restart —
        once the storage write returns; a fault mid-write rolls back to
        the previous checkpoint.
        """
        tracer = self.tracer
        track = Track(self.host.name, self.gpus[rank].name)
        execution = self._execution(("ckpt", step), self.checkpoint_plan)
        if rank == 0:
            yield from execution.run_rank(rank)
            # Durability bookkeeping off the executed ops' timestamps:
            # the checkpoint window opens when the entry rendezvous
            # completes and is durable when the storage write returns.
            t0 = execution.op_times(self._ckpt_uids["enter"])[1]
            t_durable = execution.op_times(self._ckpt_uids["write"])[1]
            tracer.complete("checkpoint", Category.CHECKPOINT, track,
                            t0, t_durable, step=step,
                            bytes=self.checkpoint_bytes)
            self._ckpt_times.append(t_durable - t0)
            self._ckpt_spans.append((t0, t_durable))
            self._last_checkpoint_step = step
            for fn in list(self._ckpt_listeners):
                fn(step, self.env.now)
        else:
            # Non-root ranks idle (GPUs drained) for the whole window —
            # the sharp utilization dips of the paper's Fig. 9.
            with tracer.span("checkpoint-wait", Category.STALL, track,
                             step=step):
                yield from execution.run_rank(rank)
        if execution.all_ranks_done:
            self._executions.pop(("ckpt", step), None)
