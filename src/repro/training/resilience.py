"""Fault-tolerant training: checkpoint-restart, backoff, elastic recovery.

:class:`FaultTolerantTrainingJob` wraps :class:`~repro.training.loop.
TrainingJob` in the recovery state machine a production trainer runs:

1. **Detect** — the job's workers convert fabric faults (link pulled,
   GPU dropped, collective watchdog) into :class:`TrainingInterrupted`.
2. **Reattach with backoff** — transient degradations (a flapping host
   port, a link mid-retrain) heal on their own; the runtime polls device
   reachability with jittered exponential backoff (bounded by an
   optional total retry budget) before touching the ring.
3. **Recompose the ring** — devices still dead afterwards are either
   *hot-swapped* for a chassis spare through the management plane
   (:class:`~repro.management.inventory.Inventory` — the composable
   system's unique recovery lever) or *dropped* from the ring.  Both are
   degenerate cases of one resize path (:meth:`_recompose`): the new
   membership gets a state-redistribution plan
   (:func:`~repro.plan.reshard.compile_reshard`) spliced in front of the
   resumed job's first step, so replica restores run as real fabric
   traffic on the executor's timeline.
4. **Restart from checkpoint** — a fresh attempt resumes from the last
   durable checkpoint and replays the lost steps.  (The elastic
   subclass in :mod:`repro.elastic` relaxes this: replicated state
   survives on living ranks, so resize resumes from the last *completed*
   step.)

Every transition is recorded both in the local recovery log and, when a
management :class:`~repro.management.events.EventLog` is wired in, as
audit events — recovery is an *operator-visible* activity, not a silent
retry loop.

Accounting follows the fault-tolerance literature: **goodput** is
first-time-useful samples over total wall time (recovery stalls, replays
and checkpoint overhead all tax it), versus the fault-free **raw
throughput**; **MTTR** is detection-to-restart time averaged over
faults.  Sweeping ``checkpoint_interval_steps`` against a given fault
rate traces the Young/Daly optimal-interval trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..devices.gpu import GPU
from ..devices.host import HostServer
from ..devices.storage import StorageDevice
from ..fabric.topology import Topology
from ..management.events import EventLog
from ..management.inventory import Inventory, InventoryError
from ..plan import ExecutionContext, FastPathUnsupported, fastpath_schedule
from ..plan.reshard import compile_reshard, is_rendezvous_only
from ..sim import Environment
from ..telemetry import MetricsCollector
from ..telemetry.trace import NULL_TRACER, Category, Tracer, Track
from .collectives import Communicator
from .loop import (
    TrainingConfig,
    TrainingInterrupted,
    TrainingJob,
    TrainingResult,
)

__all__ = ["ResilienceConfig", "RecoveryAction", "ResizeEvent",
           "FaultTolerantResult", "FaultTolerantTrainingJob"]


@dataclass
class ResilienceConfig:
    """Recovery policy knobs."""

    #: Restart attempts after the first (attempt count = max_restarts + 1).
    #: Controlled resizes (elastic grow/shrink) do not consume restarts.
    max_restarts: int = 4
    #: Reachability polls per fault before declaring devices dead.
    reattach_attempts: int = 3
    #: First backoff sleep, seconds; doubles (``backoff_factor``) per poll.
    backoff_initial: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Fractional jitter on each backoff sleep: a sleep of ``b`` becomes
    #: uniform in ``[b * (1 - jitter), b]``, decorrelating retry storms
    #: when many jobs poll the same management plane.  0 = deterministic.
    backoff_jitter: float = 0.0
    #: Seed for the backoff-jitter RNG (runs reproduce at a fixed seed).
    jitter_seed: int = 0xB0FF
    #: Cap on *cumulative* backoff sleep per recovery, seconds; when the
    #: budget runs out the reattach loop stops polling early and the
    #: runtime proceeds straight to ring surgery (or gives up, with the
    #: exhaustion called out in ``interrupted_reason``).  None = no cap.
    retry_budget_s: Optional[float] = None
    #: Replace dead chassis GPUs with spares via the management plane.
    allow_hot_spare: bool = True
    #: Drop dead GPUs from the ring (N-1) when no spare can stand in.
    allow_shrink: bool = True


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery-state-machine transition, timestamped."""

    time: float
    kind: str
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ResizeEvent:
    """One ring recomposition: membership delta + recompose telemetry."""

    time: float
    #: "swap" (hot spare), "shrink", "grow", or "repair".
    kind: str
    old_world: int
    new_world: int
    joined: tuple[str, ...]
    departed: tuple[str, ...]
    #: Attached but left out of the ring (virtual-node divisibility).
    parked: tuple[str, ...]
    #: Total bytes the spliced reshard plan moves over the fabric.
    reshard_bytes: float
    #: Estimated seconds the reshard traffic adds to the resumed job's
    #: first step (fast-path evaluation; None when ineligible).
    reshard_seconds: Optional[float]
    #: Detection-to-recomposition stall, seconds (time-to-recompose).
    recompose_seconds: float


@dataclass
class FaultTolerantResult:
    """Outcome + resilience telemetry of a fault-tolerant run."""

    completed: bool
    attempts: int
    faults: int
    total_steps: int
    #: Steps computed but rolled back (work after the last checkpoint).
    lost_steps: int
    #: First-time-useful samples trained (replays not double-counted).
    samples: float
    wall_time: float
    #: Mean detection-to-restart time over faults, seconds.
    mttr: float
    #: samples / wall_time — what the cluster actually delivered.
    goodput: float
    #: Fault-free samples/s of the final ring (None until one attempt
    #: finishes cleanly).
    raw_throughput: Optional[float]
    final_world_size: int
    recovery_log: list[RecoveryAction] = field(default_factory=list)
    #: Ring recompositions (hot-swap, shrink, grow) in order.
    resize_log: list[ResizeEvent] = field(default_factory=list)
    #: Why the run ended incomplete (None when it completed).
    interrupted_reason: Optional[str] = None
    result: Optional[TrainingResult] = None

    @property
    def resizes(self) -> int:
        return len(self.resize_log)

    @property
    def goodput_fraction(self) -> Optional[float]:
        """Goodput as a fraction of fault-free throughput."""
        if not self.raw_throughput:
            return None
        return self.goodput / self.raw_throughput

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "attempts": self.attempts,
            "faults": self.faults,
            "resizes": self.resizes,
            "lost_steps": self.lost_steps,
            "wall_time_s": self.wall_time,
            "mttr_s": self.mttr,
            "goodput_samples_s": self.goodput,
            "raw_throughput_samples_s": self.raw_throughput,
            "final_world_size": self.final_world_size,
            "interrupted_reason": self.interrupted_reason,
            "recovery_actions": [a.kind for a in self.recovery_log],
        }


class FaultTolerantTrainingJob:
    """Checkpoint-restart training with elastic ring repair."""

    def __init__(self, env: Environment, topology: Topology,
                 host: HostServer, gpus: list[GPU],
                 storage: StorageDevice, config: TrainingConfig,
                 resilience: Optional[ResilienceConfig] = None,
                 inventory: Optional[Inventory] = None,
                 event_log: Optional[EventLog] = None,
                 tracer: Optional[Tracer] = None):
        if not gpus:
            raise ValueError("training needs at least one GPU")
        self.env = env
        self.topology = topology
        self.host = host
        self.gpus = list(gpus)
        self.storage = storage
        self.config = config
        self.resilience = resilience or ResilienceConfig()
        self.inventory = inventory
        self.event_log = event_log
        self.tracer = tracer or NULL_TRACER
        self.recovery_log: list[RecoveryAction] = []
        self.resize_log: list[ResizeEvent] = []
        #: The job currently (or last) running — chaos hooks attach here.
        self.current_job: Optional[TrainingJob] = None
        #: Called with each freshly-built attempt's TrainingJob before it
        #: starts (lets experiments re-arm step-hook fault triggers).
        self.on_attempt: list = []
        world = len(gpus)
        global_batch = config.resolved_global_batch()
        if global_batch % world != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by world "
                f"size {world}")
        #: Held constant across ring shrinks (global batch scales).
        self.batch_per_gpu = global_batch // world
        self._model = config.benchmark.build()
        self._rng = np.random.default_rng(self.resilience.jitter_seed)
        #: Reshard plan spliced into the next attempt's first step.
        self._pending_prologue = None
        self._gave_up_reason: Optional[str] = None
        self._budget_note: Optional[str] = None
        self._detected_at: Optional[float] = None

    # -- bookkeeping ------------------------------------------------------
    def _record(self, kind: str, **detail) -> None:
        self.recovery_log.append(
            RecoveryAction(self.env.now, kind, dict(detail)))
        if self.event_log is not None:
            self.event_log.record(self.env.now, kind, "ft-runtime",
                                  **detail)

    def _give_up(self, reason: str, **detail) -> bool:
        """Record terminal recovery failure with a clear reason."""
        if self._budget_note:
            reason = f"{self._budget_note}; {reason}"
        self._gave_up_reason = reason
        self._record("recovery_gave_up", reason=reason, **detail)
        return False

    def _sleep(self, seconds: float) -> None:
        self.env.run(until=self.env.timeout(seconds))

    def _jittered(self, backoff: float) -> float:
        """Apply fractional jitter: uniform in ``[b*(1-jitter), b]``."""
        jitter = self.resilience.backoff_jitter
        if jitter > 0:
            backoff *= 1.0 - jitter * float(self._rng.random())
        return backoff

    def _backoff_sleep(self, backoff: float) -> float:
        """Sleep one (jittered) backoff interval; returns the sleep."""
        sleep = self._jittered(backoff)
        self._sleep(sleep)
        return sleep

    def _reachable(self, gpu: GPU) -> bool:
        return self.topology.reachable(self.host.dram_node, gpu.name)

    # -- subclass hooks (elastic overrides these) -------------------------
    def _attempt_config(self, remaining: int) -> TrainingConfig:
        """The next attempt's config at the current ring size.

        The base runtime holds *per-GPU* batch constant, so the global
        batch scales with the ring; the elastic runtime inverts this
        (virtual-node semantics hold the effective global batch
        invariant instead).
        """
        world = len(self.gpus)
        return replace(self.config, sim_steps=remaining,
                       global_batch=self.batch_per_gpu * world)

    def _is_resize(self, exc: TrainingInterrupted) -> bool:
        """Whether the interrupt is a controlled resize, not a fault."""
        return False

    def _durable_steps(self, exc: TrainingInterrupted) -> int:
        """Steps that survive the interrupt (base: checkpointed only)."""
        return 0 if exc.last_checkpoint_step is None \
            else exc.last_checkpoint_step + 1

    def _admit_ring(self, gpus: list) -> tuple[list, list]:
        """Split a candidate membership into (ring, parked)."""
        return list(gpus), []

    def _release_parked(self, parked: list) -> None:
        """Hand GPUs parked out of the ring back to the pool."""

    # -- main loop --------------------------------------------------------
    def run(self) -> FaultTolerantResult:
        """Train to completion (or exhaustion of the restart budget)."""
        res = self.resilience
        total = self.config.sim_steps
        done_steps = 0
        samples = 0.0
        lost_steps = 0
        faults = 0
        attempts = 0
        resizes = 0
        mttr: list[float] = []
        result: Optional[TrainingResult] = None
        completed = False
        wall_t0 = self.env.now

        while done_steps < total:
            if attempts - resizes > res.max_restarts:
                self._give_up(
                    f"restart budget exhausted: {attempts} attempts, "
                    f"{done_steps}/{total} steps durable",
                    attempts=attempts, steps_done=done_steps,
                    steps_total=total)
                break
            attempts += 1
            remaining = total - done_steps
            cfg = self._attempt_config(remaining)
            job = TrainingJob(self.env, self.topology, self.host,
                              list(self.gpus), self.storage, cfg,
                              collector=MetricsCollector(
                                  self.env, cfg.sample_interval),
                              prologue_plan=self._pending_prologue)
            self._pending_prologue = None
            self.current_job = job
            for hook in list(self.on_attempt):
                hook(job, attempts)
            try:
                self.env.run(until=job.start())
            except TrainingInterrupted as exc:
                resize = self._is_resize(exc)
                if resize:
                    resizes += 1
                else:
                    faults += 1
                detected_at = exc.at
                self._detected_at = detected_at
                durable = self._durable_steps(exc)
                rolled_back = exc.steps_completed - durable
                done_steps += durable
                samples += durable * cfg.resolved_global_batch()
                lost_steps += rolled_back
                self._record(
                    "resize_requested" if resize else "fault_detected",
                    cause=type(exc.cause).__name__,
                    message=str(exc.cause),
                    steps_completed=exc.steps_completed,
                    durable_steps=durable)
                if rolled_back:
                    self._record("checkpoint_rollback",
                                 rolled_back_steps=rolled_back,
                                 resume_step=done_steps)
                if not self._recover(exc.cause):
                    mttr.append(self.env.now - detected_at)
                    break
                if not resize:
                    mttr.append(self.env.now - detected_at)
                self._record("job_restarted", attempt=attempts + 1,
                             resume_step=done_steps,
                             world_size=len(self.gpus))
                continue
            result = job.collect()
            done_steps += remaining
            samples += remaining * cfg.resolved_global_batch()
            completed = True

        wall = self.env.now - wall_t0
        return FaultTolerantResult(
            completed=completed,
            attempts=attempts,
            faults=faults,
            total_steps=total,
            lost_steps=lost_steps,
            samples=samples,
            wall_time=wall,
            mttr=float(np.mean(mttr)) if mttr else 0.0,
            goodput=samples / wall if wall > 0 else 0.0,
            raw_throughput=result.throughput if result is not None else None,
            final_world_size=len(self.gpus),
            recovery_log=list(self.recovery_log),
            resize_log=list(self.resize_log),
            interrupted_reason=None if completed else self._gave_up_reason,
            result=result,
        )

    # -- recovery ---------------------------------------------------------
    def _recover(self, cause: Optional[BaseException] = None) -> bool:
        """Repair the ring; returns False when out of options.

        Transient-first: reachability is re-polled under jittered
        exponential backoff (a flapping port or mid-retrain link heals
        without any topology surgery, and checkpoint-restart alone
        suffices), bounded by the optional total retry budget.  Devices
        still dead afterwards are resolved through the single resize
        path: hot-swap joins a spare, shrink drops the dead rank, and
        either way :meth:`_recompose` splices the matching
        state-redistribution plan into the resumed timeline.
        """
        res = self.resilience
        backoff = res.backoff_initial
        spent = 0.0
        budget = res.retry_budget_s
        self._budget_note = None
        for attempt in range(res.reattach_attempts):
            dead = [g for g in self.gpus if not self._reachable(g)]
            if not dead:
                return True
            if budget is not None and spent >= budget:
                self._budget_note = (
                    f"reattach retry budget ({budget:.2f}s) exhausted "
                    f"after {attempt} poll(s)")
                self._record("reattach_budget_exhausted",
                             spent_s=spent, budget_s=budget,
                             polls=attempt,
                             unreachable=[g.name for g in dead])
                break
            nominal = backoff
            if budget is not None:
                nominal = min(nominal, budget - spent)
            sleep = self._jittered(nominal)
            self._record("recovery_backoff",
                         wait_s=sleep, nominal_s=nominal,
                         poll=attempt + 1,
                         unreachable=[g.name for g in dead])
            self._sleep(sleep)
            spent += sleep
            backoff = min(backoff * res.backoff_factor, res.backoff_max)

        dead = [g for g in self.gpus if not self._reachable(g)]
        if not dead:
            return True

        dead_set = {g.name for g in dead}
        new_ring: list[GPU] = []
        swapped = 0
        removed = 0
        for gpu in self.gpus:  # preserve ring positions where possible
            if gpu.name not in dead_set:
                new_ring.append(gpu)
                continue
            replacement = self._hot_swap(gpu) if res.allow_hot_spare \
                else None
            if replacement is not None:
                swapped += 1
                new_ring.append(replacement)
                continue
            if not res.allow_shrink:
                return self._give_up(
                    f"{gpu.name} is dead with no spare and shrink "
                    "disabled", device=gpu.name)
            removed += 1
            self._record("ring_shrunk", removed=gpu.name,
                         world_size=len(self.gpus) - removed)
        if not new_ring:
            return self._give_up("no GPUs left in the ring")
        kind = "swap" if swapped and not removed else "shrink"
        return self._recompose(new_ring, kind,
                               detected_at=self._detected_at)

    def _recompose(self, new_gpus: list, kind: str,
                   detected_at: Optional[float] = None) -> bool:
        """The one resize path: adopt a new membership + splice reshard.

        Hot-spare swap and N-1 shrink are degenerate cases (one joiner /
        no joiners); elastic grow and preemption shrink route through
        the same code.  Builds the state-redistribution plan for the
        membership delta, queues it as the next attempt's prologue, and
        records the resize in the log, the audit stream, and (when a
        tracer is attached) as a ``recompose`` span.
        """
        ring, parked = self._admit_ring(new_gpus)
        if not ring:
            return self._give_up("no GPUs left in the ring")
        old_names = [g.name for g in self.gpus]
        new_names = [g.name for g in ring]
        if new_names == old_names:
            return True  # membership unchanged: nothing to redistribute
        self._release_parked(parked)
        replica = self.state_bytes
        shard = replica / len(ring) \
            if self.config.strategy.sharded and len(ring) > 1 else 0.0
        plan = compile_reshard(new_names, old_names, replica, shard)
        self._pending_prologue = plan
        reshard_bytes = sum(op.bytes for op in plan)
        estimate = self._estimate_reshard_seconds(plan, ring)
        now = self.env.now
        event = ResizeEvent(
            time=now, kind=kind,
            old_world=len(old_names), new_world=len(new_names),
            joined=tuple(n for n in new_names if n not in old_names),
            departed=tuple(n for n in old_names if n not in new_names),
            parked=tuple(g.name for g in parked),
            reshard_bytes=reshard_bytes,
            reshard_seconds=estimate,
            recompose_seconds=(now - detected_at
                               if detected_at is not None else 0.0),
        )
        self.resize_log.append(event)
        self.gpus = list(ring)
        self._record("ring_resized", resize=kind,
                     old_world=event.old_world,
                     new_world=event.new_world,
                     joined=list(event.joined),
                     departed=list(event.departed),
                     parked=list(event.parked),
                     reshard_mb=reshard_bytes / 1e6,
                     reshard_s=estimate,
                     recompose_s=event.recompose_seconds)
        self.tracer.complete(
            "recompose", Category.MANAGEMENT,
            Track(self.host.name, "ft-runtime"),
            detected_at if detected_at is not None else now, now,
            kind=kind, old_world=event.old_world,
            new_world=event.new_world,
            reshard_bytes=reshard_bytes)
        return True

    @property
    def state_bytes(self) -> float:
        """Serialized per-rank training state a joiner must receive
        (FP32 master weights + optimizer moments, checkpoint-sized)."""
        return self._model.params * 12.0

    def _estimate_reshard_seconds(self, plan, ring) -> Optional[float]:
        """Fast-path estimate of the reshard plan's makespan.

        Pure (no env advance, no device mutation), so it is safe to run
        mid-recovery; returns None when the fast path is ineligible
        (e.g. a traced topology).
        """
        if is_rendezvous_only(plan):
            return 0.0  # pure quiesce: no bytes move
        try:
            comm = Communicator(
                self.env, self.topology, [g.name for g in ring],
                gpus=list(ring),
                transport_penalty=self.config.transport_penalty)
            ctx = ExecutionContext(
                env=self.env, comm=comm, gpus=list(ring),
                topology=self.topology, host_node=self.host.dram_node,
                storage=self.storage)
            return fastpath_schedule(plan, ctx).makespan
        except FastPathUnsupported:
            return None

    def _hot_swap(self, gpu: GPU) -> Optional[GPU]:
        """Swap a dead chassis GPU for a spare; None when impossible."""
        if self.inventory is None:
            return None
        try:
            spare = self.inventory.replace_gpu(gpu.name, self.host.name)
        except InventoryError as exc:
            self._record("hotplug_unavailable", device=gpu.name,
                         reason=str(exc))
            return None
        if not self._reachable(spare):
            self._record("hotplug_unavailable", device=spare.name,
                         reason="spare unreachable")
            return None
        self._record("gpu_hotplug", failed=gpu.name,
                     replacement=spare.name)
        return spare

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultTolerantTrainingJob world={len(self.gpus)} "
                f"steps={self.config.sim_steps}>")
