"""Fault-tolerant training: checkpoint-restart, backoff, elastic recovery.

:class:`FaultTolerantTrainingJob` wraps :class:`~repro.training.loop.
TrainingJob` in the recovery state machine a production trainer runs:

1. **Detect** — the job's workers convert fabric faults (link pulled,
   GPU dropped, collective watchdog) into :class:`TrainingInterrupted`.
2. **Reattach with backoff** — transient degradations (a flapping host
   port, a link mid-retrain) heal on their own; the runtime polls device
   reachability with exponential backoff before touching the ring.
3. **Repair the ring** — devices still dead after the backoff budget are
   either *hot-swapped* for a chassis spare through the management plane
   (:class:`~repro.management.inventory.Inventory` — the composable
   system's unique recovery lever) or, failing that, *dropped* from the
   ring, which shrinks to N-1 at constant per-GPU batch.
4. **Restart from checkpoint** — a fresh attempt resumes from the last
   durable checkpoint and replays the lost steps.

Every transition is recorded both in the local recovery log and, when a
management :class:`~repro.management.events.EventLog` is wired in, as
audit events — recovery is an *operator-visible* activity, not a silent
retry loop.

Accounting follows the fault-tolerance literature: **goodput** is
first-time-useful samples over total wall time (recovery stalls, replays
and checkpoint overhead all tax it), versus the fault-free **raw
throughput**; **MTTR** is detection-to-restart time averaged over
faults.  Sweeping ``checkpoint_interval_steps`` against a given fault
rate traces the Young/Daly optimal-interval trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..devices.gpu import GPU
from ..devices.host import HostServer
from ..devices.storage import StorageDevice
from ..fabric.topology import Topology
from ..management.events import EventLog
from ..management.inventory import Inventory, InventoryError
from ..sim import Environment
from ..telemetry import MetricsCollector
from .loop import (
    TrainingConfig,
    TrainingInterrupted,
    TrainingJob,
    TrainingResult,
)

__all__ = ["ResilienceConfig", "RecoveryAction", "FaultTolerantResult",
           "FaultTolerantTrainingJob"]


@dataclass
class ResilienceConfig:
    """Recovery policy knobs."""

    #: Restart attempts after the first (attempt count = max_restarts + 1).
    max_restarts: int = 4
    #: Reachability polls per fault before declaring devices dead.
    reattach_attempts: int = 3
    #: First backoff sleep, seconds; doubles (``backoff_factor``) per poll.
    backoff_initial: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Replace dead chassis GPUs with spares via the management plane.
    allow_hot_spare: bool = True
    #: Drop dead GPUs from the ring (N-1) when no spare can stand in.
    allow_shrink: bool = True


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery-state-machine transition, timestamped."""

    time: float
    kind: str
    detail: dict = field(default_factory=dict)


@dataclass
class FaultTolerantResult:
    """Outcome + resilience telemetry of a fault-tolerant run."""

    completed: bool
    attempts: int
    faults: int
    total_steps: int
    #: Steps computed but rolled back (work after the last checkpoint).
    lost_steps: int
    #: First-time-useful samples trained (replays not double-counted).
    samples: float
    wall_time: float
    #: Mean detection-to-restart time over faults, seconds.
    mttr: float
    #: samples / wall_time — what the cluster actually delivered.
    goodput: float
    #: Fault-free samples/s of the final ring (None until one attempt
    #: finishes cleanly).
    raw_throughput: Optional[float]
    final_world_size: int
    recovery_log: list[RecoveryAction] = field(default_factory=list)
    result: Optional[TrainingResult] = None

    @property
    def goodput_fraction(self) -> Optional[float]:
        """Goodput as a fraction of fault-free throughput."""
        if not self.raw_throughput:
            return None
        return self.goodput / self.raw_throughput

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "attempts": self.attempts,
            "faults": self.faults,
            "lost_steps": self.lost_steps,
            "wall_time_s": self.wall_time,
            "mttr_s": self.mttr,
            "goodput_samples_s": self.goodput,
            "raw_throughput_samples_s": self.raw_throughput,
            "final_world_size": self.final_world_size,
            "recovery_actions": [a.kind for a in self.recovery_log],
        }


class FaultTolerantTrainingJob:
    """Checkpoint-restart training with elastic ring repair."""

    def __init__(self, env: Environment, topology: Topology,
                 host: HostServer, gpus: list[GPU],
                 storage: StorageDevice, config: TrainingConfig,
                 resilience: Optional[ResilienceConfig] = None,
                 inventory: Optional[Inventory] = None,
                 event_log: Optional[EventLog] = None):
        if not gpus:
            raise ValueError("training needs at least one GPU")
        self.env = env
        self.topology = topology
        self.host = host
        self.gpus = list(gpus)
        self.storage = storage
        self.config = config
        self.resilience = resilience or ResilienceConfig()
        self.inventory = inventory
        self.event_log = event_log
        self.recovery_log: list[RecoveryAction] = []
        #: The job currently (or last) running — chaos hooks attach here.
        self.current_job: Optional[TrainingJob] = None
        #: Called with each freshly-built attempt's TrainingJob before it
        #: starts (lets experiments re-arm step-hook fault triggers).
        self.on_attempt: list = []
        world = len(gpus)
        global_batch = config.resolved_global_batch()
        if global_batch % world != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by world "
                f"size {world}")
        #: Held constant across ring shrinks (global batch scales).
        self.batch_per_gpu = global_batch // world

    # -- bookkeeping ------------------------------------------------------
    def _record(self, kind: str, **detail) -> None:
        self.recovery_log.append(
            RecoveryAction(self.env.now, kind, dict(detail)))
        if self.event_log is not None:
            self.event_log.record(self.env.now, kind, "ft-runtime",
                                  **detail)

    def _sleep(self, seconds: float) -> None:
        self.env.run(until=self.env.timeout(seconds))

    def _reachable(self, gpu: GPU) -> bool:
        return self.topology.reachable(self.host.dram_node, gpu.name)

    # -- main loop --------------------------------------------------------
    def run(self) -> FaultTolerantResult:
        """Train to completion (or exhaustion of the restart budget)."""
        res = self.resilience
        total = self.config.sim_steps
        done_steps = 0
        samples = 0.0
        lost_steps = 0
        faults = 0
        attempts = 0
        mttr: list[float] = []
        result: Optional[TrainingResult] = None
        completed = False
        wall_t0 = self.env.now

        while done_steps < total:
            if attempts > res.max_restarts:
                self._record("recovery_gave_up",
                             attempts=attempts,
                             steps_done=done_steps, steps_total=total)
                break
            attempts += 1
            remaining = total - done_steps
            world = len(self.gpus)
            cfg = replace(self.config, sim_steps=remaining,
                          global_batch=self.batch_per_gpu * world)
            job = TrainingJob(self.env, self.topology, self.host,
                              list(self.gpus), self.storage, cfg,
                              collector=MetricsCollector(
                                  self.env, cfg.sample_interval))
            self.current_job = job
            for hook in list(self.on_attempt):
                hook(job, attempts)
            try:
                self.env.run(until=job.start())
            except TrainingInterrupted as exc:
                faults += 1
                detected_at = exc.at
                durable = 0 if exc.last_checkpoint_step is None \
                    else exc.last_checkpoint_step + 1
                rolled_back = exc.steps_completed - durable
                done_steps += durable
                samples += durable * cfg.resolved_global_batch()
                lost_steps += rolled_back
                self._record("fault_detected",
                             cause=type(exc.cause).__name__,
                             message=str(exc.cause),
                             steps_completed=exc.steps_completed,
                             durable_steps=durable)
                if rolled_back:
                    self._record("checkpoint_rollback",
                                 rolled_back_steps=rolled_back,
                                 resume_step=done_steps)
                if not self._recover():
                    mttr.append(self.env.now - detected_at)
                    break
                mttr.append(self.env.now - detected_at)
                self._record("job_restarted", attempt=attempts + 1,
                             resume_step=done_steps,
                             world_size=len(self.gpus))
                continue
            result = job.collect()
            done_steps += remaining
            samples += remaining * cfg.resolved_global_batch()
            completed = True

        wall = self.env.now - wall_t0
        return FaultTolerantResult(
            completed=completed,
            attempts=attempts,
            faults=faults,
            total_steps=total,
            lost_steps=lost_steps,
            samples=samples,
            wall_time=wall,
            mttr=float(np.mean(mttr)) if mttr else 0.0,
            goodput=samples / wall if wall > 0 else 0.0,
            raw_throughput=result.throughput if result is not None else None,
            final_world_size=len(self.gpus),
            recovery_log=list(self.recovery_log),
            result=result,
        )

    # -- recovery ---------------------------------------------------------
    def _recover(self) -> bool:
        """Repair the ring; returns False when out of options.

        Transient-first: reachability is re-polled under exponential
        backoff (a flapping port or mid-retrain link heals without any
        topology surgery, and checkpoint-restart alone suffices).  Only
        devices still dead afterwards get hot-swapped or dropped.
        """
        res = self.resilience
        backoff = res.backoff_initial
        for attempt in range(res.reattach_attempts):
            dead = [g for g in self.gpus if not self._reachable(g)]
            if not dead:
                return True
            self._record("recovery_backoff",
                         wait_s=backoff, poll=attempt + 1,
                         unreachable=[g.name for g in dead])
            self._sleep(backoff)
            backoff = min(backoff * res.backoff_factor, res.backoff_max)

        dead = [g for g in self.gpus if not self._reachable(g)]
        if not dead:
            return True

        dead_set = {g.name for g in dead}
        survivors: list[GPU] = []
        for gpu in self.gpus:  # preserve ring positions where possible
            if gpu.name not in dead_set:
                survivors.append(gpu)
                continue
            replacement = self._hot_swap(gpu) if res.allow_hot_spare \
                else None
            if replacement is not None:
                survivors.append(replacement)
                continue
            if not res.allow_shrink:
                self._record("recovery_gave_up", device=gpu.name,
                             reason="no spare and shrink disabled")
                return False
            self._record("ring_shrunk", removed=gpu.name,
                         world_size=len(self.gpus) - 1)
        if not survivors:
            self._record("recovery_gave_up", reason="no GPUs left")
            return False
        self.gpus = survivors
        return True

    def _hot_swap(self, gpu: GPU) -> Optional[GPU]:
        """Swap a dead chassis GPU for a spare; None when impossible."""
        if self.inventory is None:
            return None
        try:
            spare = self.inventory.replace_gpu(gpu.name, self.host.name)
        except InventoryError as exc:
            self._record("hotplug_unavailable", device=gpu.name,
                         reason=str(exc))
            return None
        if not self._reachable(spare):
            self._record("hotplug_unavailable", device=spare.name,
                         reason="spare unreachable")
            return None
        self._record("gpu_hotplug", failed=gpu.name,
                     replacement=spare.name)
        return spare

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultTolerantTrainingJob world={len(self.gpus)} "
                f"steps={self.config.sim_steps}>")
