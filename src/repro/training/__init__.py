"""Training engine: collectives, parallel strategies, precision, loop.

This package is the performance-critical heart of the reproduction: it
schedules actual compute kernels and fabric transfers for data-parallel
DL training, reproducing the interplay between model size, interconnect
bandwidth, and software strategy that the paper characterizes.
"""

from .collectives import CollectiveError, CollectiveTimeout, Communicator
from .loop import (
    TrainingConfig,
    TrainingInterrupted,
    TrainingJob,
    TrainingResult,
    clear_plan_compile_cache,
    plan_compile_stats,
)
from .parallel import (
    STRATEGY_REGISTRY,
    CompileContext,
    DataParallel,
    DistributedDataParallel,
    FullyShardedDataParallel,
    ParallelStrategy,
    PipelineParallel,
    ShardedDataParallel,
    StepCosts,
    TensorParallel,
    TwoDParallel,
    activation_factor,
)
from .precision import AMP_POLICY, FP32_POLICY, PrecisionPolicy
from .resilience import (
    FaultTolerantResult,
    FaultTolerantTrainingJob,
    RecoveryAction,
    ResilienceConfig,
    ResizeEvent,
)

__all__ = [
    "Communicator",
    "CollectiveError",
    "CollectiveTimeout",
    "ParallelStrategy",
    "DataParallel",
    "DistributedDataParallel",
    "ShardedDataParallel",
    "PipelineParallel",
    "TensorParallel",
    "TwoDParallel",
    "FullyShardedDataParallel",
    "STRATEGY_REGISTRY",
    "CompileContext",
    "StepCosts",
    "activation_factor",
    "PrecisionPolicy",
    "AMP_POLICY",
    "FP32_POLICY",
    "TrainingConfig",
    "TrainingInterrupted",
    "TrainingJob",
    "TrainingResult",
    "clear_plan_compile_cache",
    "plan_compile_stats",
    "ResilienceConfig",
    "RecoveryAction",
    "ResizeEvent",
    "FaultTolerantTrainingJob",
    "FaultTolerantResult",
]
