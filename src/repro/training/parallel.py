"""Data-parallel training strategies: DP, DDP, and sharded (ZeRO-style).

These reproduce the software-level optimization axis of the paper's
§V-C.4 / Fig. 16:

- :class:`DataParallel` (PyTorch ``nn.DataParallel``): one master GPU
  broadcasts parameters every iteration and gathers all gradients back —
  the master's links bottleneck the step, GPUs idle during the funnel-in,
  and utilization suffers, "especially for large models".
- :class:`DistributedDataParallel` (PyTorch DDP): one process per GPU,
  bucketed ring allreduce overlapped with the backward pass.
- :class:`ShardedDataParallel` (ZeRO-style): DDP communication restructured
  as reduce-scatter + all-gather with optimizer state, master weights, and
  gradients partitioned across replicas — the memory saving is what lets
  the paper push BERT-large's per-GPU batch from 6 to 10.

Each strategy provides both a *memory model* (what fits on a 16 GB V100)
and a *step schedule* (a generator executed by each rank's training
process, issuing real compute kernels and collectives).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..devices.gpu import GPU, Precision
from ..telemetry.trace import NULL_TRACER, Category, Tracer, Track
from ..workloads.layers import ModelGraph
from .collectives import Communicator
from .precision import PrecisionPolicy

__all__ = [
    "StepCosts",
    "ParallelStrategy",
    "DataParallel",
    "DistributedDataParallel",
    "ShardedDataParallel",
    "FRAMEWORK_OVERHEAD_BYTES",
    "activation_factor",
]

#: CUDA context + cuDNN/cuBLAS workspaces + allocator fragmentation.
FRAMEWORK_OVERHEAD_BYTES = 3.0e9
#: Autograd keeps saved tensors beyond layer outputs; transformers hold
#: attention probabilities and per-head intermediates, CNNs benefit from
#: in-place activations.  Multipliers on the per-sample activation bytes.
_TRANSFORMER_ACTIVATION_FACTOR = 3.2
_CNN_ACTIVATION_FACTOR = 1.2

#: DDP default gradient bucket size (PyTorch's 25 MB).
DEFAULT_BUCKET_BYTES = 25e6
#: Fraction of backward time after which the first bucket is ready.
_FIRST_BUCKET_FRACTION = 0.25


def activation_factor(model: ModelGraph) -> float:
    """Autograd activation-memory multiplier for a model family."""
    if model.family == "transformer":
        return _TRANSFORMER_ACTIVATION_FACTOR
    return _CNN_ACTIVATION_FACTOR


@dataclass(frozen=True)
class StepCosts:
    """Per-rank, per-step analytic costs handed to a strategy."""

    model: ModelGraph
    policy: PrecisionPolicy
    efficiency: float
    batch_per_gpu: int
    #: FLOPs for forward / backward of this rank's micro-batch.
    forward_flops: float
    backward_flops: float
    #: HBM traffic for forward / backward of this rank's micro-batch.
    forward_hbm_bytes: float
    backward_hbm_bytes: float
    #: Gradient bytes on the wire for this replica.
    gradient_bytes: float
    #: Weight bytes at compute precision (all-gather volume for sharded).
    weight_bytes: float
    #: Multiplicative kernel-time noise (sigma of a lognormal).  0 keeps
    #: the simulation fully deterministic; >0 models real-system variance
    #: (clock throttling, cache effects, OS noise) and lets the
    #: straggler-amplification study quantify how collectives propagate
    #: the slowest rank's jitter to everyone.
    jitter: float = 0.0
    #: Seeded RNG backing the jitter (shared across ranks of one job).
    rng: object = None

    @classmethod
    def for_benchmark(cls, model: ModelGraph, policy: PrecisionPolicy,
                      efficiency: float, batch_per_gpu: int,
                      jitter: float = 0.0,
                      seed: int = 0x5EED) -> "StepCosts":
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        fwd = model.forward_flops_per_sample * batch_per_gpu
        bwd = 2.0 * fwd
        hbm = model.hbm_bytes_per_sample(policy.compute) * batch_per_gpu
        rng = None
        if jitter > 0:
            import numpy as np
            rng = np.random.default_rng(seed)
        return cls(
            model=model,
            policy=policy,
            efficiency=efficiency,
            batch_per_gpu=batch_per_gpu,
            forward_flops=fwd,
            backward_flops=bwd,
            forward_hbm_bytes=hbm / 3.0,
            backward_hbm_bytes=2.0 * hbm / 3.0,
            gradient_bytes=policy.gradient_bytes(model),
            weight_bytes=model.weight_bytes(policy.compute),
            jitter=jitter,
            rng=rng,
        )

    def jitter_factor(self) -> float:
        """One multiplicative noise sample (1.0 when jitter is off)."""
        if self.rng is None:
            return 1.0
        return float(self.rng.lognormal(mean=0.0, sigma=self.jitter))


class ParallelStrategy:
    """Base strategy: memory model + per-rank step schedule."""

    name = "base"
    #: Whether optimizer state / master weights / gradients are sharded.
    sharded = False

    # -- memory model --------------------------------------------------------
    def memory_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                       batch_per_gpu: int, world_size: int) -> float:
        """Bytes of device memory one replica needs."""
        weights = model.weight_bytes(policy.compute)
        grads = model.gradient_bytes(policy.compute)
        if policy.compute is Precision.FP16 and policy.master_weights:
            # FP32 master + two Adam moments.
            opt = model.params * 12.0
        else:
            # Weights are already FP32; two Adam moments.
            opt = model.params * 8.0
        if self.sharded and world_size > 1:
            opt /= world_size
            grads /= world_size
        activations = (model.activation_bytes_per_sample(policy.compute)
                       * batch_per_gpu * activation_factor(model))
        return (FRAMEWORK_OVERHEAD_BYTES + weights + grads + opt
                + activations)

    def max_batch_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                          gpu_memory_bytes: float, world_size: int) -> int:
        """Largest per-GPU batch that fits in device memory."""
        fixed = self.memory_per_gpu(model, policy, 0, world_size)
        free = gpu_memory_bytes - fixed
        per_sample = (model.activation_bytes_per_sample(policy.compute)
                      * activation_factor(model))
        if free <= 0 or per_sample <= 0:
            return 0
        return int(free / per_sample)

    # -- step schedule ----------------------------------------------------------
    def run_step(self, env, comm: Communicator, gpus: list[GPU], rank: int,
                 costs: StepCosts, accumulation: int = 1,
                 tracer: Tracer = NULL_TRACER, track: Track = None):
        """Generator: compute + communication for one optimizer step.

        ``costs`` describes one *micro-batch*; with ``accumulation > 1``
        the strategy runs that many forward/backward passes, synchronizing
        gradients only on the last one (PyTorch's ``no_sync()`` pattern).
        Called after the rank's H2D input copy has completed.  ``tracer``
        and ``track`` record per-phase spans (no-op by default).
        """
        raise NotImplementedError

    # -- shared kernels -----------------------------------------------------------
    def _forward(self, gpus, rank, costs):
        return gpus[rank].compute(costs.forward_flops
                                  * costs.jitter_factor(),
                                  costs.forward_hbm_bytes,
                                  costs.policy.compute, costs.efficiency)

    def _backward(self, gpus, rank, costs):
        return gpus[rank].compute(costs.backward_flops
                                  * costs.jitter_factor(),
                                  costs.backward_hbm_bytes,
                                  costs.policy.compute, costs.efficiency)

    def _optimizer(self, gpus, rank, costs, shard: float = 1.0):
        params = costs.model.params * shard
        # Adam: read/update weights, master, moments (~20 bytes/param);
        # trivially few FLOPs, so the kernel is HBM-bound.
        return gpus[rank].compute(5.0 * params, 20.0 * params,
                                  Precision.FP32, 0.9)

    def _step_overhead(self, env, costs, base_time: float):
        overhead = costs.policy.step_overhead * base_time
        return env.timeout(overhead)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class DataParallel(ParallelStrategy):
    """Single-process DP: master GPU broadcasts weights and gathers grads."""

    name = "dp"

    def __init__(self, master_rank: int = 0):
        self.master_rank = master_rank

    def run_step(self, env, comm, gpus, rank, costs, accumulation=1,
                 tracer=NULL_TRACER, track=None):
        t0 = env.now
        # Master replicates parameters to every GPU, every iteration.
        with tracer.span("broadcast-wait", Category.COMM, track,
                         bytes=costs.weight_bytes):
            yield comm.broadcast(rank, costs.weight_bytes,
                                 root=self.master_rank)
        for _ in range(accumulation):
            with tracer.span("forward", Category.COMPUTE, track):
                yield self._forward(gpus, rank, costs)
            with tracer.span("backward", Category.COMPUTE, track):
                yield self._backward(gpus, rank, costs)
        # All gradients funnel into the master (no overlap in DP).
        with tracer.span("grad-reduce", Category.COMM, track,
                         bytes=costs.gradient_bytes):
            yield comm.reduce(rank, costs.gradient_bytes,
                              root=self.master_rank)
        if rank == self.master_rank:
            with tracer.span("optimizer", Category.COMPUTE, track):
                yield self._optimizer(gpus, rank, costs)
        # Everyone waits for the master's update before the next iteration.
        with tracer.span("sync-barrier", Category.STALL, track):
            yield comm.barrier(rank)
        with tracer.span("step-overhead", Category.COMPUTE, track):
            yield self._step_overhead(env, costs, env.now - t0)


class DistributedDataParallel(ParallelStrategy):
    """DDP: bucketed ring allreduce overlapped with the backward pass."""

    name = "ddp"

    def __init__(self, bucket_bytes: float = DEFAULT_BUCKET_BYTES):
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self.bucket_bytes = bucket_bytes

    def _bucket_plan(self, costs: StepCosts,
                     backward_time: float) -> list[tuple[float, float]]:
        """(ready_time, bucket_bytes) pairs across the backward pass."""
        total = costs.gradient_bytes
        n = max(1, math.ceil(total / self.bucket_bytes))
        per = total / n
        plan = []
        for i in range(n):
            frac = _FIRST_BUCKET_FRACTION \
                + (1.0 - _FIRST_BUCKET_FRACTION) * (i + 1) / n
            plan.append((frac * backward_time, per))
        return plan

    def _sync_bucket(self, env, comm, rank, delay, nbytes):
        yield env.timeout(delay)
        yield self._collective(comm, rank, nbytes)

    def _collective(self, comm, rank, nbytes):
        return comm.allreduce(rank, nbytes)

    def run_step(self, env, comm, gpus, rank, costs, accumulation=1,
                 tracer=NULL_TRACER, track=None):
        t0 = env.now
        # Accumulation micro-steps run without gradient sync (no_sync()).
        for _ in range(max(0, accumulation - 1)):
            with tracer.span("forward", Category.COMPUTE, track):
                yield self._forward(gpus, rank, costs)
            with tracer.span("backward", Category.COMPUTE, track):
                yield self._backward(gpus, rank, costs)
        with tracer.span("forward", Category.COMPUTE, track):
            yield self._forward(gpus, rank, costs)
        backward_time = gpus[rank].kernel_time(
            costs.backward_flops, costs.backward_hbm_bytes,
            costs.policy.compute, costs.efficiency)
        backward = self._backward(gpus, rank, costs)
        buckets = [
            env.process(self._sync_bucket(env, comm, rank, ready, nbytes))
            for ready, nbytes in self._bucket_plan(costs, backward_time)
        ]
        t_b0 = env.now
        yield env.all_of([backward] + buckets)
        # The backward kernel and the bucketed allreduce overlap; the
        # kernel process returns its actual duration, so the region splits
        # retroactively into compute and *exposed* (non-overlapped) comm.
        if tracer.enabled and track is not None:
            kernel_s = backward.value if backward.value is not None \
                else backward_time
            b_end = min(t_b0 + kernel_s, env.now)
            tracer.complete("backward", Category.COMPUTE, track, t_b0,
                            b_end, overlapped_comm=True)
            if env.now - b_end > 1e-12:
                tracer.complete("exposed-sync", Category.COMM, track,
                                b_end, env.now,
                                bytes=costs.gradient_bytes)
        yield from self._post_sync(env, comm, gpus, rank, costs,
                                   tracer=tracer, track=track)
        with tracer.span("step-overhead", Category.COMPUTE, track):
            yield self._step_overhead(env, costs, env.now - t0)

    def _post_sync(self, env, comm, gpus, rank, costs,
                   tracer=NULL_TRACER, track=None):
        with tracer.span("optimizer", Category.COMPUTE, track):
            yield self._optimizer(gpus, rank, costs)


class ShardedDataParallel(DistributedDataParallel):
    """ZeRO-style sharding: reduce-scatter + all-gather, partitioned state."""

    name = "sharded"
    sharded = True

    def _collective(self, comm, rank, nbytes):
        return comm.reduce_scatter(rank, nbytes)

    def _post_sync(self, env, comm, gpus, rank, costs,
                   tracer=NULL_TRACER, track=None):
        # Each rank updates only its 1/N shard, then re-materializes the
        # full parameter set via all-gather.
        with tracer.span("optimizer", Category.COMPUTE, track):
            yield self._optimizer(gpus, rank, costs,
                                  shard=1.0 / comm.world_size)
        with tracer.span("allgather-wait", Category.COMM, track,
                         bytes=costs.weight_bytes):
            yield comm.allgather(rank, costs.weight_bytes)
