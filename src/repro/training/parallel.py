"""Parallel training strategies as *plan compilers*: DP, DDP, sharded,
and pipeline.

These reproduce the software-level optimization axis of the paper's
§V-C.4 / Fig. 16:

- :class:`DataParallel` (PyTorch ``nn.DataParallel``): one master GPU
  broadcasts parameters every iteration and gathers all gradients back —
  the master's links bottleneck the step, GPUs idle during the funnel-in,
  and utilization suffers, "especially for large models".
- :class:`DistributedDataParallel` (PyTorch DDP): one process per GPU,
  bucketed ring allreduce overlapped with the backward pass.
- :class:`ShardedDataParallel` (ZeRO-style): DDP communication restructured
  as reduce-scatter + all-gather with optimizer state, master weights, and
  gradients partitioned across replicas — the memory saving is what lets
  the paper push BERT-large's per-GPU batch from 6 to 10.
- :class:`PipelineParallel` (GPipe-style): the model's layers are
  partitioned into one stage per GPU and micro-batches flow through the
  stages; it exists here to prove the compiler/executor split pays — the
  strategy is *only* a plan compiler, and the generic executor runs it
  unchanged.

Each strategy provides a *memory model* (what fits on a 16 GB V100) and a
*step compiler* (:meth:`ParallelStrategy.compile_step`), which emits a
:class:`repro.plan.StepPlan` — a typed op DAG the generic plan executor
replays on the DES environment.  Bucket scheduling, overlap, and
synchronization structure are therefore plan-construction decisions, not
hand-threaded generator code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..devices.gpu import Precision
from ..plan import PlanBuilder, StepPlan
from ..workloads.layers import ModelGraph
from .precision import PrecisionPolicy

__all__ = [
    "StepCosts",
    "CompileContext",
    "ParallelStrategy",
    "DataParallel",
    "DistributedDataParallel",
    "ShardedDataParallel",
    "PipelineParallel",
    "TensorParallel",
    "TwoDParallel",
    "FullyShardedDataParallel",
    "STRATEGY_REGISTRY",
    "FRAMEWORK_OVERHEAD_BYTES",
    "activation_factor",
]

#: CUDA context + cuDNN/cuBLAS workspaces + allocator fragmentation.
FRAMEWORK_OVERHEAD_BYTES = 3.0e9
#: Autograd keeps saved tensors beyond layer outputs; transformers hold
#: attention probabilities and per-head intermediates, CNNs benefit from
#: in-place activations.  Multipliers on the per-sample activation bytes.
_TRANSFORMER_ACTIVATION_FACTOR = 3.2
_CNN_ACTIVATION_FACTOR = 1.2

#: DDP default gradient bucket size (PyTorch's 25 MB).
DEFAULT_BUCKET_BYTES = 25e6
#: Fraction of backward time after which the first bucket is ready.
_FIRST_BUCKET_FRACTION = 0.25


def activation_factor(model: ModelGraph) -> float:
    """Autograd activation-memory multiplier for a model family."""
    if model.family == "transformer":
        return _TRANSFORMER_ACTIVATION_FACTOR
    return _CNN_ACTIVATION_FACTOR


@dataclass(frozen=True)
class StepCosts:
    """Per-rank, per-step analytic costs handed to a strategy."""

    model: ModelGraph
    policy: PrecisionPolicy
    efficiency: float
    batch_per_gpu: int
    #: FLOPs for forward / backward of this rank's micro-batch.
    forward_flops: float
    backward_flops: float
    #: HBM traffic for forward / backward of this rank's micro-batch.
    forward_hbm_bytes: float
    backward_hbm_bytes: float
    #: Gradient bytes on the wire for this replica.
    gradient_bytes: float
    #: Weight bytes at compute precision (all-gather volume for sharded).
    weight_bytes: float
    #: Multiplicative kernel-time noise (sigma of a lognormal).  0 keeps
    #: the simulation fully deterministic; >0 models real-system variance
    #: (clock throttling, cache effects, OS noise) and lets the
    #: straggler-amplification study quantify how collectives propagate
    #: the slowest rank's jitter to everyone.
    jitter: float = 0.0
    #: Seeded RNG backing the jitter (shared across ranks of one job).
    rng: object = None

    @classmethod
    def for_benchmark(cls, model: ModelGraph, policy: PrecisionPolicy,
                      efficiency: float, batch_per_gpu: int,
                      jitter: float = 0.0,
                      seed: int = 0x5EED) -> "StepCosts":
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        fwd = model.forward_flops_per_sample * batch_per_gpu
        bwd = 2.0 * fwd
        hbm = model.hbm_bytes_per_sample(policy.compute) * batch_per_gpu
        rng = None
        if jitter > 0:
            import numpy as np
            rng = np.random.default_rng(seed)
        return cls(
            model=model,
            policy=policy,
            efficiency=efficiency,
            batch_per_gpu=batch_per_gpu,
            forward_flops=fwd,
            backward_flops=bwd,
            forward_hbm_bytes=hbm / 3.0,
            backward_hbm_bytes=2.0 * hbm / 3.0,
            gradient_bytes=policy.gradient_bytes(model),
            weight_bytes=model.weight_bytes(policy.compute),
            jitter=jitter,
            rng=rng,
        )

    def jitter_factor(self) -> float:
        """One multiplicative noise sample (1.0 when jitter is off)."""
        if self.rng is None:
            return 1.0
        return float(self.rng.lognormal(mean=0.0, sigma=self.jitter))


@dataclass
class CompileContext:
    """What a strategy needs to compile one step into a plan."""

    costs: StepCosts
    world_size: int
    accumulation: int = 1
    #: The actual rank GPUs; lets compilers place schedule anchors that
    #: depend on kernel *time* (DDP's bucket readiness points) without
    #: hard-coding a device model.
    gpus: Optional[list] = None

    def backward_seconds(self, rank: int) -> float:
        """Deterministic backward kernel time on this rank's GPU."""
        c = self.costs
        return self.gpus[rank].kernel_time(
            c.backward_flops, c.backward_hbm_bytes, c.policy.compute,
            c.efficiency)


class ParallelStrategy:
    """Base strategy: memory model + step-plan compiler."""

    name = "base"
    #: Whether optimizer state / master weights / gradients are sharded.
    sharded = False

    # -- batch placement ---------------------------------------------------
    def rank_batch(self, global_batch: int, world_size: int) -> int:
        """Samples one rank processes per step (data-parallel default)."""
        if global_batch % world_size != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by "
                f"world size {world_size}")
        return global_batch // world_size

    def input_ranks(self, world_size: int) -> tuple:
        """Ranks the dataloader must feed (all of them under DP)."""
        return tuple(range(world_size))

    # -- memory model ------------------------------------------------------
    def memory_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                       batch_per_gpu: int, world_size: int) -> float:
        """Bytes of device memory one replica needs."""
        weights = model.weight_bytes(policy.compute)
        grads = model.gradient_bytes(policy.compute)
        if policy.compute is Precision.FP16 and policy.master_weights:
            # FP32 master + two Adam moments.
            opt = model.params * 12.0
        else:
            # Weights are already FP32; two Adam moments.
            opt = model.params * 8.0
        if self.sharded and world_size > 1:
            opt /= world_size
            grads /= world_size
        activations = (model.activation_bytes_per_sample(policy.compute)
                       * batch_per_gpu * activation_factor(model))
        return (FRAMEWORK_OVERHEAD_BYTES + weights + grads + opt
                + activations)

    def max_batch_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                          gpu_memory_bytes: float, world_size: int) -> int:
        """Largest per-GPU batch that fits in device memory."""
        fixed = self.memory_per_gpu(model, policy, 0, world_size)
        free = gpu_memory_bytes - fixed
        # Marginal activation cost of one sample under *this* strategy's
        # memory model (pipeline stages, e.g., hold only their share).
        per_sample = self.memory_per_gpu(model, policy, 1,
                                         world_size) - fixed
        if free <= 0 or per_sample <= 0:
            return 0
        return int(free / per_sample)

    # -- step compiler -----------------------------------------------------
    def compile_step(self, ctx: CompileContext) -> StepPlan:
        """Compile one optimizer step into a :class:`StepPlan`.

        ``ctx.costs`` describes one *micro-batch*; with
        ``ctx.accumulation > 1`` the plan contains that many
        forward/backward passes, synchronizing gradients only on the
        last one (PyTorch's ``no_sync()`` pattern).  The plan starts
        after the rank's H2D input copy has completed.
        """
        raise NotImplementedError

    # -- shared plan fragments ---------------------------------------------
    def _compute_op(self, b: PlanBuilder, rank: int, name: str,
                    costs: StepCosts, flops: float, hbm_bytes: float,
                    deps=()) -> str:
        return b.compute(rank, name, flops=flops, hbm_bytes=hbm_bytes,
                         precision=costs.policy.compute,
                         efficiency=costs.efficiency, jittered=True,
                         deps=deps)

    def _forward_op(self, b, rank, costs, deps=()) -> str:
        return self._compute_op(b, rank, "forward", costs,
                                costs.forward_flops,
                                costs.forward_hbm_bytes, deps)

    def _backward_op(self, b, rank, costs, deps=()) -> str:
        return self._compute_op(b, rank, "backward", costs,
                                costs.backward_flops,
                                costs.backward_hbm_bytes, deps)

    def _optimizer_op(self, b: PlanBuilder, rank: int, costs: StepCosts,
                      deps=(), shard: float = 1.0) -> str:
        params = costs.model.params * shard
        # Adam: read/update weights, master, moments (~20 bytes/param);
        # trivially few FLOPs, so the kernel is HBM-bound.
        return b.compute(rank, "optimizer", flops=5.0 * params,
                         hbm_bytes=20.0 * params,
                         precision=Precision.FP32, efficiency=0.9,
                         deps=deps)

    def _overhead_op(self, b: PlanBuilder, rank: int, costs: StepCosts,
                     deps=()) -> str:
        # PyTorch's per-step framework overhead scales with step length;
        # the executor resolves the elapsed fraction at run time.
        return b.delay(rank, "step-overhead",
                       elapsed_fraction=costs.policy.step_overhead,
                       deps=deps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class DataParallel(ParallelStrategy):
    """Single-process DP: master GPU broadcasts weights and gathers grads."""

    name = "dp"

    def __init__(self, master_rank: int = 0):
        self.master_rank = master_rank

    def compile_step(self, ctx: CompileContext) -> StepPlan:
        costs = ctx.costs
        b = PlanBuilder(f"{self.name}-step", ctx.world_size,
                        meta={"strategy": self.name})
        b.declare_conservation("weights",
                               ctx.world_size * costs.weight_bytes)
        b.declare_conservation("gradients",
                               ctx.world_size * costs.gradient_bytes)
        for rank in range(ctx.world_size):
            # Master replicates parameters to every GPU, every iteration.
            prev = b.collective(rank, "broadcast-wait", "broadcast",
                                costs.weight_bytes, root=self.master_rank,
                                payload="weights")
            for _ in range(ctx.accumulation):
                prev = self._forward_op(b, rank, costs, deps=[prev])
                prev = self._backward_op(b, rank, costs, deps=[prev])
            # All gradients funnel into the master (no overlap in DP).
            prev = b.collective(rank, "grad-reduce", "reduce",
                                costs.gradient_bytes,
                                root=self.master_rank, deps=[prev],
                                payload="gradients")
            if rank == self.master_rank:
                prev = self._optimizer_op(b, rank, costs, deps=[prev])
            # Everyone waits for the master's update before continuing.
            prev = b.barrier(rank, "sync-barrier", deps=[prev])
            self._overhead_op(b, rank, costs, deps=[prev])
        return b.build()


class DistributedDataParallel(ParallelStrategy):
    """DDP: bucketed ring allreduce overlapped with the backward pass."""

    name = "ddp"
    #: Collective the gradient buckets use.
    _bucket_collective = "allreduce"

    def __init__(self, bucket_bytes: float = DEFAULT_BUCKET_BYTES):
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        self.bucket_bytes = bucket_bytes

    def _bucket_plan(self, costs: StepCosts,
                     backward_time: float) -> list[tuple[float, float]]:
        """(ready_time, bucket_bytes) pairs across the backward pass."""
        total = costs.gradient_bytes
        n = max(1, math.ceil(total / self.bucket_bytes))
        per = total / n
        plan = []
        for i in range(n):
            frac = _FIRST_BUCKET_FRACTION \
                + (1.0 - _FIRST_BUCKET_FRACTION) * (i + 1) / n
            plan.append((frac * backward_time, per))
        return plan

    def compile_step(self, ctx: CompileContext) -> StepPlan:
        costs = ctx.costs
        b = PlanBuilder(f"{self.name}-step", ctx.world_size,
                        meta={"strategy": self.name,
                              "bucket_bytes": self.bucket_bytes,
                              "buckets": len(self._bucket_plan(
                                  ctx.costs, 1.0))})
        self._declare_conservation(b, ctx)
        for rank in range(ctx.world_size):
            prev = None
            # Accumulation micro-steps run without gradient sync
            # (no_sync()).
            for _ in range(max(0, ctx.accumulation - 1)):
                prev = self._forward_op(b, rank, costs,
                                        deps=[prev] if prev else ())
                prev = self._backward_op(b, rank, costs, deps=[prev])
            fwd = self._forward_op(b, rank, costs,
                                   deps=[prev] if prev else ())
            bwd = self._backward_op(b, rank, costs, deps=[fwd])
            # Bucket i's gradients exist a known fraction into the
            # backward kernel; each bucket's collective is gated on an
            # untraced delay anchored at the same instant backward
            # starts, so the allreduce overlaps the kernel exactly as
            # DDP's autograd hooks make it.
            joins = [bwd]
            backward_time = ctx.backward_seconds(rank)
            for i, (ready, nbytes) in enumerate(
                    self._bucket_plan(costs, backward_time)):
                gate = b.delay(rank, f"bucket{i}-ready", seconds=ready,
                               deps=[fwd], traced=False)
                joins.append(
                    b.collective(rank, "grad-bucket",
                                 self._bucket_collective, nbytes,
                                 deps=[gate], payload="gradients"))
            prev = self._compile_post_sync(b, rank, ctx, deps=joins)
            self._overhead_op(b, rank, costs, deps=[prev])
        return b.build()

    def _declare_conservation(self, b: PlanBuilder,
                              ctx: CompileContext) -> None:
        b.declare_conservation(
            "gradients", ctx.world_size * ctx.costs.gradient_bytes)

    def _compile_post_sync(self, b: PlanBuilder, rank: int,
                           ctx: CompileContext, deps) -> str:
        return self._optimizer_op(b, rank, ctx.costs, deps=deps)


class ShardedDataParallel(DistributedDataParallel):
    """ZeRO-style sharding: reduce-scatter + all-gather, partitioned state."""

    name = "sharded"
    sharded = True
    _bucket_collective = "reduce_scatter"

    def _declare_conservation(self, b: PlanBuilder,
                              ctx: CompileContext) -> None:
        super()._declare_conservation(b, ctx)
        b.declare_conservation(
            "weights", ctx.world_size * ctx.costs.weight_bytes)

    def _compile_post_sync(self, b: PlanBuilder, rank: int,
                           ctx: CompileContext, deps) -> str:
        # Each rank updates only its 1/N shard, then re-materializes the
        # full parameter set via all-gather.
        opt = self._optimizer_op(b, rank, ctx.costs, deps=deps,
                                 shard=1.0 / ctx.world_size)
        return b.collective(rank, "allgather-wait", "all_gather",
                            ctx.costs.weight_bytes, deps=[opt],
                            payload="weights")


class PipelineParallel(ParallelStrategy):
    """GPipe-style pipeline parallelism, expressed purely as a compiler.

    The model's layers are split into one *stage* per GPU; the global
    batch is split into micro-batches that flow through the stages
    (all forwards, then all backwards in reverse — GPipe's schedule, with
    its characteristic (S-1)/(M+S-1) bubble).  Stage-boundary activation
    and gradient hand-offs are explicit :class:`~repro.plan.P2PCopy` ops
    with cross-rank dependencies — nothing here touches the executor,
    which is the point: a scheduling idea is a plan-construction pass.
    """

    name = "pipeline"

    def __init__(self, microbatches: int = 8):
        if microbatches < 1:
            raise ValueError("microbatches must be >= 1")
        self.microbatches = microbatches

    # -- batch placement ---------------------------------------------------
    def rank_batch(self, global_batch: int, world_size: int) -> int:
        """Every sample visits every stage: ranks see the full batch."""
        if global_batch % self.microbatches != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by "
                f"{self.microbatches} microbatches")
        return global_batch

    def input_ranks(self, world_size: int) -> tuple:
        """Only the first stage ingests data."""
        return (0,)

    # -- memory model ------------------------------------------------------
    def memory_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                       batch_per_gpu: int, world_size: int) -> float:
        """One stage's share: 1/S of weights, grads, optimizer state, and
        of the batch's activations (GPipe stashes every micro-batch's
        activations until its backward, so the full batch's worth is live
        across the pipeline — each stage holding its layers' slice)."""
        stages = max(1, world_size)
        weights = model.weight_bytes(policy.compute)
        grads = model.gradient_bytes(policy.compute)
        if policy.compute is Precision.FP16 and policy.master_weights:
            opt = model.params * 12.0
        else:
            opt = model.params * 8.0
        activations = (model.activation_bytes_per_sample(policy.compute)
                       * batch_per_gpu * activation_factor(model))
        return (FRAMEWORK_OVERHEAD_BYTES
                + (weights + grads + opt + activations) / stages)

    # -- step compiler -----------------------------------------------------
    def _boundary_bytes(self, costs: StepCosts, samples: float) -> float:
        """Activation bytes crossing one stage boundary per micro-batch:
        roughly one layer's output (per-sample activations / depth)."""
        model = costs.model
        per_layer = model.activation_bytes_per_sample(
            costs.policy.compute) / max(1, model.depth)
        return per_layer * samples

    def compile_step(self, ctx: CompileContext) -> StepPlan:
        costs = ctx.costs
        stages = ctx.world_size
        # Accumulation folds into the schedule: it is just more
        # micro-batches through the same pipeline flush.
        mb_total = self.microbatches * ctx.accumulation
        # ``costs`` covers one accumulation micro-batch of the full
        # model; one pipeline micro-batch on one stage is 1/(S*M) of the
        # full-batch work (the accumulation factor cancels).
        f_flops = costs.forward_flops / (stages * self.microbatches)
        f_hbm = costs.forward_hbm_bytes / (stages * self.microbatches)
        b_flops = costs.backward_flops / (stages * self.microbatches)
        b_hbm = costs.backward_hbm_bytes / (stages * self.microbatches)
        samples_mb = (costs.batch_per_gpu * ctx.accumulation) / mb_total
        boundary = self._boundary_bytes(costs, samples_mb)

        b = PlanBuilder(f"{self.name}-step", stages,
                        meta={"strategy": self.name,
                              "microbatches": mb_total})
        if stages > 1:
            b.declare_conservation(
                "activations", 2.0 * (stages - 1) * mb_total * boundary)

        # Pass 1: forwards flow down the pipeline; each stage's kernels
        # serialize on its stream, each hand-off gates the next stage.
        fwd: dict = {}
        send_act: dict = {}
        for rank in range(stages):
            prev = None
            for j in range(mb_total):
                deps = [prev] if prev else []
                if rank > 0:
                    deps.append(send_act[rank - 1, j])
                prev = self._compute_op(b, rank, f"forward-mb{j}", costs,
                                        f_flops, f_hbm, deps=deps)
                fwd[rank, j] = prev
                if rank < stages - 1:
                    send_act[rank, j] = b.p2p(
                        rank, f"send-act-mb{j}", rank + 1, boundary,
                        deps=[prev], label="pipe-act",
                        payload="activations")

        # Pass 2: backwards flow back up, last micro-batch first (GPipe);
        # then each stage updates its own 1/S parameter shard.
        send_grad: dict = {}
        for rank in reversed(range(stages)):
            prev = fwd[rank, mb_total - 1]
            for j in reversed(range(mb_total)):
                deps = [prev]
                if rank < stages - 1:
                    deps.append(send_grad[rank + 1, j])
                prev = self._compute_op(b, rank, f"backward-mb{j}", costs,
                                        b_flops, b_hbm, deps=deps)
                if rank > 0:
                    send_grad[rank, j] = b.p2p(
                        rank, f"send-grad-mb{j}", rank - 1, boundary,
                        deps=[prev], label="pipe-grad",
                        payload="activations")
            opt = self._optimizer_op(b, rank, costs, deps=[prev],
                                     shard=1.0 / stages)
            flush = b.barrier(rank, "pipeline-flush", deps=[opt])
            self._overhead_op(b, rank, costs, deps=[flush])
        return b.build()


def _boundary_activation_bytes(costs: StepCosts, samples: float) -> float:
    """Activation bytes of one layer's output for ``samples`` samples —
    the tensor a TP all-gather assembles (and the input broadcast
    moves): per-sample activations spread over the model's depth."""
    model = costs.model
    per_layer = model.activation_bytes_per_sample(
        costs.policy.compute) / max(1, model.depth)
    return per_layer * samples


class TensorParallel(ParallelStrategy):
    """Megatron-style tensor parallelism as a pure plan compiler.

    Every rank holds ``1/N`` of each layer's parameters and runs the
    *full* batch through its shard.  The model's layers are grouped into
    ``layer_groups`` column/row-parallel blocks; after each block's
    forward the sharded outputs are assembled with an **all-gather**
    (column-parallel ``g`` operator), and each block's backward ends in
    an **all-reduce** of the input gradients (row-parallel ``f``
    operator) — the two conjugate collectives of Megatron-LM §3.  Rank 0
    ingests the batch and an in-plan broadcast fans the input out.

    Weight gradients are rank-local (each rank owns its shard outright),
    so TP moves *zero* gradient bytes — its communication bill is
    per-layer activation traffic, which scales with batch rather than
    parameter count.  Memory: weights/grads/optimizer state divide by
    the world size, while layer outputs stay replicated (only autograd's
    saved intermediates shard with the weights).
    """

    name = "tp"
    sharded = True

    def __init__(self, layer_groups: int = 4):
        if layer_groups < 1:
            raise ValueError("layer_groups must be >= 1")
        self.layer_groups = layer_groups

    # -- batch placement ---------------------------------------------------
    def rank_batch(self, global_batch: int, world_size: int) -> int:
        """Every rank sees the whole batch (the weights are what shard)."""
        return global_batch

    def input_ranks(self, world_size: int) -> tuple:
        """Rank 0 ingests; the in-plan broadcast distributes."""
        return (0,)

    # -- memory model ------------------------------------------------------
    def memory_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                       batch_per_gpu: int, world_size: int) -> float:
        weights = model.weight_bytes(policy.compute) / world_size
        grads = model.gradient_bytes(policy.compute) / world_size
        if policy.compute is Precision.FP16 and policy.master_weights:
            opt = model.params * 12.0 / world_size
        else:
            opt = model.params * 8.0 / world_size
        # Layer outputs are assembled on every rank (replicated); the
        # autograd extras beyond them shard with the weights.
        factor = 1.0 + (activation_factor(model) - 1.0) / world_size
        activations = (model.activation_bytes_per_sample(policy.compute)
                       * batch_per_gpu * factor)
        return (FRAMEWORK_OVERHEAD_BYTES + weights + grads + opt
                + activations)

    # -- step compiler -----------------------------------------------------
    def compile_step(self, ctx: CompileContext) -> StepPlan:
        costs = ctx.costs
        world = ctx.world_size
        groups = self.layer_groups
        boundary = _boundary_activation_bytes(costs, costs.batch_per_gpu)
        b = PlanBuilder(f"{self.name}-step", world,
                        meta={"strategy": self.name,
                              "layer_groups": groups})
        b.declare_conservation(
            "input", ctx.accumulation * world * boundary)
        b.declare_conservation(
            "activations",
            ctx.accumulation * world * groups * 2.0 * boundary)
        for rank in range(world):
            prev = None
            for _ in range(ctx.accumulation):
                # Rank 0 holds the micro-batch; everyone receives it.
                prev = b.collective(
                    rank, "input-bcast", "broadcast", boundary, root=0,
                    deps=[prev] if prev else (), payload="input")
                for g in range(groups):
                    fwd = self._compute_op(
                        b, rank, f"forward-g{g}", costs,
                        costs.forward_flops / (groups * world),
                        costs.forward_hbm_bytes / (groups * world),
                        deps=[prev])
                    # Column-parallel output assembly.
                    prev = b.collective(rank, "act-gather", "all_gather",
                                        boundary, deps=[fwd],
                                        payload="activations")
                for g in reversed(range(groups)):
                    bwd = self._compute_op(
                        b, rank, f"backward-g{g}", costs,
                        costs.backward_flops / (groups * world),
                        costs.backward_hbm_bytes / (groups * world),
                        deps=[prev])
                    # Row-parallel input-gradient reduction.
                    prev = b.collective(rank, "grad-input-reduce",
                                        "allreduce", boundary,
                                        deps=[bwd],
                                        payload="activations")
            # Weight gradients are shard-local: no gradient collective.
            opt = self._optimizer_op(b, rank, costs, deps=[prev],
                                     shard=1.0 / world)
            self._overhead_op(b, rank, costs, deps=[opt])
        return b.build()


class TwoDParallel(ParallelStrategy):
    """Tensor x data hybrid over a ``tp_degree x dp`` rank grid.

    World ranks map to a grid: rank ``r`` has tensor coordinate
    ``r % tp_degree`` and data coordinate ``r // tp_degree``.  TP groups
    are *contiguous* rank blocks — on the local chassis those are
    NVLink-adjacent GPUs, so the per-layer activation collectives stay
    on the fast mesh while the lower-volume cross-DP gradient
    all-reduce (1/tp of the gradients per rank) strides across the
    chassis/fleet fabric.  Both flavours are emitted as *grouped*
    plan-IR collectives, each rendezvousing on its own
    sub-communicator.
    """

    name = "2d"
    sharded = True

    def __init__(self, tp_degree: int = 2, layer_groups: int = 4):
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        if layer_groups < 1:
            raise ValueError("layer_groups must be >= 1")
        self.tp_degree = tp_degree
        self.layer_groups = layer_groups

    # -- the rank grid -----------------------------------------------------
    def _dp_degree(self, world_size: int) -> int:
        if world_size % self.tp_degree != 0:
            raise ValueError(
                f"world size {world_size} not divisible by tp_degree "
                f"{self.tp_degree}")
        return world_size // self.tp_degree

    def tp_group(self, rank: int, world_size: int) -> tuple:
        """The contiguous TP block this rank belongs to."""
        self._dp_degree(world_size)
        d = rank // self.tp_degree
        return tuple(range(d * self.tp_degree, (d + 1) * self.tp_degree))

    def dp_group(self, rank: int, world_size: int) -> tuple:
        """The strided cross-replica group this rank belongs to."""
        dp = self._dp_degree(world_size)
        t = rank % self.tp_degree
        return tuple(t + d * self.tp_degree for d in range(dp))

    # -- batch placement ---------------------------------------------------
    def rank_batch(self, global_batch: int, world_size: int) -> int:
        """Each DP replica (one TP group) takes its slice of the batch."""
        dp = self._dp_degree(world_size)
        if global_batch % dp != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by "
                f"dp degree {dp}")
        return global_batch // dp

    def input_ranks(self, world_size: int) -> tuple:
        """Each TP group's leader ingests its replica's batch slice."""
        dp = self._dp_degree(world_size)
        return tuple(d * self.tp_degree for d in range(dp))

    # -- memory model ------------------------------------------------------
    def memory_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                       batch_per_gpu: int, world_size: int) -> float:
        tp = self.tp_degree
        weights = model.weight_bytes(policy.compute) / tp
        grads = model.gradient_bytes(policy.compute) / tp
        if policy.compute is Precision.FP16 and policy.master_weights:
            opt = model.params * 12.0 / tp
        else:
            opt = model.params * 8.0 / tp
        factor = 1.0 + (activation_factor(model) - 1.0) / tp
        activations = (model.activation_bytes_per_sample(policy.compute)
                       * batch_per_gpu * factor)
        return (FRAMEWORK_OVERHEAD_BYTES + weights + grads + opt
                + activations)

    # -- step compiler -----------------------------------------------------
    def compile_step(self, ctx: CompileContext) -> StepPlan:
        costs = ctx.costs
        world = ctx.world_size
        tp = self.tp_degree
        dp = self._dp_degree(world)
        groups = self.layer_groups
        boundary = _boundary_activation_bytes(costs, costs.batch_per_gpu)
        grad_shard = costs.gradient_bytes / tp
        b = PlanBuilder(f"{self.name}-step", world,
                        meta={"strategy": self.name, "tp_degree": tp,
                              "dp_degree": dp, "layer_groups": groups})
        b.declare_conservation(
            "input", ctx.accumulation * world * boundary)
        b.declare_conservation(
            "activations",
            ctx.accumulation * world * groups * 2.0 * boundary)
        b.declare_conservation("gradients", world * grad_shard)
        for rank in range(world):
            tgroup = self.tp_group(rank, world)
            dgroup = self.dp_group(rank, world)
            leader = tgroup[0]
            prev = None
            for _ in range(ctx.accumulation):
                prev = b.collective(
                    rank, "input-bcast", "broadcast", boundary,
                    root=leader, group=tgroup,
                    deps=[prev] if prev else (), payload="input")
                for g in range(groups):
                    fwd = self._compute_op(
                        b, rank, f"forward-g{g}", costs,
                        costs.forward_flops / (groups * tp),
                        costs.forward_hbm_bytes / (groups * tp),
                        deps=[prev])
                    prev = b.collective(rank, "act-gather", "all_gather",
                                        boundary, group=tgroup,
                                        deps=[fwd],
                                        payload="activations")
                for g in reversed(range(groups)):
                    bwd = self._compute_op(
                        b, rank, f"backward-g{g}", costs,
                        costs.backward_flops / (groups * tp),
                        costs.backward_hbm_bytes / (groups * tp),
                        deps=[prev])
                    prev = b.collective(rank, "grad-input-reduce",
                                        "allreduce", boundary,
                                        group=tgroup, deps=[bwd],
                                        payload="activations")
            # Each rank owns 1/tp of the gradients; average that shard
            # across its DP group (chained after the last TP collective
            # so the comm stream order is deterministic).
            prev = b.collective(rank, "grad-allreduce", "allreduce",
                                grad_shard, group=dgroup, deps=[prev],
                                payload="gradients")
            opt = self._optimizer_op(b, rank, costs, deps=[prev],
                                     shard=1.0 / tp)
            self._overhead_op(b, rank, costs, deps=[opt])
        return b.build()


class FullyShardedDataParallel(ParallelStrategy):
    """ZeRO-3-style FSDP: parameters live sharded, gathered per unit.

    The model is split into ``layer_groups`` FSDP *units*.  Parameters,
    gradients, and optimizer state are all sharded ``1/N`` (ZeRO stage
    3); before a unit's forward — and again before its backward, since
    the gathered parameters are freed immediately after use — the full
    unit is re-materialized with an **all-gather**, and each unit's
    backward ends in a **reduce-scatter** that leaves every rank with
    its gradient shard.  The optimizer then updates only the local
    shard; next step's gathers pick up the new parameters, so no
    post-step broadcast is needed.

    Fig. 14-style memory math: per-rank state collapses to
    ``(weights + grads + optimizer) / N`` plus one transiently gathered
    unit (forward's current plus prefetched next), which is what lets
    FSDP run per-GPU batches DDP cannot fit.
    """

    name = "fsdp"
    sharded = True

    def __init__(self, layer_groups: int = 4):
        if layer_groups < 1:
            raise ValueError("layer_groups must be >= 1")
        self.layer_groups = layer_groups

    # -- memory model ------------------------------------------------------
    def memory_per_gpu(self, model: ModelGraph, policy: PrecisionPolicy,
                       batch_per_gpu: int, world_size: int) -> float:
        weights = model.weight_bytes(policy.compute) / world_size
        grads = model.gradient_bytes(policy.compute) / world_size
        if policy.compute is Precision.FP16 and policy.master_weights:
            opt = model.params * 12.0 / world_size
        else:
            opt = model.params * 8.0 / world_size
        # Two transiently gathered units: in-use + prefetch.
        transient = 2.0 * model.weight_bytes(policy.compute) \
            / max(1, self.layer_groups)
        activations = (model.activation_bytes_per_sample(policy.compute)
                       * batch_per_gpu * activation_factor(model))
        return (FRAMEWORK_OVERHEAD_BYTES + weights + grads + opt
                + transient + activations)

    # -- step compiler -----------------------------------------------------
    def compile_step(self, ctx: CompileContext) -> StepPlan:
        costs = ctx.costs
        world = ctx.world_size
        groups = self.layer_groups
        unit_weights = costs.weight_bytes / groups
        unit_grads = costs.gradient_bytes / groups
        b = PlanBuilder(f"{self.name}-step", world,
                        meta={"strategy": self.name,
                              "layer_groups": groups})
        # Forward + backward each re-gather every unit, every micro-step.
        b.declare_conservation(
            "weights",
            ctx.accumulation * world * 2.0 * costs.weight_bytes)
        b.declare_conservation(
            "gradients", world * costs.gradient_bytes)
        for rank in range(world):
            prev = None
            for micro in range(ctx.accumulation):
                last = micro == ctx.accumulation - 1
                for g in range(groups):
                    gather = b.collective(
                        rank, f"param-gather-g{g}", "all_gather",
                        unit_weights, deps=[prev] if prev else (),
                        payload="weights")
                    prev = self._compute_op(
                        b, rank, f"forward-g{g}", costs,
                        costs.forward_flops / groups,
                        costs.forward_hbm_bytes / groups, deps=[gather])
                for g in reversed(range(groups)):
                    # Gathered params were freed after forward (ZeRO-3):
                    # re-gather for the backward.
                    gather = b.collective(
                        rank, f"param-regather-g{g}", "all_gather",
                        unit_weights, deps=[prev], payload="weights")
                    prev = self._compute_op(
                        b, rank, f"backward-g{g}", costs,
                        costs.backward_flops / groups,
                        costs.backward_hbm_bytes / groups, deps=[gather])
                    if last:
                        # Sync micro-step: shard the unit's gradients.
                        prev = b.collective(
                            rank, f"grad-scatter-g{g}", "reduce_scatter",
                            unit_grads, deps=[prev], payload="gradients")
            opt = self._optimizer_op(b, rank, costs, deps=[prev],
                                     shard=1.0 / world)
            self._overhead_op(b, rank, costs, deps=[opt])
        return b.build()


#: CLI/harness strategy names -> strategy classes (the full zoo).
STRATEGY_REGISTRY = {
    "dp": DataParallel,
    "ddp": DistributedDataParallel,
    "sharded": ShardedDataParallel,
    "pipeline": PipelineParallel,
    "tp": TensorParallel,
    "2d": TwoDParallel,
    "fsdp": FullyShardedDataParallel,
}
