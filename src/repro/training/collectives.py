"""NCCL-style collective communication scheduled on the fabric.

A :class:`Communicator` groups a set of GPU ranks (topology node names)
and implements the collectives PyTorch DDP/DP rely on — ring allreduce,
broadcast, reduce, reduce-scatter, all-gather — as *actual transfer
schedules* on the modelled topology.  Every phase launches the real
point-to-point transfers, so link contention (e.g. eight Falcon GPUs
funnelling through host ports, or a hybrid ring crossing the CDFP cable)
emerges from the fluid-flow fabric rather than from a closed-form cost
formula.

Collectives are *synchronizing*: each rank calls the operation and the
returned event fires only when the whole collective completes, with the
op starting once the slowest rank arrives — exactly how NCCL kernels
block on stragglers.

The ring order is chosen from the rank list as given; for NVLink-meshed
local GPUs callers should pass the hybrid-cube-mesh Hamiltonian order
(:data:`repro.fabric.nvlink.RING_ORDER`) so every hop stays on NVLink.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from ..sim import Environment, Event
from ..fabric.link import Protocol
from ..fabric.topology import Route, Topology
from ..telemetry.trace import NULL_TRACER, Category, Tracer, Track

__all__ = ["Communicator", "CollectiveError", "CollectiveTimeout",
           "TRANSPORT_PENALTY", "REFERENCE_CHUNK_BYTES"]

#: NCCL transport efficiency, expressed as byte inflation per protocol.
#: NVLink rings run close to line rate; the PCIe transport stages chunks
#: through bounce buffers (and, across root ports, through host shared
#: memory), so sustained collective "bus bandwidth" on PCIe-attached V100s
#: is roughly half the p2p line rate — the well-known gap between
#: p2pBandwidthLatencyTest and nccl-tests busbw.  Calibrated so that
#: BERT-large fine-tuning on falcon-attached GPUs lands at ~2x the local
#: NVLink configuration (paper Fig. 11).
TRANSPORT_PENALTY: dict[Protocol, float] = {
    Protocol.NVLINK2: 1.05,
    Protocol.PCIE3: 2.2,
    Protocol.PCIE4: 2.2,
    Protocol.CDFP: 2.2,
}
_DEFAULT_TRANSPORT_PENALTY = 1.5

#: Staging chunk size the calibrated penalties correspond to.  Callers
#: may pass an explicit ``chunk_bytes`` (e.g. from the plan optimizer's
#: topology-aware chunk-sizing pass); larger chunks amortize per-chunk
#: staging overhead, scaling the *excess* penalty by
#: ``sqrt(reference / chunk)``, floored so even huge chunks keep 40% of
#: the excess (protocol overheads that never amortize).
REFERENCE_CHUNK_BYTES = 1e6
_CHUNK_AMORTIZATION_FLOOR = 0.4


class CollectiveError(Exception):
    """Mismatched or invalid collective usage."""


class CollectiveTimeout(Exception):
    """A collective exceeded the communicator's watchdog timeout.

    Mirrors NCCL's ``NCCL_TIMEOUT`` / PyTorch's ProcessGroup watchdog:
    when one rank stalls (dead link, dropped GPU), the surviving ranks
    must not hang forever inside the kernel — the watchdog aborts them
    so the training runtime can run recovery.
    """

    def __init__(self, kind: str, waited: float):
        super().__init__(
            f"collective {kind!r} timed out after {waited:.3f}s")
        self.kind = kind
        self.waited = waited


@dataclass(eq=False)  # identity semantics: ops are tracked in sets
class _PendingOp:
    """One in-flight collective: rank arrival times and the done event."""

    kind: str
    nbytes: float
    root: Optional[int]
    done: Event
    chunk_bytes: Optional[float] = None
    arrived: dict = field(default_factory=dict)  # rank -> arrival time


#: Collectives implemented as NCCL device kernels: a participating GPU
#: shows busy (nvidia-smi utilization) from the moment its rank launches
#: the kernel until the collective completes — including time spent
#: waiting for stragglers.  This is why the paper's Fig. 10 sees *higher*
#: GPU utilization on Falcon configurations (longer-running communication
#: kernels), while DP's memcpy-based broadcast/gather leaves GPUs idle.
_KERNEL_COLLECTIVES = frozenset({"allreduce", "reduce_scatter", "allgather"})


class Communicator:
    """A communicator over an ordered list of GPU node names."""

    def __init__(self, env: Environment, topology: Topology,
                 ranks: list[str], gpus: Optional[list] = None,
                 transport_penalty: Optional[dict] = None,
                 watchdog: Optional[float] = None,
                 tracer: Optional[Tracer] = None):
        if len(ranks) < 1:
            raise CollectiveError("communicator needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise CollectiveError("duplicate ranks in communicator")
        if gpus is not None and len(gpus) != len(ranks):
            raise CollectiveError("gpus must align with ranks")
        if watchdog is not None and watchdog <= 0:
            raise CollectiveError("watchdog timeout must be positive")
        self.env = env
        self.topology = topology
        self.ranks = list(ranks)
        #: Optional GPU devices per rank, for NCCL-kernel busy accounting.
        self.gpus = list(gpus) if gpus is not None else None
        #: Per-protocol byte inflation; override for sensitivity studies.
        self.transport_penalty = dict(TRANSPORT_PENALTY
                                      if transport_penalty is None
                                      else transport_penalty)
        #: Watchdog timeout, seconds of sim time a rank may wait inside a
        #: collective before :class:`CollectiveTimeout` is raised at it.
        self.watchdog = watchdog
        #: Span tracer; each executing collective borrows a "comm" lane.
        self.tracer = tracer or NULL_TRACER
        self._op_seq = [0] * len(ranks)
        self._pending: dict[int, _PendingOp] = {}
        self._executing: set[_PendingOp] = set()
        self._closed = False
        self._subgroups: dict[tuple, "Communicator"] = {}
        #: Completed collective count (introspection).
        self.completed_ops = 0

    @property
    def world_size(self) -> int:
        return len(self.ranks)

    def subgroup(self, ranks_idx) -> "Communicator":
        """A child communicator over a subset of this one's ranks.

        ``ranks_idx`` are *parent* rank indices (sorted, unique).  The
        child shares the environment, topology, transport penalties,
        watchdog, and tracer, keeps its own rendezvous sequence (like an
        NCCL sub-communicator from ``ncclCommSplit``), and is cached so
        every plan op targeting the same group rendezvouses on the same
        child.  Aborting the parent aborts all children.
        """
        key = tuple(ranks_idx)
        if list(key) != sorted(set(key)):
            raise CollectiveError(f"subgroup {key} must be sorted, unique")
        if any(not 0 <= i < self.world_size for i in key):
            raise CollectiveError(f"subgroup {key} has out-of-range ranks")
        child = self._subgroups.get(key)
        if child is None:
            child = Communicator(
                self.env, self.topology,
                [self.ranks[i] for i in key],
                gpus=([self.gpus[i] for i in key]
                      if self.gpus is not None else None),
                transport_penalty=self.transport_penalty,
                watchdog=self.watchdog, tracer=self.tracer)
            child._closed = self._closed
            self._subgroups[key] = child
        return child

    # -- public collectives ------------------------------------------------
    def allreduce(self, rank: int, nbytes: float, *,
                  chunk_bytes: Optional[float] = None) -> Event:
        """Ring allreduce of ``nbytes`` per rank.  Returns the done event."""
        return self._join(rank, "allreduce", nbytes, None, chunk_bytes)

    def reduce_scatter(self, rank: int, nbytes: float, *,
                       chunk_bytes: Optional[float] = None) -> Event:
        """Ring reduce-scatter: each rank ends with 1/N of the reduction."""
        return self._join(rank, "reduce_scatter", nbytes, None, chunk_bytes)

    def allgather(self, rank: int, nbytes: float, *,
                  chunk_bytes: Optional[float] = None) -> Event:
        """Ring all-gather of per-rank shards totalling ``nbytes``."""
        return self._join(rank, "allgather", nbytes, None, chunk_bytes)

    def broadcast(self, rank: int, nbytes: float, root: int = 0, *,
                  chunk_bytes: Optional[float] = None) -> Event:
        """Root sends ``nbytes`` to every other rank (DP-style fan-out)."""
        return self._join(rank, "broadcast", nbytes, root, chunk_bytes)

    def reduce(self, rank: int, nbytes: float, root: int = 0, *,
               chunk_bytes: Optional[float] = None) -> Event:
        """Every rank sends ``nbytes`` to the root (DP-style fan-in)."""
        return self._join(rank, "reduce", nbytes, root, chunk_bytes)

    def barrier(self, rank: int) -> Event:
        """Synchronize all ranks without moving data."""
        return self._join(rank, "barrier", 0.0, None, None)

    # -- rendezvous ---------------------------------------------------------
    def _join(self, rank: int, kind: str, nbytes: float,
              root: Optional[int],
              chunk_bytes: Optional[float] = None) -> Event:
        if not 0 <= rank < self.world_size:
            raise CollectiveError(f"rank {rank} out of range")
        if nbytes < 0:
            raise CollectiveError("nbytes must be >= 0")
        if root is not None and not 0 <= root < self.world_size:
            raise CollectiveError(f"root {root} out of range")
        if chunk_bytes is not None and chunk_bytes <= 0:
            raise CollectiveError("chunk_bytes must be positive")
        if self._closed:
            # Aborted communicator: resolve immediately so straggler ranks
            # unwind instead of waiting on a collective that will never run.
            done = self.env.event()
            done.succeed(None)
            return done
        opid = self._op_seq[rank]
        self._op_seq[rank] += 1
        op = self._pending.get(opid)
        if op is None:
            op = _PendingOp(kind, nbytes, root, self.env.event(),
                            chunk_bytes)
            self._pending[opid] = op
        else:
            if op.kind != kind or op.nbytes != nbytes or op.root != root \
                    or op.chunk_bytes != chunk_bytes:
                raise CollectiveError(
                    f"collective mismatch at op {opid}: rank {rank} called "
                    f"{kind}({nbytes}, root={root}, "
                    f"chunk={chunk_bytes}) but op is "
                    f"{op.kind}({op.nbytes}, root={op.root}, "
                    f"chunk={op.chunk_bytes})")
        if rank in op.arrived:
            raise CollectiveError(
                f"rank {rank} joined op {opid} twice")
        op.arrived[rank] = self.env.now
        if self.gpus is not None and kind in _KERNEL_COLLECTIVES:
            # Anchor: the NCCL kernel launches now on this rank's stream.
            self.gpus[rank].busy.add(self.env.now, 0.0)
        if len(op.arrived) == self.world_size:
            del self._pending[opid]
            self.env.process(self._execute(op))
        if self.watchdog is None:
            return op.done
        return self.env.process(self._guarded(op))

    def _guarded(self, op: _PendingOp):
        """Watchdog wrapper: wait on the op, bounded by the timeout.

        Mirrors the NCCL/ProcessGroup watchdog thread — a rank stuck
        inside a collective longer than the timeout gets a
        :class:`CollectiveTimeout` raised at its ``yield`` instead of
        hanging forever on a dead peer.
        """
        timeout = self.env.timeout(self.watchdog)
        try:
            yield self.env.any_of([op.done, timeout])
        except Exception:
            if self._closed:
                return None
            raise
        if self._closed:
            return None
        if op.done.triggered:
            return op.done.value
        raise CollectiveTimeout(op.kind, self.watchdog)

    def _execute(self, op: _PendingOp):
        self._executing.add(op)
        track = self.tracer.lane("comm")
        arrivals = op.arrived.values()
        span = self.tracer.span(
            op.kind, Category.COMM, track,
            bytes=op.nbytes, world=self.world_size,
            # Straggler skew: how long the first rank waited for the last.
            arrival_skew_s=(max(arrivals) - min(arrivals)) if arrivals
            else 0.0)
        try:
            if self.world_size == 1 or op.kind == "barrier" or op.nbytes == 0:
                yield self.env.timeout(0.0)
            elif op.kind == "allreduce":
                yield from self._ring_phases(op.nbytes,
                                             2 * (self.world_size - 1),
                                             track, op.chunk_bytes)
            elif op.kind == "reduce_scatter":
                yield from self._ring_phases(op.nbytes, self.world_size - 1,
                                             track, op.chunk_bytes)
            elif op.kind == "allgather":
                yield from self._ring_phases(op.nbytes, self.world_size - 1,
                                             track, op.chunk_bytes)
            elif op.kind == "broadcast":
                yield from self._star(op.root, op.nbytes, outbound=True,
                                      track=track,
                                      chunk_bytes=op.chunk_bytes)
            elif op.kind == "reduce":
                yield from self._star(op.root, op.nbytes, outbound=False,
                                      track=track,
                                      chunk_bytes=op.chunk_bytes)
            else:  # pragma: no cover - guarded by _join
                raise CollectiveError(f"unknown collective {op.kind!r}")
        except Exception as exc:
            span.close(failed=True)
            self.tracer.release_lane(track)
            # A transfer died under us (link pulled, GPU dropped).  Every
            # rank waits on the same done event, so failing it broadcasts
            # the fault to the whole communicator — like an NCCL kernel
            # erroring out on all ranks at once.  Pre-defuse: if every
            # rank was already torn down nobody retrieves the failure,
            # and an undefused failure would crash the simulation.
            self._executing.discard(op)
            if self._closed or op.done.triggered:
                return
            op.done.defused = True
            op.done.fail(exc)
            return
        span.close()
        self.tracer.release_lane(track)
        self._executing.discard(op)
        if op.done.triggered:  # abort() resolved it while we were running
            return
        if self.gpus is not None and op.kind in _KERNEL_COLLECTIVES:
            now = self.env.now
            for rank, arrival in op.arrived.items():
                self.gpus[rank].busy.add(now, now - arrival)
        self.completed_ops += 1
        op.done.succeed()

    def abort(self) -> None:
        """Tear the communicator down (``ncclCommAbort``).

        Resolves every pending and in-flight collective with ``None`` so
        no process is left waiting on an event that will never fire, and
        silences the watchdog.  Used by the training runtime before
        rebuilding collectives during fault recovery.
        """
        if self._closed:
            return
        self._closed = True
        for op in self._pending.values():
            if not op.done.triggered:
                op.done.succeed(None)
        self._pending.clear()
        for op in list(self._executing):
            if not op.done.triggered:
                op.done.succeed(None)
        for child in self._subgroups.values():
            child.abort()

    @property
    def closed(self) -> bool:
        """True once :meth:`abort` has been called."""
        return self._closed

    # -- schedules ------------------------------------------------------------
    def _transport_factor(self, route: Route,
                          chunk_bytes: Optional[float] = None) -> float:
        """Byte inflation for NCCL's transport over this route.

        With an explicit staging ``chunk_bytes``, the *excess* over line
        rate amortizes as ``sqrt(reference / chunk)`` (per-chunk setup
        spread over more payload), floored at 40% of the excess; chunks
        at or below the reference pay the full calibrated penalty.
        """
        factor = 1.0
        for seg in route.segments:
            penalty = self.transport_penalty.get(
                seg.link.spec.protocol, _DEFAULT_TRANSPORT_PENALTY)
            factor = max(factor, penalty)
        if chunk_bytes is not None and factor > 1.0 \
                and chunk_bytes > REFERENCE_CHUNK_BYTES:
            scale = max(math.sqrt(REFERENCE_CHUNK_BYTES / chunk_bytes),
                        _CHUNK_AMORTIZATION_FLOOR)
            factor = 1.0 + (factor - 1.0) * scale
        return factor

    def _send(self, src: str, dst: str, nbytes: float, label: str,
              chunk_bytes: Optional[float] = None):
        """One collective hop, inflated by the transport penalty."""
        factor = self._transport_factor(self.topology.route(src, dst),
                                        chunk_bytes)
        return self.topology.transfer(src, dst, nbytes * factor, label)

    def _ring_phases(self, nbytes: float, phases: int,
                     track: Track = None,
                     chunk_bytes: Optional[float] = None):
        """Ring schedule: ``phases`` rounds of chunk sends to the neighbour.

        Each round, every rank sends ``nbytes / world_size`` to its ring
        successor concurrently; the round completes when the slowest hop
        (the bottleneck link, possibly contended) finishes.
        """
        chunk = nbytes / self.world_size
        n = self.world_size
        for phase in range(phases):
            with self.tracer.span("round", Category.COMM, track,
                                  phase=phase, chunk_bytes=chunk):
                transfers = [
                    self._send(self.ranks[i], self.ranks[(i + 1) % n],
                               chunk, "ring", chunk_bytes)
                    for i in range(n)
                ]
                yield self.env.all_of(transfers)

    def _star(self, root: int, nbytes: float, outbound: bool,
              track: Track = None,
              chunk_bytes: Optional[float] = None):
        """Star schedule: root simultaneously sends to (or receives from)
        every other rank; the root's links are the natural bottleneck."""
        others = [i for i in range(self.world_size) if i != root]
        with self.tracer.span("fan-out" if outbound else "fan-in",
                              Category.COMM, track, bytes=nbytes):
            transfers = []
            for i in others:
                if outbound:
                    src, dst = self.ranks[root], self.ranks[i]
                else:
                    src, dst = self.ranks[i], self.ranks[root]
                transfers.append(
                    self._send(src, dst, nbytes, "star", chunk_bytes))
            yield self.env.all_of(transfers)

    # -- analytics ------------------------------------------------------------
    def allreduce_bytes_on_wire(self, nbytes: float) -> float:
        """Total bytes a ring allreduce moves per rank."""
        n = self.world_size
        return 2.0 * (n - 1) / n * nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Communicator world={self.world_size}>"
