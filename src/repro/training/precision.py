"""Precision policies (FP32 vs FP16 mixed precision).

Mixed-precision training (Micikevicius et al., 2018 — paper §V-C.4) keeps
FP32 master weights while computing and communicating in FP16: kernels run
on the tensor cores, activations/gradients halve, and gradient allreduce
volume halves — "less communication overhead for synchronizing the model
replicas among the GPUs" as the paper puts it.  A small per-step overhead
accounts for loss scaling and the FP16<->FP32 casts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.gpu import Precision
from ..workloads.layers import ModelGraph

__all__ = ["PrecisionPolicy", "FP32_POLICY", "AMP_POLICY"]


@dataclass(frozen=True)
class PrecisionPolicy:
    """How a training run uses numeric precision."""

    name: str
    compute: Precision
    #: Precision of gradients on the wire (allreduce volume).
    communication: Precision
    #: Whether FP32 master weights are kept alongside FP16 model weights.
    master_weights: bool
    #: Extra per-step time fraction for loss scaling / casts.
    step_overhead: float = 0.0

    def gradient_bytes(self, model: ModelGraph) -> float:
        return model.gradient_bytes(self.communication)

    def weight_bytes(self, model: ModelGraph) -> float:
        """Resident model weights (including the FP32 master copy)."""
        base = model.weight_bytes(self.compute)
        if self.master_weights and self.compute is Precision.FP16:
            base += model.weight_bytes(Precision.FP32)
        return base

    def activation_bytes(self, model: ModelGraph) -> float:
        return model.activation_bytes_per_sample(self.compute)


#: Plain FP32 training.
FP32_POLICY = PrecisionPolicy(
    name="fp32",
    compute=Precision.FP32,
    communication=Precision.FP32,
    master_weights=False,
)

#: NVIDIA-style automatic mixed precision (FP16 + FP32 master weights).
AMP_POLICY = PrecisionPolicy(
    name="amp-fp16",
    compute=Precision.FP16,
    communication=Precision.FP16,
    master_weights=True,
    step_overhead=0.03,
)
