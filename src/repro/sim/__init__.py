"""Discrete-event simulation kernel (SimPy-style, from scratch).

Public surface:

- :class:`Environment`, :class:`Event`, :class:`Process`, :class:`Timeout`
- Composition: :class:`AllOf`, :class:`AnyOf`
- Exceptions: :class:`Interrupt`, :class:`SimulationError`
- Resources: :class:`Resource`, :class:`PriorityResource`,
  :class:`Container`, :class:`Store`, :class:`FilterStore`
- Instrumentation: :class:`TimeSeries`, :class:`CounterMonitor`
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .monitor import CounterMonitor, SummaryStats, TimeSeries
from .resources import (
    Container,
    FilterStore,
    Preempted,
    PriorityResource,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
    "Resource",
    "PriorityResource",
    "Preempted",
    "Container",
    "Store",
    "FilterStore",
    "TimeSeries",
    "CounterMonitor",
    "SummaryStats",
]
