"""Shared-resource primitives for the simulation kernel.

Mirrors the SimPy resource family:

- :class:`Resource` — a pool of ``capacity`` identical slots with FIFO
  queuing (e.g. DMA engines, NVMe submission queues).
- :class:`PriorityResource` — slots handed out in priority order.
- :class:`Container` — a homogeneous quantity that can be ``put`` and
  ``get`` in fractional amounts (e.g. bytes of free GPU memory).
- :class:`Store` — a FIFO queue of discrete Python objects (e.g. batches
  moving through a data pipeline).

Requests are events; processes ``yield`` them and later ``release`` them
(or use the request as a context manager inside the generator).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Optional

from .core import Environment, Event, SimulationError

__all__ = [
    "Resource",
    "PriorityResource",
    "Preempted",
    "Container",
    "Store",
    "FilterStore",
]


class Request(Event):
    """A claim on one slot of a :class:`Resource`."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    # Allow `with resource.request() as req: yield req` style inside
    # generator processes.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        self.resource._cancel(self)


class PriorityRequest(Request):
    """A prioritized claim; lower ``priority`` values are served first."""

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        super().__init__(resource)


class Preempted:
    """Cause object delivered with a preemption interrupt."""

    def __init__(self, by: Any, usage_since: Optional[float]):
        self.by = by
        self.usage_since = usage_since


class Resource:
    """``capacity`` identical slots with FIFO queuing."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot; grants the next queued request, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError(f"{request!r} does not hold this resource")
        self._trigger_waiters()

    # -- internals ------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            raise SimulationError(f"{request!r} is not queued here")

    def _trigger_waiters(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            self._grant(self.queue.popleft())


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: list = []
        self._counter = itertools.count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            prio = getattr(request, "priority", 0)
            heapq.heappush(self._heap, (prio, next(self._counter), request))

    def _cancel(self, request: Request) -> None:
        for i, (_, _, queued) in enumerate(self._heap):
            if queued is request:
                self._heap.pop(i)
                heapq.heapify(self._heap)
                return
        raise SimulationError(f"{request!r} is not queued here")

    def _trigger_waiters(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _, _, request = heapq.heappop(self._heap)
            self._grant(request)

    @property
    def queue_length(self) -> int:
        return len(self._heap)


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        container._put_queue.append(self)
        container._update()

    def cancel(self) -> None:
        """Withdraw an un-granted put (e.g. the requester was interrupted).

        A queued put left behind by a dead process would otherwise fire
        whenever capacity frees up, silently leaking level.  No-op if the
        put was already granted.
        """
        if not self.triggered:
            try:
                self.container._put_queue.remove(self)
            except ValueError:  # pragma: no cover - already granted/removed
                pass


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        container._get_queue.append(self)
        container._update()

    def cancel(self) -> None:
        """Withdraw an un-granted get.  No-op if already granted."""
        if not self.triggered:
            try:
                self.container._get_queue.remove(self)
            except ValueError:  # pragma: no cover - already granted/removed
                pass


class Container:
    """A homogeneous, divisible quantity with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_queue: deque[ContainerPut] = deque()
        self._get_queue: deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _update(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self.capacity:
                    self._put_queue.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.popleft()
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True


class StorePut(Event):
    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._update()


class StoreGet(Event):
    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._update()


class FilterStoreGet(StoreGet):
    def __init__(self, store: "FilterStore",
                 predicate: Callable[[Any], bool]):
        self.predicate = predicate
        super().__init__(store)


class Store:
    """A FIFO queue of discrete items with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _update(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            while self._get_queue and self.items:
                if not self._serve_one_get():
                    break
                progressed = True

    def _serve_one_get(self) -> bool:
        get = self._get_queue.popleft()
        get.succeed(self.items.popleft())
        return True


class FilterStore(Store):
    """A store whose gets can select items by predicate."""

    def get(self, predicate: Callable[[Any], bool] = lambda item: True
            ) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, predicate)

    def _update(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                progressed = True
                put.succeed()
            # Serve any get whose predicate matches an available item.
            for get in list(self._get_queue):
                matched = None
                for item in self.items:
                    if get.predicate(item):  # type: ignore[attr-defined]
                        matched = item
                        break
                if matched is not None:
                    self.items.remove(matched)
                    self._get_queue.remove(get)
                    get.succeed(matched)
                    progressed = True
