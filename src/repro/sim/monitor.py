"""Time-series instrumentation for simulation models.

Two collector styles are provided:

- :class:`TimeSeries` — explicit ``record(t, value)`` samples, with
  time-weighted and plain statistics, resampling onto a regular grid,
  and windowed aggregation.  Used for utilization traces (Figs 9/10/13/14).
- :class:`CounterMonitor` — monotonically increasing counters (bytes on a
  port), from which rates over arbitrary windows can be derived
  (Fig 12's ingress/egress GB/s).

Both are plain-Python with NumPy-backed summarization so that recording
during a simulation stays cheap (append to a list) and analysis is
vectorized afterwards — per the hpc-parallel guidance, we avoid per-sample
NumPy work in the hot path and batch it at summary time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["TimeSeries", "CounterMonitor", "SummaryStats"]


@dataclass(frozen=True)
class SummaryStats:
    """Summary statistics of a time series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    time_weighted_mean: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "time_weighted_mean": self.time_weighted_mean,
        }


_EMPTY = SummaryStats(0, float("nan"), float("nan"), float("nan"),
                      float("nan"), float("nan"), float("nan"), float("nan"))


class TimeSeries:
    """Append-only (time, value) samples with vectorized analysis.

    Values are assumed piecewise-constant between samples (sample-and-hold),
    which matches how utilization gauges behave.
    """

    def __init__(self, name: str = "", unit: str = ""):
        self.name = name
        self.unit = unit
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: float, value: float) -> None:
        """Append one sample.  Times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"non-monotonic sample time {time} < {self._times[-1]}")
        self._times.append(time)
        self._values.append(value)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def last(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    def summary(self, t_start: Optional[float] = None,
                t_end: Optional[float] = None) -> SummaryStats:
        """Statistics over ``[t_start, t_end]`` (defaults: whole series)."""
        if not self._times:
            return _EMPTY
        t = self.times
        v = self.values
        if t_start is not None or t_end is not None:
            lo = t_start if t_start is not None else t[0]
            hi = t_end if t_end is not None else t[-1]
            mask = (t >= lo) & (t <= hi)
            t, v = t[mask], v[mask]
            if t.size == 0:
                return _EMPTY
        tw = self._time_weighted_mean(t, v)
        return SummaryStats(
            count=int(v.size),
            mean=float(v.mean()),
            std=float(v.std()),
            minimum=float(v.min()),
            maximum=float(v.max()),
            p50=float(np.percentile(v, 50)),
            p95=float(np.percentile(v, 95)),
            time_weighted_mean=tw,
        )

    @staticmethod
    def _time_weighted_mean(t: np.ndarray, v: np.ndarray) -> float:
        if t.size < 2:
            return float(v[-1]) if v.size else float("nan")
        dt = np.diff(t)
        total = dt.sum()
        if total <= 0:
            return float(v.mean())
        # sample-and-hold: value v[i] applies over [t[i], t[i+1])
        return float(np.dot(v[:-1], dt) / total)

    def resample(self, t_grid: Sequence[float]) -> np.ndarray:
        """Sample-and-hold values on an arbitrary time grid."""
        grid = np.asarray(t_grid, dtype=float)
        if not self._times:
            return np.full(grid.shape, np.nan)
        t = self.times
        v = self.values
        idx = np.searchsorted(t, grid, side="right") - 1
        out = np.where(idx >= 0, v[np.clip(idx, 0, v.size - 1)], np.nan)
        return out

    def windows(self, width: float) -> tuple[np.ndarray, np.ndarray]:
        """Mean value per fixed-width window; returns (window_starts, means)."""
        if width <= 0:
            raise ValueError("window width must be positive")
        if not self._times:
            return np.array([]), np.array([])
        t = self.times
        v = self.values
        start = t[0]
        bins = np.floor((t - start) / width).astype(int)
        n = bins[-1] + 1
        sums = np.zeros(n)
        counts = np.zeros(n)
        np.add.at(sums, bins, v)
        np.add.at(counts, bins, 1)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts
        return start + width * np.arange(n), means


class CounterMonitor:
    """A monotonically increasing counter (e.g. bytes through a port)."""

    def __init__(self, name: str = "", unit: str = "bytes"):
        self.name = name
        self.unit = unit
        self._times: list[float] = [0.0]
        self._totals: list[float] = [0.0]

    @property
    def total(self) -> float:
        return self._totals[-1]

    def add(self, time: float, amount: float) -> None:
        """Add ``amount`` at ``time``.  Amounts must be non-negative."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        if time < self._times[-1]:
            raise ValueError(
                f"non-monotonic counter time {time} < {self._times[-1]}")
        if time == self._times[-1]:
            self._totals[-1] += amount
        else:
            self._times.append(time)
            self._totals.append(self._totals[-1] + amount)

    def total_between(self, t0: float, t1: float) -> float:
        """Counter growth over [t0, t1], linearly interpolated."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        t = np.asarray(self._times)
        c = np.asarray(self._totals)
        v0, v1 = np.interp([t0, t1], t, c)
        return float(v1 - v0)

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average rate (unit/second) over [t0, t1].

        A zero-length window has no defined rate — NaN, not 0.0 (which
        would silently drag down averages) and not ZeroDivisionError.
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return float("nan")
        return self.total_between(t0, t1) / (t1 - t0)

    def rate_series(self, width: float,
                    t_end: Optional[float] = None
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-window average rates; returns (window_starts, rates)."""
        if width <= 0:
            raise ValueError("window width must be positive")
        hi = t_end if t_end is not None else self._times[-1]
        if hi <= 0:
            return np.array([]), np.array([])
        edges = np.arange(0.0, hi + width, width)
        t = np.asarray(self._times)
        c = np.asarray(self._totals)
        at_edges = np.interp(edges, t, c)
        rates = np.diff(at_edges) / width
        return edges[:-1], rates
