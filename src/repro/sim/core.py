"""Discrete-event simulation kernel.

A from-scratch, generator-based discrete-event simulator in the style of
SimPy (which is not available in this offline environment).  Processes are
Python generators that ``yield`` events; the :class:`Environment` owns a
priority queue of scheduled events and advances simulated time from event
to event.

Only the features required by the composable-system models are
implemented, but they are implemented fully: timeouts, process joining,
event composition (:class:`AllOf` / :class:`AnyOf`), interrupts, and
failure propagation.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]


class SimulationError(Exception):
    """Raised for structural errors in the simulation (not model failures)."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  Available
        as :attr:`cause` on the caught exception.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class StopProcess(Exception):
    """Raised by :meth:`Environment.exit` to return a value from a process.

    Plain ``return value`` inside a generator works too (and is the
    preferred spelling); this exists for parity with older SimPy code.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


# Event lifecycle sentinels.
_PENDING = object()


class Event:
    """A condition that may happen at some point in simulated time.

    Events start *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, which schedules their callbacks to run at the current
    simulation time.  An event's :attr:`value` is available once it has
    been processed.
    """

    # Events dominate the simulator's allocation profile; __slots__ cuts
    # per-instance memory and speeds attribute access on the hot path.
    # Subclasses that add ad-hoc attributes (resources, conditions)
    # simply omit __slots__ and regain a __dict__.
    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: True once a failure value has been retrieved or handled.
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True if the event has been scheduled (succeed/fail called)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid after triggering."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Immediate event used to start a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=Environment.URGENT)


class Process(Event):
    """A running process.  Also an event that fires when the process ends.

    The process's generator is resumed each time the event it yielded is
    processed.  Yielding a failed event re-raises the failure inside the
    generator, allowing ``try/except`` around ``yield``.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self!r} is not waiting; cannot interrupt")
        # Deliver via a high-priority event so interrupts beat same-time
        # regular events.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        # Detach from the event we were waiting on: we will be resumed by
        # the interrupt instead.  The original event may still fire later;
        # the process can re-wait on it.  Defuse it too — if it instead
        # *fails* later (a teardown racing an in-flight fault cascade) and
        # every waiter was interrupted away, the orphaned failure must not
        # crash the simulation.  Defusing never hides the failure from
        # surviving waiters: delivery marks the event defused anyway.
        self._target.defused = True
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=Environment.URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or failure) of ``event``."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as exc:
                self._target = None
                self.env._active_process = None
                self.succeed(exc.value)
                return
            except StopProcess as exc:
                self._target = None
                self.env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self._generator.throw(
                    SimulationError(
                        f"process yielded a non-event: {next_event!r}"))
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                self.env._active_process = None
                return
            # Event already processed: feed its value straight back in.
            event = next_event

    def __repr__(self) -> str:  # pragma: no cover
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        # Immediately evaluate already-processed events, register on others.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(ConditionValue({}))

    def _evaluate(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            # A sibling already decided this condition.  Late failures must
            # still be defused, or the unhandled-failure check in
            # Environment.step would crash the simulation — e.g. a link
            # failure killing several in-flight transfers fails every
            # transfer process feeding one AllOf at the same instant.
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate():
            self.succeed(ConditionValue(
                {e: e._value for e in self._events if e.triggered and e._ok}))


class ConditionValue(dict):
    """Mapping of event -> value for composite events.

    Iterating yields values in the order the events were supplied, which
    makes ``a, b = yield env.all_of([ea, eb])`` unpacking natural.
    """

    def __init__(self, mapping: dict):
        super().__init__(mapping)

    def values_list(self) -> list:
        return list(self.values())


class AllOf(_Condition):
    """Fires once all component events have fired."""

    def _evaluate(self) -> bool:
        return self._count >= len(self._events)


class AnyOf(_Condition):
    """Fires once any component event has fired."""

    def _evaluate(self) -> bool:
        return self._count >= 1 or not self._events


class Environment:
    """Execution environment: event queue and simulated clock."""

    #: Priority for events that must run before normal events at a time.
    URGENT = 0
    #: Default priority.
    NORMAL = 1

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        # Monotonic event id: FIFO tie-break for same-(time, priority)
        # entries.  A plain int beats itertools.count() here — no
        # iterator-protocol dispatch on the hottest call in the kernel.
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def exit(self, value: Any = None) -> None:
        """Return ``value`` from the active process (legacy spelling)."""
        raise StopProcess(value)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL,
                  delay: float = 0.0) -> None:
        self._eid = eid = self._eid + 1
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _eid, event = heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # An unhandled failure: propagate out of the simulation loop.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event queue is empty.
            a number — run until simulated time reaches it.
            an :class:`Event` — run until the event is processed and
            return its value (raising if it failed).
        """
        # Bind the queue and step to locals: the run loop is the hottest
        # code in the simulator and repeated self-attribute loads add up.
        queue = self._queue
        step = self.step

        if until is None:
            while queue:
                step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not queue:
                    raise SimulationError(
                        "simulation ended before the awaited event fired")
                step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"until={horizon} is in the past (now={self._now})")
        while queue and queue[0][0] <= horizon:
            step()
        self._now = horizon
        return None
