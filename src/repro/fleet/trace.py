"""Synthetic job traces for the fleet scheduler.

Arrivals are Poisson (exponential inter-arrival times) and the job-size
mix is skewed small, following the shape production ML-cluster traces
report (the Alibaba PAI and Microsoft Philly analyses both find that
single- and few-GPU jobs dominate by count while a thin tail of 8-GPU
jobs dominates by GPU demand).  Everything is driven by one seeded
``random.Random``, so a trace is a pure function of its config — the
fleet experiments and tests rely on that determinism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..workloads import get_benchmark

__all__ = ["JobRequest", "TraceConfig", "generate_trace"]


@dataclass(frozen=True)
class JobRequest:
    """One job submission: when it arrives and what it wants."""

    job_id: int
    #: Submission time, simulated seconds.
    arrival: float
    #: GPUs requested (the scheduler composes them from any chassis).
    gpus: int
    benchmark: str
    #: Parallel strategy key ("ddp" or "dp").
    strategy: str
    #: Optimizer steps actually simulated.
    sim_steps: int
    #: Global batch, pre-scaled to the requested world size.
    global_batch: int


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace (all defaults CI-sized)."""

    jobs: int = 24
    #: Mean inter-arrival time, seconds (Poisson process).
    mean_interarrival: float = 40.0
    seed: int = 0
    #: (world size, probability) — small jobs dominate by count.
    gpu_mix: tuple = ((1, 0.40), (2, 0.30), (4, 0.22), (8, 0.08))
    #: (strategy key, probability).
    strategy_mix: tuple = (("ddp", 0.85), ("dp", 0.15))
    benchmarks: tuple = ("mobilenetv2", "resnet50", "bert-base")
    #: Inclusive range of simulated optimizer steps per job.
    sim_steps: tuple = (2, 5)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("a trace needs at least one job")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        for mix, label in ((self.gpu_mix, "gpu_mix"),
                           (self.strategy_mix, "strategy_mix")):
            total = sum(w for _, w in mix)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"{label} probabilities sum to {total}, "
                                 "expected 1.0")


def _weighted(rng: random.Random, mix) -> object:
    """Deterministic weighted draw (cumulative scan, one uniform)."""
    u = rng.random()
    acc = 0.0
    for value, weight in mix:
        acc += weight
        if u < acc:
            return value
    return mix[-1][0]


def _scaled_batch(benchmark_key: str, gpus: int) -> int:
    """Global batch for a ``gpus``-wide world at the paper's per-GPU
    batch (the benchmark's ``global_batch`` field is the 8-GPU value)."""
    per_gpu = max(1, get_benchmark(benchmark_key).global_batch // 8)
    return per_gpu * gpus


def generate_trace(config: Optional[TraceConfig] = None,
                   **overrides) -> tuple:
    """Generate a seeded job trace; returns a tuple of JobRequests.

    Keyword overrides are applied on top of ``config`` (or the default
    :class:`TraceConfig`), e.g. ``generate_trace(jobs=6, seed=3)``.
    """
    if config is None:
        config = TraceConfig(**overrides)
    elif overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    rng = random.Random(config.seed)
    requests = []
    t = 0.0
    lo, hi = config.sim_steps
    for job_id in range(config.jobs):
        t += rng.expovariate(1.0 / config.mean_interarrival)
        gpus = _weighted(rng, config.gpu_mix)
        strategy = _weighted(rng, config.strategy_mix)
        benchmark = config.benchmarks[
            rng.randrange(len(config.benchmarks))]
        requests.append(JobRequest(
            job_id=job_id,
            arrival=t,
            gpus=gpus,
            benchmark=benchmark,
            strategy=strategy,
            sim_steps=rng.randint(lo, hi),
            global_batch=_scaled_batch(benchmark, gpus),
        ))
    return tuple(requests)
