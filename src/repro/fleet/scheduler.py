"""FIFO cluster scheduler over composable fleet inventory.

The scheduler is the consumer of everything the fleet layer provides:
jobs arrive from a trace, wait in a FIFO queue, and are placed onto
chassis GPUs through the management plane (:class:`~repro.management.
Inventory` attach/detach — the same hot-plug path single-system
experiments use).  Placement policy, in order:

1. pick the least-loaded host (fewest running jobs, ties by index);
2. prefer a **single chassis** with enough free GPUs, the host's home
   chassis first — packing keeps collective rings off the spine;
3. otherwise **spread** across chassis, composing a cross-chassis ring
   whose allreduce traffic transits the spine (measurably slower — the
   contention signal the fleet study reports);
4. admission is port-bounded: visiting a chassis consumes one of its
   four host ports (refcounted, returned when the last job using it
   completes).  If no port is free the candidate is skipped, and a job
   that fits nowhere waits at the head of the queue (plain FIFO —
   no backfilling, so head-of-line blocking is visible in the delays).

Each placement pays the hot-plug latency (device re-enumeration) before
training starts, then runs a real :class:`~repro.training.TrainingJob`
on the shared :class:`~repro.sim.Environment` — concurrent jobs contend
for spine uplinks, drawer trunks, and host memory exactly as the fluid
flow model resolves them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.cluster import HOTPLUG_SECONDS
from ..core.fleet import ComposableFleet, FleetError
from ..management import InventoryError
from ..training import (
    DataParallel,
    DistributedDataParallel,
    TrainingConfig,
    TrainingJob,
)
from ..workloads import get_benchmark
from .trace import JobRequest

__all__ = ["ClusterScheduler", "FleetRunResult", "JobRecord"]

#: Strategy keys a trace may request.
STRATEGIES = {
    "ddp": DistributedDataParallel,
    "dp": DataParallel,
}


@dataclass
class JobRecord:
    """Lifecycle of one scheduled job."""

    job_id: int
    benchmark: str
    strategy: str
    gpus: int
    gpu_names: tuple
    host: str
    #: Chassis indexes the job's GPUs came from.
    chassis: tuple
    arrival: float
    #: When the scheduler granted the GPUs.
    placed: float
    #: When training began (placement + hot-plug enumeration).
    started: float
    finished: float
    #: Steady-state seconds per optimizer step.
    step_time: float
    throughput_samples_s: float

    @property
    def queue_delay(self) -> float:
        return self.placed - self.arrival

    @property
    def run_seconds(self) -> float:
        return self.finished - self.placed

    @property
    def cross_chassis(self) -> bool:
        return len(self.chassis) > 1

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "benchmark": self.benchmark,
            "strategy": self.strategy,
            "gpus": self.gpus,
            "host": self.host,
            "chassis": list(self.chassis),
            "cross_chassis": self.cross_chassis,
            "arrival_s": self.arrival,
            "queue_delay_s": self.queue_delay,
            "run_s": self.run_seconds,
            "step_time_s": self.step_time,
            "throughput_samples_s": self.throughput_samples_s,
        }


@dataclass
class FleetRunResult:
    """Everything a fleet run produced, plus the aggregate views."""

    fleet: ComposableFleet = field(repr=False)
    records: list = field(default_factory=list)
    makespan: float = 0.0

    @property
    def total_gpus(self) -> int:
        return self.fleet.spec.total_gpus

    @property
    def mean_queue_delay(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.queue_delay for r in self.records) / len(self.records)

    @property
    def max_queue_delay(self) -> float:
        return max((r.queue_delay for r in self.records), default=0.0)

    @property
    def gpu_utilization(self) -> float:
        """Busy GPU-seconds over total GPU-seconds of the makespan."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(r.gpus * r.run_seconds for r in self.records)
        return busy / (self.total_gpus * self.makespan)

    @property
    def cross_chassis_jobs(self) -> int:
        return sum(1 for r in self.records if r.cross_chassis)

    def spine_traffic(self) -> dict:
        """Per-spine-link mean rates over the whole run (GB/s)."""
        return self.fleet.spine_traffic(0.0, max(self.makespan, 1e-9))

    def as_dict(self) -> dict:
        return {
            "spec": self.fleet.spec.name,
            "chassis": self.fleet.spec.chassis,
            "hosts": self.fleet.spec.hosts,
            "oversubscription": self.fleet.spec.oversubscription,
            "total_gpus": self.total_gpus,
            "jobs": len(self.records),
            "makespan_s": self.makespan,
            "gpu_utilization": self.gpu_utilization,
            "mean_queue_delay_s": self.mean_queue_delay,
            "max_queue_delay_s": self.max_queue_delay,
            "cross_chassis_jobs": self.cross_chassis_jobs,
            "spine_traffic_gbs": self.spine_traffic(),
            "records": [r.as_dict() for r in self.records],
        }


class ClusterScheduler:
    """FIFO scheduler placing trace jobs onto a composable fleet."""

    def __init__(self, fleet: ComposableFleet,
                 hotplug_seconds: float = HOTPLUG_SECONDS):
        self.fleet = fleet
        self.hotplug_seconds = hotplug_seconds
        self._queue: deque = deque()
        self._records: list[JobRecord] = []
        #: host name -> running job count (load-balancing signal).
        self._load = {host.name: 0 for host in fleet.hosts}
        self._expected = 0
        self._done_evt = None

    # -- entry point -------------------------------------------------------
    def run(self, requests: Sequence[JobRequest]) -> FleetRunResult:
        """Run the whole trace to completion; returns the result."""
        cap = self.fleet.spec.total_gpus
        for req in requests:
            if req.gpus > cap:
                raise ValueError(
                    f"job {req.job_id} wants {req.gpus} GPUs but the "
                    f"fleet has {cap}")
            if req.strategy not in STRATEGIES:
                raise ValueError(
                    f"job {req.job_id}: unknown strategy "
                    f"{req.strategy!r} (have {sorted(STRATEGIES)})")
        env = self.fleet.env
        self._expected = len(requests)
        self._done_evt = env.event()
        if not requests:
            return FleetRunResult(fleet=self.fleet)
        env.process(self._arrivals(sorted(requests,
                                          key=lambda r: r.arrival)))
        env.run(until=self._done_evt)
        records = sorted(self._records, key=lambda r: r.job_id)
        makespan = max(r.finished for r in records)
        return FleetRunResult(fleet=self.fleet, records=records,
                              makespan=makespan)

    # -- processes ---------------------------------------------------------
    def _arrivals(self, requests):
        for req in requests:
            delay = req.arrival - self.fleet.env.now
            if delay > 0:
                yield self.fleet.env.timeout(delay)
            self._queue.append(req)
            self._dispatch()

    def _dispatch(self) -> None:
        """Place queued jobs in FIFO order; stop at the first that does
        not fit (no backfilling)."""
        while self._queue:
            placement = self._try_place(self._queue[0])
            if placement is None:
                return
            req = self._queue.popleft()
            host, gpu_names, admissions = placement
            self._load[host.name] += 1
            self.fleet.env.process(
                self._run_job(req, host, gpu_names, admissions))

    def _run_job(self, req, host, gpu_names, admissions):
        placed = self.fleet.env.now
        # Hot-plug enumeration of the composed devices.
        yield self.fleet.env.timeout(self.hotplug_seconds)
        started = self.fleet.env.now
        config = TrainingConfig(
            benchmark=get_benchmark(req.benchmark),
            strategy=STRATEGIES[req.strategy](),
            global_batch=req.global_batch,
            sim_steps=req.sim_steps,
        )
        gpus = [self.fleet.gpu(name) for name in gpu_names]
        job = TrainingJob(self.fleet.env, self.fleet.topology, host,
                          gpus, host.scratch, config)
        yield job.start()
        result = job.collect()
        finished = self.fleet.env.now
        self._teardown(host, gpu_names, admissions)
        self._load[host.name] -= 1
        self._records.append(JobRecord(
            job_id=req.job_id,
            benchmark=req.benchmark,
            strategy=req.strategy,
            gpus=req.gpus,
            gpu_names=tuple(gpu_names),
            host=host.name,
            chassis=tuple(sorted({self.fleet.chassis_of[n]
                                  for n in gpu_names})),
            arrival=req.arrival,
            placed=placed,
            started=started,
            finished=finished,
            step_time=result.step_time,
            throughput_samples_s=(result.global_batch / result.step_time
                                  if result.step_time else 0.0),
        ))
        if len(self._records) == self._expected:
            self._done_evt.succeed(len(self._records))
        else:
            self._dispatch()

    # -- placement ---------------------------------------------------------
    def _host_order(self) -> list:
        return sorted(self.fleet.hosts,
                      key=lambda h: (self._load[h.name], h.name))

    def _chassis_order(self, host) -> list[int]:
        """Home chassis of the host first, then the rest by index."""
        index = self.fleet.hosts.index(host)
        n_hosts = len(self.fleet.hosts)
        return sorted(range(self.fleet.spec.chassis),
                      key=lambda c: (0 if c % n_hosts == index else 1, c))

    def _drawer_of(self, chassis: int, gpu_name: str) -> int:
        for drawer in self.fleet.falcons[chassis].drawers:
            if drawer.slot_of(gpu_name) is not None:
                return drawer.index
        raise KeyError(f"{gpu_name!r} not installed in chassis {chassis}")

    def _try_place(self, req) -> Optional[tuple]:
        """(host, gpu names, admissions held) or None if nothing fits."""
        for host in self._host_order():
            order = self._chassis_order(host)
            # Pass 1: pack into a single chassis.
            for chassis in order:
                free = self.fleet.free_gpus(chassis)
                if len(free) >= req.gpus:
                    placement = self._claim(host, free[:req.gpus])
                    if placement is not None:
                        return placement
            # Pass 2: spread across chassis in preference order.
            pool: list[str] = []
            for chassis in order:
                pool.extend(self.fleet.free_gpus(chassis))
            if len(pool) >= req.gpus:
                placement = self._claim(host, pool[:req.gpus])
                if placement is not None:
                    return placement
        return None

    def _claim(self, host, gpu_names) -> Optional[tuple]:
        """Admit + attach; unwinds and returns None on port exhaustion."""
        needed = sorted({(self.fleet.chassis_of[n],
                          self._drawer_of(self.fleet.chassis_of[n], n))
                         for n in gpu_names})
        admitted: list[tuple] = []
        attached: list[str] = []
        try:
            for chassis, drawer in needed:
                self.fleet.admit(host.name, chassis, drawer)
                admitted.append((chassis, drawer))
            for name in gpu_names:
                self.fleet.inventory_of(name).attach(name, host.name)
                attached.append(name)
        except (FleetError, InventoryError):
            for name in attached:
                self.fleet.inventory_of(name).detach(name)
            for chassis, drawer in admitted:
                self.fleet.release(host.name, chassis, drawer)
            return None
        return host, list(gpu_names), admitted

    def _teardown(self, host, gpu_names, admissions) -> None:
        for name in gpu_names:
            self.fleet.inventory_of(name).detach(name)
        for chassis, drawer in admissions:
            self.fleet.release(host.name, chassis, drawer)
