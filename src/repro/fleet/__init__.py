"""Fleet-scale scheduling: job traces and a cluster scheduler.

This package turns the multi-chassis :class:`~repro.core.ComposableFleet`
into a shared cluster: :mod:`~repro.fleet.trace` synthesizes seeded
Poisson job traces with a production-skewed job-size mix, and
:mod:`~repro.fleet.scheduler` places those jobs onto composable GPU
inventory through the management plane's attach/detach API, measuring
queueing delay, GPU utilization, and cross-job fabric contention on the
shared spine uplinks.
"""

from .scheduler import ClusterScheduler, FleetRunResult, JobRecord
from .trace import JobRequest, TraceConfig, generate_trace

__all__ = [
    "ClusterScheduler",
    "FleetRunResult",
    "JobRecord",
    "JobRequest",
    "TraceConfig",
    "generate_trace",
]
