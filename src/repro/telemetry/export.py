"""Trace exporters and span-based attribution.

Three export formats for :class:`~repro.telemetry.trace.Tracer` data:

- **Chrome/Perfetto** ``trace_event`` JSON (:func:`to_chrome_trace`):
  one pid per track process (host, ``comm``, ``fabric``, ``storage``,
  ``events``), one tid per track thread (GPU, collective lane, transfer
  lane).  Spans become ``"X"`` complete events, instants become ``"i"``,
  and ``"M"`` metadata events carry the human-readable names — the file
  opens directly in https://ui.perfetto.dev or ``chrome://tracing``.
- **flat JSONL** (:func:`to_jsonl`): one span/instant per line for ad-hoc
  ``jq``/pandas analysis.
- **text flame summary** (:func:`render_flame_summary`): aggregate time
  per (category, name), the "where did the step go" view.

:func:`step_attribution` decomposes each training step's wall time into
compute / comm / stall / checkpoint / data from the rank-0 track's spans
alone — the span-level reproduction of the paper's Fig. 11 overhead
split (aggregate-subtraction replaced by direct measurement).

:func:`validate_chrome_trace` is the schema check used by the CI smoke
job and the tracer property test: structural validity plus the per-tid
non-overlap invariant Perfetto's rendering relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .trace import Category, Span, Tracer, Track

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "StepAttribution",
    "step_attribution",
    "flame_rows",
    "render_flame_summary",
    "render_ascii_timeline",
]

#: Seconds -> trace_event microseconds.
_US = 1e6
#: Tolerance for the non-overlap check (float jitter in microseconds).
_OVERLAP_EPS_US = 1e-3


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------

def _track_ids(tracer: Tracer) -> dict[Track, tuple[int, int]]:
    """Stable (pid, tid) assignment: one pid per process, tid per thread."""
    pids: dict[str, int] = {}
    tids: dict[Track, tuple[int, int]] = {}
    per_process: dict[str, int] = {}
    tracks: list[Track] = []
    seen: set[Track] = set()
    for span in tracer.spans:
        if span.track not in seen:
            seen.add(span.track)
            tracks.append(span.track)
    for instant in tracer.instants:
        if instant.track not in seen:
            seen.add(instant.track)
            tracks.append(instant.track)
    for track in sorted(tracks, key=lambda t: (t.process, t.thread)):
        pid = pids.setdefault(track.process, len(pids) + 1)
        tid = per_process.get(track.process, 0) + 1
        per_process[track.process] = tid
        tids[track] = (pid, tid)
    return tids


def to_chrome_trace(tracer: Tracer, close_open: bool = True) -> dict:
    """Serialize the tracer as a Chrome ``trace_event`` JSON object."""
    if close_open:
        tracer.finish()
    ids = _track_ids(tracer)
    events: list[dict] = []
    named_pids: set[int] = set()
    for track, (pid, tid) in ids.items():
        if pid not in named_pids:
            named_pids.add(pid)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": track.process}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": track.thread}})
    for span in tracer.spans:
        pid, tid = ids[span.track]
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category.value,
            "ts": span.start * _US,
            "dur": max(0.0, span.duration) * _US,
            "pid": pid,
            "tid": tid,
            "args": _json_safe(span.attrs),
        })
    for instant in tracer.instants:
        pid, tid = ids[instant.track]
        events.append({
            "ph": "i",
            "name": instant.name,
            "cat": instant.category.value,
            "ts": instant.time * _US,
            "pid": pid,
            "tid": tid,
            "s": "t",
            "args": _json_safe(instant.attrs),
        })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"clock": "simulated-seconds",
                     "exporter": "repro.telemetry"},
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the Chrome trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer)))
    return path


def to_jsonl(tracer: Tracer, close_open: bool = True) -> str:
    """One JSON object per line: spans then instants, time-ordered."""
    if close_open:
        tracer.finish()
    rows: list[dict] = []
    for span in tracer.spans:
        rows.append({
            "type": "span",
            "name": span.name,
            "category": span.category.value,
            "process": span.track.process,
            "thread": span.track.thread,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "attrs": _json_safe(span.attrs),
        })
    for instant in tracer.instants:
        rows.append({
            "type": "instant",
            "name": instant.name,
            "category": instant.category.value,
            "process": instant.track.process,
            "thread": instant.track.thread,
            "time": instant.time,
            "attrs": _json_safe(instant.attrs),
        })
    rows.sort(key=lambda r: r.get("start", r.get("time", 0.0)))
    return "\n".join(json.dumps(r) for r in rows) + ("\n" if rows else "")


def _json_safe(attrs: dict) -> dict:
    """Attrs restricted to JSON scalars (repr() anything exotic)."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


# ---------------------------------------------------------------------------
# Schema validation (CI smoke + property test)
# ---------------------------------------------------------------------------

def validate_chrome_trace(trace: dict) -> list[str]:
    """Validate against the Chrome trace_event schema; return error list.

    Checks structural requirements (required keys per phase, numeric
    timestamps, non-negative durations) plus the rendering invariant the
    tracer guarantees: ``"X"`` events on one (pid, tid) either nest or
    are disjoint.
    """
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    per_tid: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric ts")
            continue
        if ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                errors.append(f"{where}: instant scope must be t/p/g")
            continue
        dur = event.get("dur")
        if not isinstance(dur, (int, float)):
            errors.append(f"{where}: X event missing numeric dur")
            continue
        if dur < 0:
            errors.append(f"{where}: negative dur {dur}")
            continue
        per_tid.setdefault((event["pid"], event["tid"]), []).append(
            (float(ts), float(ts) + float(dur), event["name"]))
    for key, spans in per_tid.items():
        # Sort by start; longer span first at equal starts (the parent).
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1] - _OVERLAP_EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + _OVERLAP_EPS_US:
                errors.append(
                    f"tid {key}: {name!r} [{start:.3f}, {end:.3f}] "
                    f"overlaps {stack[-1][2]!r} ending {stack[-1][1]:.3f} "
                    "without nesting")
                continue
            stack.append((start, end, name))
    return errors


# ---------------------------------------------------------------------------
# Step attribution (Fig. 11 from spans)
# ---------------------------------------------------------------------------

#: Categories reported as explicit columns; everything else folds into
#: ``other`` (structural/step-container spans are excluded entirely).
_ATTRIBUTION_CATEGORIES = (Category.COMPUTE, Category.COMM, Category.STALL,
                           Category.CHECKPOINT, Category.DATA)


@dataclass
class StepAttribution:
    """Wall-time decomposition of one optimizer step (one rank's view)."""

    step: int
    start: float
    end: float
    #: Seconds per category; residual (uninstrumented) time lands in
    #: ``stall`` so the categories always sum exactly to ``wall``.
    compute: float = 0.0
    comm: float = 0.0
    stall: float = 0.0
    checkpoint: float = 0.0
    data: float = 0.0
    other: float = 0.0

    @property
    def wall(self) -> float:
        return self.end - self.start

    @property
    def accounted(self) -> float:
        return (self.compute + self.comm + self.stall + self.checkpoint
                + self.data + self.other)

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "wall": self.wall,
            "compute": self.compute,
            "comm": self.comm,
            "stall": self.stall,
            "checkpoint": self.checkpoint,
            "data": self.data,
            "other": self.other,
        }


def _leaf_spans(spans: list[Span]) -> list[Span]:
    """Spans (within one track) that contain no other span.

    Spans on a track nest or are disjoint (tracer invariant), so a single
    sorted sweep with an open-span stack finds containment: a span is a
    leaf iff nothing was pushed on top of it before it was popped.

    Zero-duration spans are excluded outright: they carry no time to
    attribute, and treating one as a child would wrongly strip leaf
    status (and therefore its seconds) from a same-instant sibling.
    """
    ordered = sorted((s for s in spans if s.end - s.start > 0.0),
                     key=lambda s: (s.start, -(s.end - s.start)))
    leaves: list[Span] = []
    stack: list[tuple[Span, bool]] = []  # (span, has_child)

    def pop_finished(upto: float) -> None:
        while stack and upto >= stack[-1][0].end:
            span, has_child = stack.pop()
            if not has_child:
                leaves.append(span)
            if stack:
                stack[-1] = (stack[-1][0], True)

    for span in ordered:
        pop_finished(span.start)
        if stack:
            stack[-1] = (stack[-1][0], True)
        stack.append((span, False))
    pop_finished(float("inf"))
    return leaves


def step_attribution(tracer: Tracer, track: Track,
                     step_name: str = "step") -> list[StepAttribution]:
    """Decompose every step span on ``track`` into category seconds.

    Only *leaf* spans contribute (a parent's time is represented by its
    children plus residual), and any step time not covered by an
    instrumented span is attributed to ``stall`` — so the per-step sum
    ``compute + comm + stall + checkpoint + data + other`` equals the
    step's wall time exactly, by construction.
    """
    on_track = [s for s in tracer.spans
                if s.track == track and s.end is not None]
    steps = sorted((s for s in on_track if s.name == step_name),
                   key=lambda s: s.start)
    leaves = _leaf_spans([s for s in on_track if s.name != step_name])
    out: list[StepAttribution] = []
    for index, span in enumerate(steps):
        attribution = StepAttribution(
            step=int(span.attrs.get("step", index)),
            start=span.start, end=span.end)
        covered = 0.0
        for leaf in leaves:
            lo = max(leaf.start, span.start)
            hi = min(leaf.end, span.end)
            if hi <= lo:
                continue
            _add_category(attribution, leaf.category, hi - lo)
            covered += hi - lo
        residual = max(0.0, attribution.wall - covered)
        attribution.stall += residual
        out.append(attribution)
    return out


def checkpoint_spans(tracer: Tracer, track: Track,
                     name: str = "checkpoint") -> list[Span]:
    """Top-level checkpoint spans on a track, time-ordered."""
    return sorted((s for s in tracer.spans
                   if s.track == track and s.name == name
                   and s.end is not None),
                  key=lambda s: s.start)


def _add_category(attribution: StepAttribution, category: Category,
                  seconds: float) -> None:
    if category is Category.COMPUTE:
        attribution.compute += seconds
    elif category is Category.COMM:
        attribution.comm += seconds
    elif category is Category.STALL:
        attribution.stall += seconds
    elif category is Category.CHECKPOINT:
        attribution.checkpoint += seconds
    elif category is Category.DATA:
        attribution.data += seconds
    else:
        attribution.other += seconds


# ---------------------------------------------------------------------------
# Flame summary + ASCII timeline
# ---------------------------------------------------------------------------

def flame_rows(tracer: Tracer,
               process: Optional[str] = None) -> list[dict]:
    """Aggregate leaf-span time by (category, name), descending.

    ``process`` filters to one track process (e.g. the training host) so
    fabric-lane micro-spans don't swamp the step-phase view.
    """
    by_track: dict[Track, list[Span]] = {}
    for span in tracer.spans:
        if span.end is None:
            continue
        if process is not None and span.track.process != process:
            continue
        by_track.setdefault(span.track, []).append(span)
    totals: dict[tuple[str, str], dict] = {}
    for spans in by_track.values():
        for leaf in _leaf_spans(spans):
            key = (leaf.category.value, leaf.name)
            row = totals.setdefault(
                key, {"category": key[0], "name": key[1],
                      "total_s": 0.0, "count": 0})
            row["total_s"] += leaf.duration
            row["count"] += 1
    rows = sorted(totals.values(), key=lambda r: -r["total_s"])
    grand = sum(r["total_s"] for r in rows) or 1.0
    for row in rows:
        row["mean_s"] = row["total_s"] / row["count"]
        row["share_pct"] = 100.0 * row["total_s"] / grand
    return rows


def render_flame_summary(tracer: Tracer, process: Optional[str] = None,
                         limit: int = 12) -> str:
    """Fixed-width text table of the heaviest (category, name) pairs."""
    rows = flame_rows(tracer, process)[:limit]
    if not rows:
        return "(no spans recorded)"
    header = (f"{'category':<11} {'span':<22} {'total s':>10} "
              f"{'count':>7} {'mean ms':>9} {'share':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['category']:<11} {row['name']:<22} "
            f"{row['total_s']:>10.4f} {row['count']:>7} "
            f"{row['mean_s'] * 1e3:>9.3f} {row['share_pct']:>6.1f}%")
    return "\n".join(lines)


_TIMELINE_GLYPHS = {
    Category.COMPUTE.value: "#",
    Category.COMM.value: "=",
    Category.STALL.value: ".",
    Category.CHECKPOINT.value: "C",
    Category.DATA.value: "d",
}


#: Rendering width clamp: no terminal benefits from multi-thousand-column
#: lines, and every column costs a scan — wide sim-time windows scale into
#: this band instead of widening the output.
_TIMELINE_MIN_WIDTH = 8
_TIMELINE_MAX_WIDTH = 400


def render_ascii_timeline(tracer: Tracer, track: Track,
                          t0: float, t1: float, width: int = 72) -> str:
    """One-line Perfetto-screenshot-equivalent for a track window.

    Each column is ``(t1 - t0) / width`` seconds, filled with the glyph of
    the category covering most of that column: ``#`` compute, ``=`` comm,
    ``.`` stall, ``C`` checkpoint, ``d`` data, space for idle.

    ``width`` is clamped to [8, 400]: a wide sim-time window rescales
    into the same number of columns rather than producing unreadable
    multi-thousand-character lines.  Rendering is one pass over the leaf
    spans — each leaf touches only the columns it overlaps — so cost is
    O(spans + width), independent of the window's sim-time extent.
    """
    if t1 <= t0:
        return ""
    width = max(_TIMELINE_MIN_WIDTH, min(int(width), _TIMELINE_MAX_WIDTH))
    leaves = _leaf_spans([s for s in tracer.spans
                          if s.track == track and s.end is not None])
    cell = (t1 - t0) / width
    # cover[i] accumulates seconds per glyph in column i.
    cover: list[dict[str, float]] = [{} for _ in range(width)]
    for leaf in leaves:
        lo, hi = max(leaf.start, t0), min(leaf.end, t1)
        if hi <= lo:
            continue
        glyph = _TIMELINE_GLYPHS.get(leaf.category.value, "?")
        first = min(width - 1, int((lo - t0) / cell))
        last = min(width - 1, int((hi - t0) / cell))
        for i in range(first, last + 1):
            a = max(lo, t0 + i * cell)
            b = min(hi, t0 + (i + 1) * cell)
            if b > a:
                cover[i][glyph] = cover[i].get(glyph, 0.0) + (b - a)
    columns = [max(per, key=per.get) if per else " " for per in cover]
    scale = (f"|{t0:.4f}s" + " " * max(0, width - 18)
             + f"{t1:.4f}s|")
    legend = "#=compute ==comm .=stall C=checkpoint d=data"
    return "".join(columns) + "\n" + scale + "\n" + legend
