"""Unified, namespaced metrics registry.

Before this module, the repo's metrics lived in three disjoint worlds:
:class:`~repro.sim.TimeSeries` gauges inside :class:`MetricsCollector`,
:class:`~repro.sim.CounterMonitor` byte counters on links/GPUs/storage,
and ad-hoc derived quantities (utilization fractions, port rates) computed
inline by each experiment.  The :class:`MetricsRegistry` puts all three
behind one slash-namespaced query/export API::

    registry.series("gpu/host0/gpu0/util", unit="%")
    registry.attach("fabric/falcon0/H1/ingress", link_counter)
    registry.gauge("gpu/host0/gpu0/busy_frac", gpu.busy_fraction)

    registry.names("gpu/")                  # enumerate a namespace
    registry.summary("gpu/host0/gpu0/util") # SummaryStats dict
    registry.export(t0, t1)                 # every metric, JSON-able

Derived *gauges* are callables ``fn(t0, t1) -> float`` evaluated lazily at
query time, which is how busy-fraction metrics must be read (post-hoc over
a window; see ``MetricsCollector.stop``).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

from ..sim import CounterMonitor, TimeSeries

__all__ = ["MetricsRegistry", "MetricError"]

Metric = Union[TimeSeries, CounterMonitor, Callable[[float, float], float]]


class MetricError(KeyError):
    """Unknown metric name or conflicting registration."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class MetricsRegistry:
    """Namespaced directory of time series, counters, and derived gauges."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    # -- registration -----------------------------------------------------
    def attach(self, name: str, metric: Metric) -> Metric:
        """Register an existing metric object under ``name``.

        Re-attaching the *same* object under the same name is a no-op so
        idempotent wiring (e.g. re-watching a device) stays cheap;
        attaching a different object under a taken name is an error.
        """
        if not name:
            raise MetricError("metric name must be non-empty")
        existing = self._metrics.get(name)
        if existing is not None:
            if existing is metric:
                return metric
            raise MetricError(f"metric {name!r} is already registered")
        self._metrics[name] = metric
        return metric

    def series(self, name: str, unit: str = "") -> TimeSeries:
        """Create (or return the existing) named :class:`TimeSeries`."""
        existing = self._metrics.get(name)
        if isinstance(existing, TimeSeries):
            return existing
        return self.attach(name, TimeSeries(name, unit))

    def counter(self, name: str, unit: str = "bytes") -> CounterMonitor:
        """Create (or return the existing) named :class:`CounterMonitor`."""
        existing = self._metrics.get(name)
        if isinstance(existing, CounterMonitor):
            return existing
        return self.attach(name, CounterMonitor(name, unit))

    def gauge(self, name: str,
              fn: Callable[[float, float], float]) -> None:
        """Register a derived gauge ``fn(t0, t1) -> value``."""
        self.attach(name, fn)

    # -- lookup -----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"unknown metric {name!r}") from None

    def names(self, prefix: Optional[str] = None) -> list[str]:
        """All registered names (optionally under a namespace prefix)."""
        if prefix is None:
            return sorted(self._metrics)
        return sorted(n for n in self._metrics if n.startswith(prefix))

    # -- querying ---------------------------------------------------------
    def value(self, name: str, t0: float, t1: float) -> float:
        """One scalar for any metric kind over ``[t0, t1]``.

        TimeSeries -> time-weighted mean; CounterMonitor -> mean rate;
        gauge -> ``fn(t0, t1)``.
        """
        metric = self.get(name)
        if isinstance(metric, TimeSeries):
            return metric.summary(t0, t1).time_weighted_mean
        if isinstance(metric, CounterMonitor):
            return metric.mean_rate(t0, t1)
        return metric(t0, t1)

    def summary(self, name: str, t0: Optional[float] = None,
                t1: Optional[float] = None) -> dict:
        """JSON-able summary of one metric over an optional window."""
        metric = self.get(name)
        if isinstance(metric, TimeSeries):
            out = metric.summary(t0, t1).as_dict()
            out["kind"] = "series"
            out["unit"] = metric.unit
            return out
        if isinstance(metric, CounterMonitor):
            lo = 0.0 if t0 is None else t0
            hi = metric._times[-1] if t1 is None else t1
            return {
                "kind": "counter",
                "unit": metric.unit,
                "total": metric.total,
                "window_total": metric.total_between(lo, hi)
                if hi >= lo else float("nan"),
                "rate": metric.mean_rate(lo, hi),
            }
        if t0 is None or t1 is None:
            raise MetricError(
                f"gauge {name!r} needs an explicit (t0, t1) window")
        return {"kind": "gauge", "value": metric(t0, t1)}

    def export(self, t0: Optional[float] = None,
               t1: Optional[float] = None,
               prefix: Optional[str] = None) -> dict[str, dict]:
        """Summaries for every metric (gauges only when a window given).

        Gauges whose evaluation fails or returns NaN without a window are
        skipped rather than poisoning the export.
        """
        out: dict[str, dict] = {}
        for name in self.names(prefix):
            metric = self._metrics[name]
            if not isinstance(metric, (TimeSeries, CounterMonitor)):
                if t0 is None or t1 is None:
                    continue
                try:
                    value = metric(t0, t1)
                except Exception:
                    continue
                if isinstance(value, float) and math.isnan(value):
                    continue
                out[name] = {"kind": "gauge", "value": value}
            else:
                out[name] = self.summary(name, t0, t1)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
