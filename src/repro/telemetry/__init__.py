"""Telemetry: sampled system metrics (the wandb / Nsight stand-in)."""

from .collector import MetricsCollector

__all__ = ["MetricsCollector"]
