"""Observability: span tracing, metrics registry, sampled collectors.

The subsystem has three pillars (see DESIGN.md "Observability"):

- :mod:`repro.telemetry.trace` — sim-time span tracer (Nsight stand-in),
- :mod:`repro.telemetry.registry` — namespaced metrics directory
  unifying :class:`~repro.sim.TimeSeries`, counters, and derived gauges,
- :mod:`repro.telemetry.export` — Chrome/Perfetto trace_event JSON,
  flat JSONL, flame summary, and span-based step attribution (Fig. 11),
- :mod:`repro.telemetry.profile` — the plan-level profiler: measured
  critical-path attribution, per-resource utilization, what-if speedup
  ceilings, and the :class:`BottleneckReport` (Figs. 11/16 diagnosis).

:class:`MetricsCollector` remains the periodic sampler behind the
utilization figures (9/10/13/14); it can publish its series into a
:class:`MetricsRegistry` via the ``registry=`` constructor argument.
"""

from .collector import MetricsCollector
from .export import (
    StepAttribution,
    flame_rows,
    render_ascii_timeline,
    render_flame_summary,
    step_attribution,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
)
from .profile import (
    ATTRIBUTION_CATEGORIES,
    SCALE_BUCKETS,
    Attribution,
    BottleneckReport,
    CriticalPath,
    PathSegment,
    PlanProfile,
    RunProfile,
    WhatIf,
    WindowProfile,
    attribution,
    bottleneck_label,
    critical_path,
    imbalance,
    predict_scaled_timing,
    profile_plan,
    profile_run,
    relaxation_is_exact,
    scale_plan,
    utilization,
    what_if,
)
from .registry import MetricError, MetricsRegistry
from .trace import NULL_TRACER, Category, Span, Tracer, Track

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "SCALE_BUCKETS",
    "Attribution",
    "BottleneckReport",
    "CriticalPath",
    "PathSegment",
    "PlanProfile",
    "RunProfile",
    "WhatIf",
    "WindowProfile",
    "attribution",
    "bottleneck_label",
    "critical_path",
    "imbalance",
    "predict_scaled_timing",
    "profile_plan",
    "profile_run",
    "relaxation_is_exact",
    "scale_plan",
    "utilization",
    "what_if",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricError",
    "Tracer",
    "Span",
    "Track",
    "Category",
    "NULL_TRACER",
    "StepAttribution",
    "step_attribution",
    "flame_rows",
    "render_flame_summary",
    "render_ascii_timeline",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
]
