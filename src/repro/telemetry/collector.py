"""Sampled system-level metrics (the paper's wandb/Nsight stand-in).

A :class:`MetricsCollector` runs a sampling process inside the simulation
that periodically records, per watched device:

- GPU utilization (busy seconds per wall second, %) — Figs. 9/10,
- GPU memory utilization (%) — Fig. 10,
- GPU memory-access time (% of time HBM-bound) — Fig. 10,
- CPU utilization (%) — Fig. 13,
- host memory utilization (%) — Fig. 14.

Each metric is a :class:`~repro.sim.TimeSeries`, so the experiment layer
can pull both whole-run traces (Fig. 9's utilization-over-time curves)
and summary statistics (Fig. 10/13/14's per-configuration bars).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim import Environment, TimeSeries

if TYPE_CHECKING:  # imports for annotations only — keeps repro.telemetry
    # importable from the device/fabric layers without a cycle.
    from ..devices.cpu import CPU
    from ..devices.gpu import GPU
    from ..devices.host import HostServer
    from .registry import MetricsRegistry

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Periodic sampler over GPUs, CPUs, and host memory."""

    def __init__(self, env: Environment, sample_interval: float = 0.25,
                 registry: Optional["MetricsRegistry"] = None):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.env = env
        self.sample_interval = sample_interval
        self.registry = registry
        self._gpus: list[GPU] = []
        self._cpus: list[CPU] = []
        self._hosts: list[HostServer] = []
        self.gpu_util: dict[str, TimeSeries] = {}
        self.gpu_mem: dict[str, TimeSeries] = {}
        self.gpu_mem_access: dict[str, TimeSeries] = {}
        self.cpu_util: dict[str, TimeSeries] = {}
        self.host_mem: dict[str, TimeSeries] = {}
        self._running = False
        self._stopped = False
        self._finalized = False
        self._start_time: Optional[float] = None
        self._sample_times: list[float] = []

    # -- registration -----------------------------------------------------
    def watch_gpu(self, gpu: "GPU") -> None:
        if gpu.name in self.gpu_util:
            return
        self._gpus.append(gpu)
        self.gpu_util[gpu.name] = TimeSeries(f"{gpu.name}:util", "%")
        self.gpu_mem[gpu.name] = TimeSeries(f"{gpu.name}:mem", "%")
        self.gpu_mem_access[gpu.name] = TimeSeries(
            f"{gpu.name}:mem_access", "%")
        self._publish(f"gpu/{gpu.name}/util", self.gpu_util[gpu.name])
        self._publish(f"gpu/{gpu.name}/mem", self.gpu_mem[gpu.name])
        self._publish(f"gpu/{gpu.name}/mem_access",
                      self.gpu_mem_access[gpu.name])

    def watch_cpu(self, cpu: "CPU") -> None:
        if cpu.name in self.cpu_util:
            return
        self._cpus.append(cpu)
        self.cpu_util[cpu.name] = TimeSeries(f"{cpu.name}:util", "%")
        self._publish(f"cpu/{cpu.name}/util", self.cpu_util[cpu.name])

    def watch_host(self, host: "HostServer") -> None:
        if host.name in self.host_mem:
            return
        self._hosts.append(host)
        self.host_mem[host.name] = TimeSeries(f"{host.name}:mem", "%")
        self._publish(f"host/{host.name}/mem", self.host_mem[host.name])
        self.watch_cpu(host.cpu)

    def _publish(self, name: str, series: TimeSeries) -> None:
        if self.registry is not None:
            self.registry.attach(name, series)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Begin sampling (idempotent while running).

        A collector is single-use: once :meth:`stop` has run, the sample
        loop is dead and the busy-derived series are finalized, so a
        restart would silently record nothing.  Starting after stop
        therefore raises instead — create a fresh collector per attempt
        (see ``FaultTolerantTrainingJob``, which already does).
        """
        if self._running:
            return
        if self._stopped:
            raise RuntimeError(
                "MetricsCollector cannot be restarted after stop(); "
                "create a new collector for each run")
        self._running = True
        self._start_time = self.env.now
        self.env.process(self._sample_loop())

    def stop(self) -> None:
        """Stop sampling and finalize busy-derived series (idempotent).

        Gauge metrics (memory levels) are sampled live; *busy-fraction*
        metrics (GPU/CPU utilization, memory-access time) are derived here
        from the devices' final busy counters, because querying a trailing
        window mid-simulation would miss kernels still in flight — the
        post-hoc read is a consistent estimator over every window.
        """
        self._stopped = True
        self._running = False
        self._finalize()

    def _sample_loop(self):
        dt = self.sample_interval
        while not self._stopped:
            yield self.env.timeout(dt)
            now = self.env.now
            self._sample_times.append(now)
            for gpu in self._gpus:
                self.gpu_mem[gpu.name].record(
                    now, 100.0 * gpu.memory_utilization)
            for host in self._hosts:
                self.host_mem[host.name].record(
                    now, 100.0 * host.memory_utilization)

    def _finalize(self) -> None:
        if self._finalized:
            return
        if self._start_time is None:
            # stop() before start(): nothing was sampled, nothing to derive.
            self._finalized = True
            return
        self._finalized = True
        # Each sample describes the interval [prev, now]; record it at the
        # interval *start* so the TimeSeries' sample-and-hold semantics
        # (values apply forward in time) line up with reality.  A final
        # interval up to stop time plus a closing point ensure the last
        # value carries weight in time-weighted statistics.
        times = list(self._sample_times)
        if not times or self.env.now > times[-1]:
            times.append(self.env.now)
        prev = self._start_time if self._start_time is not None else 0.0
        for now in times:
            if now <= prev:
                continue
            for gpu in self._gpus:
                self.gpu_util[gpu.name].record(
                    prev, 100.0 * gpu.busy_fraction(prev, now))
                self.gpu_mem_access[gpu.name].record(
                    prev, 100.0 * gpu.mem_access_fraction(prev, now))
            for cpu in self._cpus:
                self.cpu_util[cpu.name].record(
                    prev, 100.0 * cpu.utilization(prev, now))
            prev = now
        for series in (self.gpu_util, self.gpu_mem_access, self.cpu_util):
            for ts in series.values():
                last = ts.last()
                if last is not None and prev > ts.times[-1]:
                    ts.record(prev, last)

    # -- aggregation ----------------------------------------------------------
    def mean_gpu_utilization(self, t0: Optional[float] = None,
                             t1: Optional[float] = None) -> float:
        """Mean GPU utilization (%) across all watched GPUs."""
        return self._mean_over(self.gpu_util, t0, t1)

    def mean_gpu_memory(self, t0: Optional[float] = None,
                        t1: Optional[float] = None) -> float:
        return self._mean_over(self.gpu_mem, t0, t1)

    def mean_gpu_mem_access(self, t0: Optional[float] = None,
                            t1: Optional[float] = None) -> float:
        return self._mean_over(self.gpu_mem_access, t0, t1)

    def mean_cpu_utilization(self, t0: Optional[float] = None,
                             t1: Optional[float] = None) -> float:
        return self._mean_over(self.cpu_util, t0, t1)

    def mean_host_memory(self, t0: Optional[float] = None,
                         t1: Optional[float] = None) -> float:
        return self._mean_over(self.host_mem, t0, t1)

    @staticmethod
    def _mean_over(series: dict[str, TimeSeries],
                   t0: Optional[float], t1: Optional[float]) -> float:
        values = []
        for ts in series.values():
            s = ts.summary(t0, t1)
            if s.count:
                values.append(s.time_weighted_mean)
        return sum(values) / len(values) if values else float("nan")
