"""Plan-level profiler: critical-path attribution and what-if ceilings.

This module turns an *executed* plan — its per-op ``(start, end)``
times, from either timing engine — into the paper's diagnosis: why a
benchmark x strategy x backend cell is compute-, communication-, or
storage-bound (Figs. 11/16), and how much faster it could run if one
cost category were cheaper.

The analyses:

- :func:`critical_path` walks backward from the plan's sink through the
  op DAG using *measured* times and returns a gap-free tiling of the
  window into categorized :class:`PathSegment` s.  Both engines record
  an op's start as the instant its dependencies (or rendezvous peers)
  released it, and absorb resource waits — GPU stream FIFO, storage
  admission, rendezvous — *inside* the recorded span; hence at every
  tile boundary some predecessor's end equals the boundary, and the
  segments sum to the makespan **by construction**, not approximately.
- :func:`attribution` folds those segments into per-category seconds
  (compute, comm, copies, storage, framework overhead, contention,
  stalls) whose sum equals the window — the reconciliation invariant
  every report and test leans on.
- :func:`utilization` / :func:`imbalance` derive per-resource busy
  fractions (GPU streams, directed fabric links, the storage queue) and
  cross-rank straggler metrics from the same measured intervals.
- :func:`what_if` answers "how much faster if category X cost ``f`` of
  what it does?" three ways: an Amdahl bound from the critical-path
  share (analytic ceiling), an event-driven *relaxation* replay of the
  DAG with that category's measured durations rescaled (cheap
  prediction from the base timing alone), and — when asked — a true
  re-evaluation of the rescaled plan through the timing engines.

Exposed vs. overlapped communication falls out of the same machinery:
a collective's time *on* the critical path is exposed; the rest of its
measured duration was hidden under compute and never delays the step.
Contention is split off by probing each collective/transfer's *solo*
duration (a pure fast-path evaluation of a one-op plan on the same
fabric) and attributing the measured excess to queueing/sharing.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Optional

from ..plan.executor import ExecutionContext
from ..plan.fastpath import _COMM_KIND, _RING, PlanTiming, _Engine
from ..plan.ir import (
    Barrier,
    Collective,
    Compute,
    D2HCopy,
    Delay,
    H2DCopy,
    P2PCopy,
    PlanError,
    StepPlan,
    StorageRead,
    StorageWrite,
)

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "SCALE_BUCKETS",
    "PathSegment",
    "CriticalPath",
    "critical_path",
    "Attribution",
    "attribution",
    "bottleneck_label",
    "utilization",
    "imbalance",
    "scale_plan",
    "predict_scaled_timing",
    "relaxation_is_exact",
    "dirty_cone",
    "IncrementalRetime",
    "retime_incremental",
    "WhatIf",
    "what_if",
    "PlanProfile",
    "profile_plan",
    "WindowProfile",
    "RunProfile",
    "profile_run",
    "BottleneckReport",
]

#: Every category a :class:`PathSegment` may carry; attribution over a
#: window sums exactly to the window across these.
ATTRIBUTION_CATEGORIES = ("compute", "comm", "copy", "storage",
                          "framework", "contention", "stall", "data-wait")
#: Cost categories :func:`scale_plan` / :func:`what_if` can rescale.
SCALE_BUCKETS = ("compute", "comm", "copy", "storage", "framework")

#: Tolerance for "this predecessor's end is the tile boundary" tests.
#: Engine successors are scheduled at bit-identical floats, so this only
#: guards against accumulated noise in *absolute* (run-level) times.
_TILE_RTOL = 1e-9
_TILE_ATOL = 1e-12
#: Factor used when a zeroed cost must be probed through the fast path
#: (exactly-zero durations create FIFO ties the engines refuse to
#: order; an epsilon keeps every event distinct).
_EPSILON_FACTOR = 1e-6


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= max(_TILE_ATOL,
                             _TILE_RTOL * max(abs(a), abs(b), 1.0))


def _op_bucket(op) -> str:
    """The attribution category an op's exclusive time belongs to."""
    if isinstance(op, Compute):
        return "compute"
    if isinstance(op, (Collective, P2PCopy)):
        return "comm"
    if isinstance(op, (H2DCopy, D2HCopy)):
        return "copy"
    if isinstance(op, (StorageRead, StorageWrite)):
        return "storage"
    if isinstance(op, Delay):
        # Elapsed-proportional delays model per-step framework overhead;
        # fixed delays are compiled schedule facts (DDP bucket-readiness
        # points mirror backward-kernel progress), i.e. compute time.
        return "framework" if op.elapsed_fraction > 0 else "compute"
    if isinstance(op, Barrier):
        return "stall"
    raise PlanError(f"no attribution bucket for op kind {op.kind!r}")


def _times_of(timing) -> dict:
    """Accept a :class:`PlanTiming` or a raw ``{uid: (start, end)}``."""
    return timing.op_times if isinstance(timing, PlanTiming) else timing


# -- measured-schedule reconstruction ----------------------------------------

def _stream_begins(plan: StepPlan, times: dict):
    """Reconstruct per-rank GPU stream admission from measured times.

    A compute's recorded span starts at its *ready* time; the kernel
    itself began at ``max(ready, previous kernel's end)`` on that rank's
    stream.  Returns ``(begin, prev)`` maps: uid -> execution begin and
    uid -> the stream predecessor whose end equals that begin (None for
    the stream head or when the op started at its ready time).
    """
    begins: dict = {}
    prevs: dict = {}
    for rank in range(plan.world_size):
        computes = [op for op in plan.by_rank(rank)
                    if isinstance(op, Compute) and op.uid in times]
        computes.sort(key=lambda op: (times[op.uid][1], times[op.uid][0]))
        cursor = float("-inf")
        prev_uid = None
        for op in computes:
            start, end = times[op.uid]
            begin = max(start, cursor)
            begins[op.uid] = begin
            prevs[op.uid] = prev_uid if begin > start and \
                prev_uid is not None else None
            cursor = end
            prev_uid = op.uid
    return begins, prevs


class _BaseGroup:
    """One reconstructed rendezvous: the k-th collective/barrier of every
    rank, with its measured live point (last arrival) and completion."""

    __slots__ = ("uids", "arrivals", "live", "end", "kind", "nbytes",
                 "root", "chunk", "barrier", "group")

    def __init__(self, members, times):
        self.uids = {op.rank: op.uid for op in members}
        self.arrivals = {op.rank: times[op.uid][0] for op in members}
        self.live = max(self.arrivals.values())
        self.end = max(times[op.uid][1] for op in members)
        rep = members[0]
        self.barrier = isinstance(rep, Barrier)
        self.group = getattr(rep, "group", None)
        if self.barrier:
            self.kind = "barrier"
            self.nbytes, self.root, self.chunk = 0.0, None, None
        else:
            self.kind = rep.comm
            self.nbytes = rep.bytes
            self.root = rep.root
            self.chunk = rep.chunk_bytes

    @property
    def duration(self) -> float:
        return self.end - self.live

    def latest_uid(self) -> str:
        """Uid of the last-arriving member (the rendezvous holdout)."""
        rank = max(self.arrivals, key=lambda r: (self.arrivals[r], r))
        return self.uids[rank]


def _rendezvous_groups(plan: StepPlan, times: dict):
    """Pair up every rank's k-th rendezvous, mirroring the communicator.

    The runtime assigns group membership by per-rank *arrival order* on
    each communicator (grouped collectives rendezvous on their own
    sub-communicator, keyed by the op's group tuple; barriers and
    ungrouped collectives share the world communicator); measured starts
    are arrivals, so sorting each rank's joins by (start, program order)
    per communicator reproduces the grouping.  Returns
    ``(groups, by_uid)``.
    """
    per_comm: dict = {}     # comm key -> {rank: [ops in join order]}
    for rank in range(plan.world_size):
        joins = [(times[op.uid][0], idx, op)
                 for idx, op in enumerate(plan.by_rank(rank))
                 if isinstance(op, (Collective, Barrier))
                 and op.uid in times]
        joins.sort(key=lambda item: (item[0], item[1]))
        for _s, _i, op in joins:
            key = getattr(op, "group", None)
            per_comm.setdefault(key, {}).setdefault(rank, []).append(op)
    groups: list = []
    for key, by_rank in per_comm.items():
        members = range(plan.world_size) if key is None else key
        per_rank = [by_rank.get(rank, []) for rank in members]
        counts = {len(joins) for joins in per_rank}
        if len(counts) > 1:
            label = "world" if key is None else f"group {key}"
            raise PlanError(
                f"plan {plan.name!r} is rank-asymmetric on {label}: "
                f"per-rank rendezvous counts {sorted(counts)}")
        groups += [_BaseGroup([joins[k] for joins in per_rank], times)
                   for k in range(counts.pop() if counts else 0)]
    by_uid = {uid: g for g in groups for uid in g.uids.values()}
    return groups, by_uid


# -- solo-cost probes (contention baselines) ---------------------------------

def _transfer_endpoints(op, ctx: ExecutionContext):
    gpus = ctx.gpus
    if isinstance(op, H2DCopy):
        return ctx.host_node, gpus[op.rank].name
    if isinstance(op, D2HCopy):
        return gpus[op.rank].name, ctx.host_node
    return gpus[op.rank].name, gpus[op.dst_rank].name


def _transfer_solo_seconds(op, ctx: ExecutionContext) -> Optional[float]:
    """Uncontended duration of a point-to-point transfer op."""
    if ctx.topology is None:
        return None
    src, dst = _transfer_endpoints(op, ctx)
    route = ctx.topology.route(src, dst)
    fixed = ctx.topology.transfer_overhead + route.latency
    if op.bytes <= 0 or not route.segments:
        return fixed
    return fixed + op.bytes / route.bandwidth


def _storage_solo_seconds(op, ctx: ExecutionContext) -> Optional[float]:
    """Uncontended duration of a storage op (no queue wait, idle fabric)."""
    storage = ctx.storage
    if storage is None or ctx.topology is None:
        return None
    spec = storage.spec
    if isinstance(op, StorageRead):
        src, dst = storage.media_node, ctx.host_node
        nbytes, latency = op.bytes, spec.read_latency
    else:
        src, dst = ctx.host_node, storage.media_node
        nbytes = op.bytes * (spec.read_bandwidth / spec.write_bandwidth)
        latency = spec.write_latency
    route = ctx.topology.route(src, dst)
    fixed = latency + ctx.topology.transfer_overhead + route.latency
    if nbytes <= 0 or not route.segments:
        return fixed
    return fixed + nbytes / route.bandwidth


def _solo_group_seconds(group: _BaseGroup, ctx: ExecutionContext,
                        cache: dict) -> Optional[float]:
    """Duration of this collective alone on an idle fabric.

    Evaluates a one-collective plan through the fast-path engine (pure:
    no device or link state is touched), so intra-collective link
    sharing — ring pairs squeezing through one uplink — is *included*;
    only interference from other concurrent work counts as contention.
    """
    if group.barrier or group.nbytes <= 0 or ctx.comm is None:
        return 0.0
    world = ctx.comm.world_size
    key = (group.kind, group.nbytes, group.root, group.chunk, world)
    if key in cache:
        return cache[key]
    ops = [Collective(uid=f"r{r}:probe", rank=r, name="probe",
                      comm=group.kind, bytes=group.nbytes,
                      root=group.root, chunk_bytes=group.chunk)
           for r in range(world)]
    probe = StepPlan("solo-probe", world, ops)
    probe_ctx = ExecutionContext(
        env=ctx.env, comm=ctx.comm, gpus=ctx.gpus, topology=ctx.topology,
        host_node=ctx.host_node, storage=ctx.storage)
    try:
        solo = _Engine(probe, probe_ctx).run().makespan
    except Exception:
        solo = None  # e.g. watchdog refusal: skip the contention split
    cache[key] = solo
    return solo


# -- the critical path -------------------------------------------------------

@dataclass(frozen=True)
class PathSegment:
    """One tile of the critical-path window."""

    start: float
    end: float
    category: str
    #: Op whose span produced this tile (None for synthesized gaps).
    uid: Optional[str] = None
    #: For ``contention`` tiles: the category that paid the queueing.
    source: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """A gap-free tiling of ``window`` by measured-schedule segments."""

    segments: list
    window: tuple
    sink_uid: Optional[str]
    root_uid: Optional[str]

    @property
    def length(self) -> float:
        return sum(seg.duration for seg in self.segments)


def critical_path(plan: StepPlan, timing, ctx: Optional[ExecutionContext]
                  = None, window: Optional[tuple] = None,
                  sink_uid: Optional[str] = None,
                  gap_category: str = "stall",
                  probe_cache: Optional[dict] = None) -> CriticalPath:
    """Extract the measured critical path and tile ``window`` with it.

    Walks backward from the sink op: at each op, emit its exclusive
    tile, then jump to whichever predecessor *released* it — a DAG
    dependency whose end equals the op's admission, the previous kernel
    on the GPU stream, or (for rendezvous ops) the last-arriving peer.
    Any window prefix before the walk's root becomes a ``gap_category``
    tile, so the segments always sum to the window exactly.

    ``ctx`` enables contention splits (solo-cost probes need routes and
    the communicator); without it, measured durations attribute whole.
    ``timing`` may be relative (plan evaluation) or absolute (captured
    from a live run) — the walk only compares the times it is given.
    """
    times = _times_of(timing)
    if not times:
        return CriticalPath([], window or (0.0, 0.0), None, None)
    begins, stream_prevs = _stream_begins(plan, times)
    _groups, group_of = _rendezvous_groups(plan, times)
    probes = probe_cache if probe_cache is not None else {}

    if sink_uid is None:
        sink_uid = max(times, key=lambda uid: (times[uid][1], uid))
    t_end = times[sink_uid][1]
    t0 = window[0] if window else min(s for s, _e in times.values())
    t1 = window[1] if window else t_end

    rev: list = []          # segments, latest-first

    def emit(start, end, category, uid, source=None):
        if end - start > 0.0:
            rev.append(PathSegment(start, end, category, uid, source))

    def emit_split(start, end, category, uid, solo):
        """Tile [start, end] as base category + measured contention.

        ``rev`` collects segments latest-first, so the contention tail
        goes in before the base tile.
        """
        if solo is None or solo >= (end - start):
            emit(start, end, category, uid)
            return
        cut = start + max(solo, 0.0)
        emit(cut, end, "contention", uid, source=category)
        emit(start, cut, category, uid)

    op = plan.op(sink_uid)
    boundary = t_end
    root_uid = sink_uid
    for _guard in range(10 * len(plan.ops) + 10):
        root_uid = op.uid
        start, _end = times[op.uid]
        pred_source = op     # whose deps we follow next
        if isinstance(op, (Collective, Barrier)):
            group = group_of[op.uid]
            live = group.live
            if boundary > live:
                solo = _solo_group_seconds(group, ctx, probes) \
                    if ctx is not None else None
                emit_split(live, boundary, "comm" if not group.barrier
                           else "stall", op.uid, solo)
            pred_source = plan.op(group.latest_uid())
            boundary = live
        elif isinstance(op, Compute):
            begin = begins.get(op.uid, start)
            emit(begin, boundary, "compute", op.uid)
            boundary = begin
            prev = stream_prevs.get(op.uid)
            if prev is not None:
                # Stream-serialized: the releasing predecessor is the
                # prior kernel, whose end is this one's begin.
                op = plan.op(prev)
                if boundary <= t0:
                    root_uid = op.uid
                    break
                continue
        elif isinstance(op, (H2DCopy, D2HCopy, P2PCopy)):
            solo = _transfer_solo_seconds(op, ctx) \
                if ctx is not None else None
            emit_split(start, boundary, _op_bucket(op), op.uid, solo)
            boundary = start
        elif isinstance(op, (StorageRead, StorageWrite)):
            solo = _storage_solo_seconds(op, ctx) \
                if ctx is not None else None
            emit_split(start, boundary, "storage", op.uid, solo)
            boundary = start
        else:  # Delay
            emit(start, boundary, _op_bucket(op), op.uid)
            boundary = start
        if boundary <= t0:
            break
        preds = [plan.op(dep) for dep in pred_source.deps
                 if dep in times]
        preds = [p for p in preds if _close(times[p.uid][1], boundary)
                 or times[p.uid][1] >= boundary]
        if not preds:
            break  # true root: the leading window prefix is a gap
        op = max(preds, key=lambda p: times[p.uid][1])
        boundary = min(boundary, times[op.uid][1])
    segments = list(reversed(rev))

    # Clip to the window and synthesize the gap tiles.
    clipped: list = []
    cursor = t0
    for seg in segments:
        s, e = max(seg.start, t0), min(seg.end, t1)
        if e <= s:
            continue
        if s > cursor:
            category = gap_category if not clipped else "stall"
            clipped.append(PathSegment(cursor, s, category, None))
        clipped.append(dataclasses.replace(seg, start=s, end=e))
        cursor = max(cursor, e)
    if cursor < t1:
        clipped.append(PathSegment(cursor, t1,
                                   gap_category if not clipped else
                                   "stall", None))
    return CriticalPath(clipped, (t0, t1), sink_uid, root_uid)


# -- attribution -------------------------------------------------------------

@dataclass
class Attribution:
    """Per-category seconds over a window; sums to the window exactly."""

    seconds: dict
    contention_by_source: dict
    window: tuple

    @property
    def wall(self) -> float:
        return self.window[1] - self.window[0]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def share(self, category: str) -> float:
        wall = self.wall
        return self.seconds.get(category, 0.0) / wall if wall else 0.0

    def as_dict(self) -> dict:
        return {
            "window": list(self.window),
            "wall_s": self.wall,
            "seconds": {k: self.seconds.get(k, 0.0)
                        for k in ATTRIBUTION_CATEGORIES
                        if self.seconds.get(k)},
            "contention_by_source": dict(self.contention_by_source),
        }


def attribution(path: CriticalPath) -> Attribution:
    """Fold a critical path's segments into per-category seconds."""
    seconds: dict = {}
    contention: dict = {}
    for seg in path.segments:
        seconds[seg.category] = seconds.get(seg.category, 0.0) \
            + seg.duration
        if seg.category == "contention" and seg.source:
            contention[seg.source] = contention.get(seg.source, 0.0) \
                + seg.duration
    return Attribution(seconds, contention, path.window)


def bottleneck_label(attr: Attribution) -> tuple:
    """``(label, shares)`` classifying a window as compute/comm/storage
    bound.  Contention folds into the category that queued; framework
    overhead counts as compute (it scales with kernel work)."""
    sec, con = attr.seconds, attr.contention_by_source
    grouped = {
        "compute": sec.get("compute", 0.0) + sec.get("framework", 0.0)
        + con.get("compute", 0.0) + con.get("framework", 0.0),
        "comm": sec.get("comm", 0.0) + con.get("comm", 0.0),
        "storage": sec.get("storage", 0.0) + sec.get("copy", 0.0)
        + con.get("storage", 0.0) + con.get("copy", 0.0),
    }
    wall = attr.wall or sum(grouped.values()) or 1.0
    shares = {k: v / wall for k, v in grouped.items()}
    top = max(shares, key=lambda k: shares[k])
    label = f"{top}-bound" if shares[top] >= 0.5 \
        else f"balanced({top}-leaning)"
    return label, shares


# -- utilization and imbalance -----------------------------------------------

def _interval_stats(intervals, window) -> dict:
    """Busy/contended seconds of one resource over ``window``."""
    t0, t1 = window
    span = max(t1 - t0, 0.0) or 1.0
    events: list = []
    for s, e in intervals:
        s, e = max(s, t0), min(e, t1)
        if e > s:
            events.append((s, 1))
            events.append((e, -1))
    events.sort()
    busy = contended = 0.0
    depth = 0
    last = t0
    for t, delta in events:
        if depth > 0:
            busy += t - last
        if depth > 1:
            contended += t - last
        depth += delta
        last = t
    return {"busy_s": busy, "busy_frac": busy / span,
            "contended_s": contended, "intervals": len(events) // 2}


def utilization(plan: StepPlan, timing, ctx: Optional[ExecutionContext]
                = None, window: Optional[tuple] = None) -> dict:
    """Per-resource busy intervals: GPU streams, directed fabric links,
    and the storage queue.  Link occupancy uses whole op windows (the
    fixed-latency prefix included), a deliberate upper bound."""
    times = _times_of(timing)
    if not times:
        return {}
    begins, _prevs = _stream_begins(plan, times)
    groups, _by_uid = _rendezvous_groups(plan, times)
    if window is None:
        window = (min(s for s, _e in times.values()),
                  max(e for _s, e in times.values()))
    resources: dict = {}

    def mark(name, start, end):
        resources.setdefault(name, []).append((start, end))

    for op in plan:
        if op.uid not in times:
            continue
        start, end = times[op.uid]
        if isinstance(op, Compute):
            mark(f"gpu:r{op.rank}", begins.get(op.uid, start), end)
        elif isinstance(op, (H2DCopy, D2HCopy, P2PCopy)) \
                and ctx is not None and ctx.topology is not None:
            src, dst = _transfer_endpoints(op, ctx)
            for seg in ctx.topology.route(src, dst).segments:
                mark(f"link:{seg.src}->{seg.dst}", start, end)
        elif isinstance(op, (StorageRead, StorageWrite)):
            mark("storage", start, end)
    if ctx is not None and ctx.comm is not None \
            and ctx.topology is not None:
        ranks = ctx.comm.ranks
        n = ctx.comm.world_size
        for group in groups:
            if group.barrier or group.nbytes <= 0 or n < 2 \
                    or group.end <= group.live:
                continue
            kind = _COMM_KIND.get(group.kind, group.kind)
            if kind in _RING:
                pairs = [(ranks[i], ranks[(i + 1) % n]) for i in range(n)]
            else:
                root = group.root or 0
                others = [i for i in range(n) if i != root]
                pairs = [(ranks[root], ranks[i]) for i in others] \
                    if kind == "broadcast" \
                    else [(ranks[i], ranks[root]) for i in others]
            for src, dst in pairs:
                for seg in ctx.topology.route(src, dst).segments:
                    mark(f"link:{seg.src}->{seg.dst}",
                         group.live, group.end)
    return {name: _interval_stats(intervals, window)
            for name, intervals in sorted(resources.items())}


def imbalance(plan: StepPlan, timing) -> dict:
    """Cross-rank straggler metrics from one plan's measured times."""
    times = _times_of(timing)
    begins, _prevs = _stream_begins(plan, times)
    _groups, by_uid = _rendezvous_groups(plan, times)
    per_rank: list = []
    for rank in range(plan.world_size):
        ops = [op for op in plan.by_rank(rank) if op.uid in times]
        end = max((times[op.uid][1] for op in ops), default=0.0)
        busy = sum(times[op.uid][1] - begins.get(op.uid, times[op.uid][0])
                   for op in ops if isinstance(op, Compute))
        wait = sum(by_uid[op.uid].live - times[op.uid][0]
                   for op in ops if op.uid in by_uid)
        per_rank.append({"rank": rank, "end": end, "compute_busy_s": busy,
                         "rendezvous_wait_s": wait})
    ends = [r["end"] for r in per_rank] or [0.0]
    straggler = max(range(len(ends)), key=lambda r: ends[r])
    spread = (max(ends) - min(ends)) / max(ends) if max(ends) > 0 else 0.0
    return {"per_rank": per_rank, "straggler_rank": straggler,
            "end_spread_frac": spread}


# -- what-if: rescale one category and re-time -------------------------------

def _scalable(op, bucket: str) -> bool:
    """Whether ``scale_plan(bucket)`` changes this op at all."""
    if bucket == "compute":
        return isinstance(op, Compute) and (op.flops > 0
                                            or op.hbm_bytes > 0)
    if bucket == "comm":
        return isinstance(op, (Collective, P2PCopy)) and op.bytes > 0
    if bucket == "copy":
        return isinstance(op, (H2DCopy, D2HCopy)) and op.bytes > 0
    if bucket == "storage":
        return isinstance(op, (StorageRead, StorageWrite)) \
            and op.bytes > 0
    if bucket == "framework":
        return isinstance(op, Delay) and op.elapsed_fraction > 0
    raise PlanError(f"unknown scale bucket {bucket!r}; "
                    f"one of {SCALE_BUCKETS}")


def scale_plan(plan: StepPlan, bucket: str, factor: float) -> StepPlan:
    """A copy of ``plan`` with one cost category rescaled by ``factor``.

    ``compute`` scales kernel FLOPs/HBM traffic but *not* fixed delays:
    DDP's bucket-readiness gates are compile-time constants mirroring
    the backward schedule, so the compute what-if is a kernel-speed
    ceiling under the compiled overlap schedule, not a recompilation.
    Conservation metadata is recomputed so the scaled plan revalidates.
    """
    if factor < 0:
        raise PlanError(f"scale factor must be >= 0, got {factor}")
    ops = []
    for op in plan:
        if not _scalable(op, bucket):
            ops.append(op)
        elif bucket == "compute":
            ops.append(dataclasses.replace(
                op, flops=op.flops * factor,
                hbm_bytes=op.hbm_bytes * factor))
        elif bucket == "framework":
            ops.append(dataclasses.replace(
                op, seconds=op.seconds * factor,
                elapsed_fraction=op.elapsed_fraction * factor))
        else:
            ops.append(dataclasses.replace(op, bytes=op.bytes * factor))
    meta = dict(plan.meta)
    declared = meta.get("conservation")
    if declared:
        totals: dict = {payload: 0.0 for payload in declared}
        for op in ops:
            if op.payload in totals:
                totals[op.payload] += op.bytes
        meta["conservation"] = totals
    return StepPlan(f"{plan.name}~{bucket}x{factor:g}", plan.world_size,
                    ops, meta)


def relaxation_is_exact(plan: StepPlan, bucket: str,
                        factor: float) -> bool:
    """Whether :func:`predict_scaled_timing` provably reproduces the
    engines on this (plan, bucket, factor).

    The relaxation replays the DAG with *measured* durations for every
    unscaled op.  That is exact when the rescaling shifts those ops
    rigidly (or removes flows without changing survivors' sharing):

    - ``factor == 1`` is the identity;
    - a bucket with nothing to scale is the identity;
    - zeroing ``comm``/``copy``/``storage`` removes that bucket's fabric
      flows — exact unless *another* bucket's flows shared links with
      them (their measured durations would embed vanished contention);
    - zeroing ``compute`` shifts every downstream launch uniformly when
      collectives are the only fabric users, preserving their overlap
      pattern bit-for-bit; interleaved point-to-point sends (pipeline
      parallelism) re-stagger instead, so that case is not exact;
    - partial factors rescale flow sizes, which perturbs the fluid
      water-filling solution nonlinearly — never certified.
    """
    if factor == 1.0:
        return True
    if not any(_scalable(op, bucket) for op in plan):
        return True
    if factor != 0.0:
        return False
    flow_buckets = set()
    world = plan.world_size
    for op in plan:
        if isinstance(op, Collective) and op.bytes > 0 and world > 1:
            flow_buckets.add("comm")
        elif isinstance(op, P2PCopy) and op.bytes > 0:
            flow_buckets.add("comm")
        elif isinstance(op, (H2DCopy, D2HCopy)) and op.bytes > 0:
            flow_buckets.add("copy")
        elif isinstance(op, (StorageRead, StorageWrite)) and op.bytes > 0:
            flow_buckets.add("storage")
    if bucket == "compute":
        return not any(isinstance(op, P2PCopy) and op.bytes > 0
                       for op in plan)
    if bucket == "framework":
        dependents = {dep for op in plan for dep in op.deps}
        terminal = all(op.uid not in dependents for op in plan
                       if _scalable(op, "framework"))
        return terminal or not flow_buckets
    return flow_buckets <= {bucket}


class _DurationModel:
    """Measured-duration oracle shared by the what-if replays.

    Precomputes the per-op *exclusive* durations from one base timing
    (stream admission and rendezvous grouping reconstructed from the
    measured times) and answers "how long does this op run under the
    rescaled bucket" — the full and incremental replays only differ in
    *which* ops they re-time, never in how long an op takes.
    """

    def __init__(self, plan: StepPlan, base: PlanTiming,
                 ctx: ExecutionContext, bucket: str, factor: float):
        if bucket not in SCALE_BUCKETS:
            raise PlanError(f"unknown scale bucket {bucket!r}; "
                            f"one of {SCALE_BUCKETS}")
        self.plan = plan
        self.ctx = ctx
        self.bucket = bucket
        self.factor = factor
        self.times = _times_of(base)
        self.begins, _prevs = _stream_begins(plan, self.times)
        base_groups, _by_uid = _rendezvous_groups(plan, self.times)
        self.group_by_members = {frozenset(g.uids.values()): g
                                 for g in base_groups}
        self.world = ctx.comm.world_size if ctx.comm is not None \
            else plan.world_size

    def exec_duration(self, op) -> float:
        start, end = self.times[op.uid]
        dur = end - self.begins.get(op.uid, start)
        if self.bucket == "compute" and _scalable(op, "compute"):
            dur *= self.factor
        return dur

    def _scaled_fixed(self, measured: float, fixed: float) -> float:
        fixed = min(fixed, measured)
        return fixed + self.factor * (measured - fixed)

    def transfer_duration(self, op) -> float:
        measured = self.times[op.uid][1] - self.times[op.uid][0]
        if not _scalable(op, self.bucket) \
                or self.bucket not in ("comm", "copy") \
                or _op_bucket(op) != self.bucket:
            return measured
        src, dst = _transfer_endpoints(op, self.ctx)
        route = self.ctx.topology.route(src, dst)
        return self._scaled_fixed(measured,
                                  self.ctx.topology.transfer_overhead
                                  + route.latency)

    def storage_duration(self, op) -> float:
        measured = self.times[op.uid][1] - self.times[op.uid][0]
        if self.bucket != "storage" or not _scalable(op, "storage"):
            return measured
        ctx = self.ctx
        spec = ctx.storage.spec
        latency = spec.read_latency if isinstance(op, StorageRead) \
            else spec.write_latency
        src = ctx.storage.media_node if isinstance(op, StorageRead) \
            else ctx.host_node
        dst = ctx.host_node if isinstance(op, StorageRead) \
            else ctx.storage.media_node
        route = ctx.topology.route(src, dst)
        return self._scaled_fixed(measured,
                                  latency + ctx.topology.transfer_overhead
                                  + route.latency)

    def delay_params(self, op) -> tuple:
        seconds, fraction = op.seconds, op.elapsed_fraction
        if self.bucket == "framework" and _scalable(op, "framework"):
            seconds, fraction = seconds * self.factor, \
                fraction * self.factor
        return seconds, fraction

    def group_duration(self, members: frozenset, rep) -> float:
        group = self.group_by_members.get(members)
        measured = group.duration if group is not None else 0.0
        gkey = getattr(rep, "group", None)
        member_idx = list(range(self.world)) if gkey is None \
            else list(gkey)
        n = len(member_idx)
        if isinstance(rep, Barrier) or self.bucket != "comm" \
                or not _scalable(rep, "comm") or n < 2:
            return measured
        if self.factor == 0.0:
            return 0.0  # the engines short-circuit zero-byte groups
        topo = self.ctx.topology
        kind = _COMM_KIND.get(rep.comm, rep.comm)
        phases = _RING[kind](n) if kind in _RING else 1
        all_ranks = self.ctx.comm.ranks if self.ctx.comm is not None \
            else None
        if all_ranks is None:
            return measured
        ranks = [all_ranks[i] for i in member_idx]
        if kind in _RING:
            pairs = [(ranks[i], ranks[(i + 1) % n])
                     for i in range(n)]
        else:
            root = member_idx.index(rep.root) if rep.root is not None \
                else 0
            others = [i for i in range(n) if i != root]
            pairs = [(ranks[root], ranks[i]) for i in others] \
                if kind == "broadcast" \
                else [(ranks[i], ranks[root]) for i in others]
        lat = max((topo.route(s, d).latency for s, d in pairs),
                  default=0.0)
        return self._scaled_fixed(measured,
                                  phases * (topo.transfer_overhead + lat))


def _retime(plan: StepPlan, model: _DurationModel,
            cone: Optional[frozenset] = None):
    """Event-driven replay of the measured schedule over ``cone``.

    With ``cone=None`` every op is re-timed (the full relaxation).
    Otherwise only cone members are replayed: a clean dependency
    contributes its *base* end time to a dirty op's readiness, each
    rank's stream cursor starts where its clean prefix left off, and
    per-(communicator, rank) join numbering starts after the clean
    prefix of rendezvous instances.

    Returns ``(out, violations)`` — the re-timed spans, plus the seed
    sets to add if a dirty event was observed moving *before* the clean
    frontier it was assumed to follow (the detect-and-expand guard;
    always empty for the full replay).
    """
    times = model.times
    all_uids = {op.uid for op in plan}
    cone_set = all_uids if cone is None else set(cone)
    clean = all_uids - cone_set

    # Clean frontiers the guard checks against: the latest base ready
    # time among a rank's clean computes, and the latest base arrival
    # among a (communicator, rank)'s clean joins.
    stream_free: dict = {}
    last_clean_ready: dict = {}
    clean_joins: dict = {}
    last_clean_join: dict = {}
    for op in plan:
        if op.uid not in clean:
            continue
        if isinstance(op, Compute):
            start, end = times[op.uid]
            rank = op.rank
            stream_free[rank] = max(stream_free.get(rank, 0.0), end)
            last_clean_ready[rank] = max(last_clean_ready.get(rank, 0.0),
                                         start)
        elif isinstance(op, (Collective, Barrier)):
            key = (getattr(op, "group", None), op.rank)
            clean_joins[key] = clean_joins.get(key, 0) + 1
            last_clean_join[key] = max(last_clean_join.get(key, 0.0),
                                       times[op.uid][0])

    indegree: dict = {}
    dependents: dict = {uid: [] for uid in cone_set}
    ready_at: dict = {}
    for op in plan:
        if op.uid not in cone_set:
            continue
        count = 0
        for dep in op.deps:
            if dep in cone_set:
                count += 1
                dependents[dep].append(op)
            else:
                ready_at[op.uid] = max(ready_at.get(op.uid, 0.0),
                                       times[dep][1])
        indegree[op.uid] = count

    heap: list = []
    seq = 0

    def push(t, op):
        nonlocal seq
        seq += 1
        heappush(heap, (t, seq, op))

    for rank in range(plan.world_size):
        for op in plan.by_rank(rank):
            if op.uid in cone_set and indegree[op.uid] == 0:
                push(ready_at.get(op.uid, 0.0), op)

    out: dict = {}
    join_seq: dict = dict(clean_joins)
    open_groups: dict = {}
    violations: set = set()

    def moved_before(t, frontier_key, frontier, op):
        # A dirty event may not overtake the clean frontier it was
        # ordered after in the base schedule; an unchanged time is by
        # definition in its base position.
        return frontier_key in frontier and t <= frontier[frontier_key] \
            and t != times[op.uid][0]

    def finish(op, start, end):
        out[op.uid] = (start, end)
        for dep in dependents[op.uid]:
            ready_at[dep.uid] = max(ready_at.get(dep.uid, 0.0), end)
            indegree[dep.uid] -= 1
            if indegree[dep.uid] == 0:
                push(ready_at[dep.uid], dep)

    while heap:
        t, _seq, op = heappop(heap)
        if isinstance(op, Compute):
            if moved_before(t, op.rank, last_clean_ready, op):
                violations.add(("stream", op.rank))
            begin = max(t, stream_free.get(op.rank, 0.0))
            end = begin + model.exec_duration(op)
            stream_free[op.rank] = end
            finish(op, t, end)
        elif isinstance(op, (Collective, Barrier)):
            gkey = getattr(op, "group", None)
            if moved_before(t, (gkey, op.rank), last_clean_join, op):
                violations.add(("join", gkey, op.rank))
            expected = plan.world_size if gkey is None else len(gkey)
            opid = join_seq.get((gkey, op.rank), 0)
            join_seq[(gkey, op.rank)] = opid + 1
            group = open_groups.setdefault((gkey, opid), {})
            group[op.rank] = (op, t)
            if len(group) == expected:
                del open_groups[(gkey, opid)]
                live = max(arr for _op, arr in group.values())
                members = frozenset(m.uid for m, _t in group.values())
                end = live + model.group_duration(members, op)
                for member, arrival in group.values():
                    finish(member, arrival, end)
        elif isinstance(op, (H2DCopy, D2HCopy, P2PCopy)):
            finish(op, t, t + model.transfer_duration(op))
        elif isinstance(op, (StorageRead, StorageWrite)):
            finish(op, t, t + model.storage_duration(op))
        elif isinstance(op, Delay):
            seconds, fraction = model.delay_params(op)
            finish(op, t, t + seconds + fraction * t)
        else:  # pragma: no cover - taxonomy is closed
            raise PlanError(f"cannot replay op kind {op.kind!r}")
    if len(out) != len(cone_set):
        raise PlanError(
            f"what-if replay stalled: {len(cone_set) - len(out)} op(s) "
            "never became ready (asymmetric rendezvous?)")
    return out, violations


def predict_scaled_timing(plan: StepPlan, base: PlanTiming,
                          ctx: ExecutionContext, bucket: str,
                          factor: float) -> PlanTiming:
    """Re-time the plan with one category's measured durations rescaled.

    An event-driven topological replay of the measured schedule: every
    op keeps its measured exclusive duration except the scaled bucket,
    whose durations become ``fixed + factor * (measured - fixed)`` (the
    fixed part being latencies/overheads that do not scale with bytes).
    GPU stream FIFOs and rendezvous grouping are re-derived, so slack
    created (or consumed) by the rescaling propagates exactly through
    the DAG.  ``base`` must be a plan-relative timing (starts at 0).
    """
    model = _DurationModel(plan, base, ctx, bucket, factor)
    out, _violations = _retime(plan, model, cone=None)
    makespan = max((end for _s, end in out.values()), default=0.0)
    return PlanTiming(mode="predicted", op_times=out, makespan=makespan)


def dirty_cone(plan: StepPlan, base, seeds) -> frozenset:
    """Ops whose times may change when ``seeds``' durations change.

    The closure over the three edge kinds that carry timing influence
    in the measured-schedule replay — the what-if analogue of PR 8's
    component-independence argument for the max-min solver (an op
    outside every influence path of the perturbation keeps its time):

    - **DAG edges** — dependents of a dirty op are dirty (readiness is
      a max over dependency ends);
    - **stream suffix** — every compute at-or-after the first dirty
      compute in a rank's base admission order is dirty (the FIFO
      cursor threads their begins together); ties are taken dirty;
    - **rendezvous hyperedges** — if any member of a base rendezvous
      instance is dirty all members are (the group ends together), and
      on each member rank every later join on the same communicator is
      dirty (instance numbering shifts with arrival order).

    Conversely a clean op's readiness inputs, stream predecessors, and
    rendezvous peers are all clean, so by induction over base event
    order its replayed times equal its base times exactly — re-timing
    the cone alone reproduces the full relaxation.  The one assumption
    is that dirty events do not *overtake* the clean frontier (a dirty
    compute becoming ready before a clean one admitted earlier would
    reorder the FIFO); :func:`retime_incremental` guards exactly that
    and expands the cone when it trips.
    """
    times = _times_of(base)
    begins, _prevs = _stream_begins(plan, times)
    _groups, by_uid = _rendezvous_groups(plan, times)
    instance_members: dict = {}
    for g in _groups:
        members = tuple(g.uids.values())
        for uid in members:
            instance_members[uid] = members

    streams: dict = {}
    joins: dict = {}
    dependents: dict = {op.uid: [] for op in plan}
    ops_by_uid = {op.uid: op for op in plan}
    for op in plan:
        for dep in op.deps:
            dependents[dep].append(op.uid)
        if isinstance(op, Compute):
            begin = begins.get(op.uid, times[op.uid][0])
            streams.setdefault(op.rank, []).append((begin, op.uid))
        elif isinstance(op, (Collective, Barrier)):
            key = (getattr(op, "group", None), op.rank)
            joins.setdefault(key, []).append((times[op.uid][0], op.uid))

    dirty = set()
    work = [uid for uid in seeds if uid in ops_by_uid]
    while work:
        uid = work.pop()
        if uid in dirty:
            continue
        dirty.add(uid)
        work.extend(d for d in dependents[uid] if d not in dirty)
        op = ops_by_uid[uid]
        if isinstance(op, Compute):
            begin = begins.get(uid, times[uid][0])
            work.extend(u for b, u in streams[op.rank]
                        if b >= begin and u not in dirty)
        elif isinstance(op, (Collective, Barrier)):
            members = instance_members.get(uid, ())
            work.extend(u for u in members if u not in dirty)
            arrival = times[uid][0]
            key = (getattr(op, "group", None), op.rank)
            work.extend(u for a, u in joins[key]
                        if a >= arrival and u not in dirty)
    return frozenset(dirty)


@dataclass
class IncrementalRetime:
    """One incremental re-timing: the merged timing plus cone stats."""

    timing: PlanTiming
    cone: frozenset
    #: Fraction of the plan's ops that were re-timed.
    cone_fraction: float
    #: Detect-and-expand rounds the guard forced (0 = cone held).
    expand_rounds: int


def retime_incremental(plan: StepPlan, base: PlanTiming,
                       ctx: ExecutionContext, bucket: str,
                       factor: float,
                       seeds=None) -> IncrementalRetime:
    """:func:`predict_scaled_timing`, re-timing only the dirty cone.

    ``seeds`` defaults to the ops the bucket rescaling actually touches
    (see ``_scalable``); pass an explicit uid set to re-time after a
    knob perturbed specific ops.  Ops outside the cone keep their base
    times verbatim; cone ops replay against the frozen clean frontier.
    If the guard observes a dirty event overtaking that frontier the
    offending rank/communicator is added to the seeds and the replay
    reruns — each round strictly grows the cone, so this terminates
    (in the worst case at the full relaxation).
    """
    model = _DurationModel(plan, base, ctx, bucket, factor)
    if seeds is None:
        seeds = set() if factor == 1.0 else \
            {op.uid for op in plan if _scalable(op, bucket)}
    seeds = set(seeds)
    times = model.times
    rounds = 0
    while True:
        cone = dirty_cone(plan, times, seeds)
        out, violations = _retime(plan, model, cone)
        if not violations:
            break
        rounds += 1
        for violation in violations:
            if violation[0] == "stream":
                seeds.update(op.uid for op in plan.by_rank(violation[1])
                             if isinstance(op, Compute))
            else:
                _kind, gkey, rank = violation
                seeds.update(op.uid for op in plan.by_rank(rank)
                             if isinstance(op, (Collective, Barrier))
                             and getattr(op, "group", None) == gkey)
    merged = {uid: (out[uid] if uid in out else span)
              for uid, span in times.items()}
    makespan = max((end for _s, end in merged.values()), default=0.0)
    timing = PlanTiming(mode="predicted", op_times=merged,
                        makespan=makespan)
    n_ops = len(plan.ops) or 1
    return IncrementalRetime(timing=timing, cone=cone,
                             cone_fraction=len(cone) / n_ops,
                             expand_rounds=rounds)


@dataclass
class WhatIf:
    """One what-if cell: category ``bucket`` rescaled by ``factor``."""

    bucket: str
    factor: float
    base_makespan: float
    predicted_makespan: float
    #: ``relaxation`` | ``fastpath-epsilon`` | ``identity``.
    method: str
    #: Whether the prediction provably equals an engine re-evaluation.
    predicted_exact: bool
    #: Amdahl bound: base minus the bucket's critical-path seconds.
    amdahl_makespan: Optional[float] = None
    evaluated_makespan: Optional[float] = None
    evaluated_mode: Optional[str] = None

    @staticmethod
    def _ceiling(base: float, new: Optional[float]) -> Optional[float]:
        if new is None:
            return None
        if new <= 0:
            return float("inf") if base > 0 else 1.0
        return base / new

    @property
    def predicted_ceiling(self) -> float:
        return self._ceiling(self.base_makespan, self.predicted_makespan)

    @property
    def amdahl_ceiling(self) -> Optional[float]:
        return self._ceiling(self.base_makespan, self.amdahl_makespan)

    @property
    def evaluated_ceiling(self) -> Optional[float]:
        return self._ceiling(self.base_makespan, self.evaluated_makespan)

    def as_dict(self) -> dict:
        return {
            "bucket": self.bucket, "factor": self.factor,
            "base_makespan_s": self.base_makespan,
            "predicted_makespan_s": self.predicted_makespan,
            "predicted_ceiling": self.predicted_ceiling,
            "method": self.method,
            "predicted_exact": self.predicted_exact,
            "amdahl_ceiling": self.amdahl_ceiling,
            "evaluated_makespan_s": self.evaluated_makespan,
            "evaluated_ceiling": self.evaluated_ceiling,
            "evaluated_mode": self.evaluated_mode,
        }


def what_if(plan: StepPlan, base: PlanTiming, ctx: ExecutionContext,
            bucket: str, factor: float = 0.0,
            cp_attr: Optional[Attribution] = None,
            evaluate: bool = False,
            evaluate_ctx: Optional[ExecutionContext] = None) -> WhatIf:
    """Speedup ceiling if ``bucket``'s cost were ``factor`` of measured.

    The *predicted* leg replays the measured schedule (see
    :func:`predict_scaled_timing`); where the relaxation is provably
    inexact it escalates to a pure fast-path probe of the rescaled plan
    at an epsilon-perturbed factor (exact zeros create FIFO ties the
    engines refuse).  The *evaluated* leg — enabled by ``evaluate`` —
    re-runs the rescaled plan through :func:`evaluate_plan`; pass a
    throwaway ``evaluate_ctx`` because the executor fallback advances
    the environment and device state.
    """
    exact = relaxation_is_exact(plan, bucket, factor)
    if not any(_scalable(op, bucket) for op in plan):
        predicted = base.makespan
        method = "identity"
    else:
        # The incremental replay reproduces the full relaxation (see
        # dirty_cone) while touching only the perturbed cone.
        predicted = retime_incremental(plan, base, ctx, bucket,
                                       factor).timing.makespan
        method = "relaxation"
        if not exact:
            probe_factor = factor if factor > 0 else _EPSILON_FACTOR
            try:
                probe_ctx = ExecutionContext(
                    env=ctx.env, comm=ctx.comm, gpus=ctx.gpus,
                    topology=ctx.topology, host_node=ctx.host_node,
                    storage=ctx.storage, jitter=ctx.jitter)
                predicted = _Engine(scale_plan(plan, bucket,
                                               probe_factor),
                                    probe_ctx).run().makespan
                method = "fastpath-epsilon"
            except Exception:
                pass  # keep the relaxation estimate
    amdahl = None
    if cp_attr is not None:
        on_path = cp_attr.seconds.get(bucket, 0.0) \
            + cp_attr.contention_by_source.get(bucket, 0.0)
        amdahl = max(base.makespan - (1.0 - factor) * on_path, 0.0)
    result = WhatIf(bucket=bucket, factor=factor,
                    base_makespan=base.makespan,
                    predicted_makespan=predicted, method=method,
                    predicted_exact=exact or method == "fastpath-epsilon",
                    amdahl_makespan=amdahl)
    if evaluate:
        from ..plan.fastpath import evaluate_plan
        scaled = scale_plan(plan, bucket, factor)
        timing = evaluate_plan(scaled, evaluate_ctx or ctx, mode="auto")
        result.evaluated_makespan = timing.makespan
        result.evaluated_mode = timing.mode
    return result


# -- plan-level profile ------------------------------------------------------

@dataclass
class PlanProfile:
    """Everything the profiler derives from one evaluated plan."""

    plan_name: str
    world_size: int
    makespan: float
    path: CriticalPath
    attr: Attribution
    label: str
    shares: dict
    utilization: dict
    imbalance: dict
    #: Collective/P2P seconds hidden under compute (total minus exposed).
    overlapped_comm_s: float

    def as_dict(self) -> dict:
        return {
            "plan": self.plan_name, "world_size": self.world_size,
            "makespan_s": self.makespan, "label": self.label,
            "shares": self.shares,
            "attribution": self.attr.as_dict(),
            "overlapped_comm_s": self.overlapped_comm_s,
            "utilization": self.utilization,
            "imbalance": self.imbalance,
        }


def _total_comm_seconds(plan, times, groups) -> float:
    total = sum(g.duration for g in groups if not g.barrier)
    total += sum(times[op.uid][1] - times[op.uid][0] for op in plan
                 if isinstance(op, P2PCopy) and op.uid in times)
    return total


def profile_plan(plan: StepPlan, timing=None,
                 ctx: Optional[ExecutionContext] = None,
                 probe_cache: Optional[dict] = None) -> PlanProfile:
    """Profile one plan: critical path, attribution, label, utilization.

    ``timing`` defaults to a fresh fast-path/auto evaluation (requires
    ``ctx``); pass an existing :class:`PlanTiming` to profile times you
    already have.
    """
    if timing is None:
        if ctx is None:
            raise PlanError("profile_plan needs a timing or a context")
        from ..plan.fastpath import evaluate_plan
        timing = evaluate_plan(plan, ctx, mode="auto")
    times = _times_of(timing)
    path = critical_path(plan, timing, ctx=ctx, probe_cache=probe_cache)
    attr = attribution(path)
    label, shares = bottleneck_label(attr)
    groups, _by_uid = _rendezvous_groups(plan, times)
    exposed = attr.seconds.get("comm", 0.0) \
        + attr.contention_by_source.get("comm", 0.0)
    overlapped = max(_total_comm_seconds(plan, times, groups) - exposed,
                     0.0)
    makespan = timing.makespan if isinstance(timing, PlanTiming) \
        else max((e for _s, e in times.values()), default=0.0)
    return PlanProfile(
        plan_name=plan.name, world_size=plan.world_size,
        makespan=makespan, path=path, attr=attr, label=label,
        shares=shares,
        utilization=utilization(plan, timing, ctx=ctx),
        imbalance=imbalance(plan, timing),
        overlapped_comm_s=overlapped)


# -- run-level profile (a live TrainingJob) ----------------------------------

@dataclass
class WindowProfile:
    """One profiled wall-clock window (an optimizer step or checkpoint)."""

    index: int
    start: float
    end: float
    path: CriticalPath
    attr: Attribution

    @property
    def wall(self) -> float:
        return self.end - self.start


@dataclass
class RunProfile:
    """A full training run, profiled step by step against its result."""

    result: object
    steps: list
    checkpoints: list
    #: Mean per-category seconds over steady-state steps.
    steady_attr: Attribution
    label: str
    shares: dict
    utilization: dict
    imbalance: dict
    reconstructed_total_s: float = 0.0
    reconciliation_rel_err: float = 0.0

    def as_dict(self) -> dict:
        return {
            "steps_profiled": len(self.steps),
            "checkpoints_profiled": len(self.checkpoints),
            "label": self.label, "shares": self.shares,
            "steady_attribution": self.steady_attr.as_dict(),
            "reported_total_s": self.result.total_time,
            "reconstructed_total_s": self.reconstructed_total_s,
            "reconciliation_rel_err": self.reconciliation_rel_err,
            "utilization": self.utilization,
            "imbalance": self.imbalance,
        }


def _mean_attribution(windows: list) -> Attribution:
    """Average per-category seconds across windows (same-width mean)."""
    if not windows:
        return Attribution({}, {}, (0.0, 0.0))
    n = len(windows)
    seconds: dict = {}
    contention: dict = {}
    for w in windows:
        for cat, s in w.attr.seconds.items():
            seconds[cat] = seconds.get(cat, 0.0) + s / n
        for src, s in w.attr.contention_by_source.items():
            contention[src] = contention.get(src, 0.0) + s / n
    wall = sum(w.wall for w in windows) / n
    return Attribution(seconds, contention, (0.0, wall))


def profile_run(job, sink_rank: int = 0) -> RunProfile:
    """Run a :class:`~repro.training.loop.TrainingJob` under the profiler.

    Hooks the executor's completion callback to capture every plan
    execution's absolute op times, runs the job, then tiles each
    measured step window (rank 0's wall clock, data wait included) and
    checkpoint window with critical-path segments.  The reconstructed
    total — steady-step means pushed through the ``TrainingResult``
    extrapolation formula — reconciles with ``result.total_time`` by
    construction; the relative error is recorded on the profile.

    The job must not have been started yet; its ``on_plan_done`` hook
    and a step listener are installed by this call.
    """
    import numpy as np

    from ..training.loop import WARMUP_STEPS

    captures: list = []
    step_ends: list = []
    job._exec_ctx.on_plan_done = lambda execution: captures.append(
        (execution.plan, dict(execution._times)))
    job.add_step_listener(lambda _n, now: step_ends.append(now))
    result = job.run()

    ctx = job._exec_ctx
    probe_cache: dict = {}
    step_caps = [c for c in captures if c[0].name != "checkpoint"]
    ckpt_caps = [c for c in captures if c[0].name == "checkpoint"]

    steps: list = []
    for i, (plan, times) in enumerate(step_caps[:len(step_ends)]):
        end = step_ends[i]
        start = end - job.step_times[i]
        rank_ops = [op.uid for op in plan.by_rank(sink_rank)
                    if op.uid in times]
        sink = max(rank_ops, key=lambda uid: times[uid][1]) \
            if rank_ops else None
        root_op_rank: dict = {op.uid: op.rank for op in plan}
        path = critical_path(plan, times, ctx=ctx, window=(start, end),
                             sink_uid=sink, gap_category="data-wait",
                             probe_cache=probe_cache)
        if path.root_uid is not None and \
                root_op_rank.get(path.root_uid) not in job._input_ranks:
            path = dataclasses.replace(path, segments=[
                dataclasses.replace(s, category="stall")
                if s.category == "data-wait" else s
                for s in path.segments])
        steps.append(WindowProfile(i, start, end, path,
                                   attribution(path)))

    checkpoints: list = []
    for i, (plan, times) in enumerate(ckpt_caps[:len(job._ckpt_spans)]):
        start, end = job._ckpt_spans[i]
        write = [uid for uid in times if "ckpt-write" in uid]
        sink = write[0] if write else None
        path = critical_path(plan, times, ctx=ctx, window=(start, end),
                             sink_uid=sink, probe_cache=probe_cache)
        checkpoints.append(WindowProfile(i, start, end, path,
                                         attribution(path)))

    steady = steps[WARMUP_STEPS:] or steps
    steady_attr = _mean_attribution(steady)
    label, shares = bottleneck_label(steady_attr)

    # Reconcile: push the profiler's per-window walls through the exact
    # TrainingResult extrapolation formula.
    step_walls = [sum(s.duration for s in w.path.segments)
                  for w in steps]
    steady_walls = step_walls[WARMUP_STEPS:] or step_walls
    step_mean = float(np.mean(steady_walls)) if steady_walls else 0.0
    ckpt_walls = [sum(s.duration for s in w.path.segments)
                  for w in checkpoints]
    ckpt_mean = float(np.mean(ckpt_walls)) if ckpt_walls else 0.0
    reconstructed = result.epochs * (
        result.steps_per_epoch * step_mean
        + result.checkpoints_per_epoch * ckpt_mean) \
        + result.staging_overhead
    rel_err = abs(reconstructed - result.total_time) \
        / result.total_time if result.total_time else 0.0

    last = steps[-1] if steps else None
    util = utilization(step_caps[len(steps) - 1][0],
                       step_caps[len(steps) - 1][1], ctx=ctx,
                       window=(last.start, last.end)) if steps else {}
    imb = imbalance(step_caps[len(steps) - 1][0],
                    step_caps[len(steps) - 1][1]) if steps else {}
    return RunProfile(result=result, steps=steps,
                      checkpoints=checkpoints, steady_attr=steady_attr,
                      label=label, shares=shares, utilization=util,
                      imbalance=imb, reconstructed_total_s=reconstructed,
                      reconciliation_rel_err=rel_err)


# -- the bottleneck report ---------------------------------------------------

@dataclass
class BottleneckReport:
    """The profiler's verdict for one benchmark x strategy x backend cell."""

    benchmark: str
    strategy: str
    configuration: str
    world_size: int
    label: str
    shares: dict
    plan_profile: Optional[PlanProfile] = None
    run_profile: Optional[RunProfile] = None
    what_ifs: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out = {
            "benchmark": self.benchmark,
            "strategy": self.strategy,
            "configuration": self.configuration,
            "world_size": self.world_size,
            "label": self.label,
            "shares": self.shares,
            "what_ifs": [w.as_dict() for w in self.what_ifs],
            "meta": dict(self.meta),
        }
        if self.plan_profile is not None:
            out["plan"] = self.plan_profile.as_dict()
        if self.run_profile is not None:
            out["run"] = self.run_profile.as_dict()
        return out

    # -- rendering --------------------------------------------------------
    def render_text(self) -> str:
        lines = [
            f"bottleneck report: {self.benchmark} / {self.strategy} "
            f"on {self.configuration} (world={self.world_size})",
            f"verdict: {self.label}  "
            + "  ".join(f"{k}={v:.1%}"
                        for k, v in sorted(self.shares.items())),
        ]
        attr = None
        if self.run_profile is not None:
            attr = self.run_profile.steady_attr
        elif self.plan_profile is not None:
            attr = self.plan_profile.attr
        if attr is not None:
            lines.append("")
            lines.append("critical-path attribution (per step):")
            wall = attr.total or 1.0
            for cat in ATTRIBUTION_CATEGORIES:
                s = attr.seconds.get(cat, 0.0)
                if s <= 0:
                    continue
                bar = "#" * max(1, int(round(40 * s / wall)))
                lines.append(f"  {cat:<11} {s * 1e3:>9.3f} ms "
                             f"{s / wall:>6.1%}  {bar}")
            lines.append(f"  {'total':<11} {wall * 1e3:>9.3f} ms")
        if self.run_profile is not None:
            rp = self.run_profile
            lines.append("")
            lines.append(
                f"reconciliation: reported total "
                f"{rp.result.total_time:.6g} s, reconstructed "
                f"{rp.reconstructed_total_s:.6g} s "
                f"(rel err {rp.reconciliation_rel_err:.2e})")
        if self.what_ifs:
            lines.append("")
            lines.append("what-if speedup ceilings (category -> 0 cost):")
            lines.append(f"  {'bucket':<11} {'predicted':>10} "
                         f"{'evaluated':>10} {'amdahl':>8}  method")
            for w in self.what_ifs:
                ev = f"{w.evaluated_ceiling:.3f}x" \
                    if w.evaluated_ceiling is not None else "-"
                am = f"{w.amdahl_ceiling:.3f}x" \
                    if w.amdahl_ceiling is not None else "-"
                lines.append(
                    f"  {w.bucket:<11} {w.predicted_ceiling:>9.3f}x "
                    f"{ev:>10} {am:>8}  {w.method}"
                    + ("" if w.predicted_exact else " (approx)"))
        profile = self.plan_profile
        if profile is not None and profile.utilization:
            lines.append("")
            lines.append("resource utilization (plan window):")
            rows = sorted(profile.utilization.items(),
                          key=lambda kv: -kv[1]["busy_frac"])[:8]
            for name, stats in rows:
                lines.append(
                    f"  {name:<28} busy {stats['busy_frac']:>6.1%}"
                    f"  contended {stats['contended_s'] * 1e3:.3f} ms")
        imb = None
        if profile is not None:
            imb = profile.imbalance
        elif self.run_profile is not None:
            imb = self.run_profile.imbalance
        if imb and imb.get("per_rank"):
            lines.append(
                f"straggler: rank {imb['straggler_rank']} "
                f"(end spread {imb['end_spread_frac']:.2%})")
        return "\n".join(lines)

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)
