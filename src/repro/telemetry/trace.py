"""Sim-time span tracer (the Nsight Systems / torch-profiler stand-in).

A :class:`Tracer` records *spans* — named intervals of simulated time with
a category and key-value attributes — and *instant events* on named
:class:`Track` s.  Tracks mirror the Chrome ``trace_event`` model: a
``process`` (one per host, plus synthetic processes like ``"comm"`` and
``"fabric"``) and a ``thread`` (one per GPU, collective lane, or transfer
lane), so an exported trace opens directly in Perfetto / ``chrome://tracing``
with one swimlane per concurrent activity.

Design constraints, in order:

1. **Cheap when off.**  Hot paths (per-chunk collective rounds, per-kernel
   phases, per-transfer flows) call the tracer unconditionally; the shared
   :data:`NULL_TRACER` makes every call a no-op attribute hit, so untraced
   runs pay nothing measurable.
2. **Well-formed by construction.**  Spans on one track must nest or be
   disjoint (Perfetto renders anything else as garbage).  The tracer keeps
   a per-track open stack and forgives out-of-order closes by closing
   descendants at the same timestamp — an arbitrary open/close sequence
   still exports a valid trace (property-tested).
3. **Concurrency via lanes.**  Activities that genuinely overlap (bucketed
   allreduce ops, fluid-flow transfers) each borrow a numbered *lane*
   track from a small free-list pool, so overlap never lands on one tid.

Spans may be used as context managers inside simulation generators — the
``with`` body's ``yield`` s advance simulated time, and the span closes at
whatever ``env.now`` the generator resumes at::

    with tracer.span("forward", Category.COMPUTE, track):
        yield gpu.compute(...)

Chaos and management events (PR 1's ``EventLog``) join the same timeline
through :meth:`Tracer.attach_event_log`, which mirrors every audit-log
record as an instant event.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

__all__ = ["Category", "Track", "Span", "Tracer", "NULL_TRACER"]


class Category(str, Enum):
    """Span taxonomy used by the flame summary / Fig. 11 attribution."""

    #: GPU kernel execution (forward/backward/optimizer) and the per-step
    #: framework overhead that scales with it.
    COMPUTE = "compute"
    #: Gradient/weight synchronization exposed on the critical path.
    COMM = "comm"
    #: Waiting with the GPU idle: input starvation, barriers, stragglers.
    STALL = "stall"
    #: Checkpoint serialization (D2H drain + storage write).
    CHECKPOINT = "checkpoint"
    #: Dataloader / host-side data movement.
    DATA = "data"
    #: Storage I/O (staging reads, checkpoint writes at the device).
    STORAGE = "storage"
    #: Individual fabric transfers (fluid flows).
    FABRIC = "fabric"
    #: Chassis / management-plane operations.
    MANAGEMENT = "management"
    #: Fault injection and recovery (chaos events).
    CHAOS = "chaos"
    #: Structural containers (step spans) and anything uncategorized.
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Track:
    """One timeline lane: (process, thread) in trace_event terms."""

    process: str
    thread: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.process}/{self.thread}"


class Span:
    """One named interval of simulated time on a track.

    Created open by :meth:`Tracer.span` / :meth:`Tracer.begin`; closed by
    :meth:`close` (or by leaving the ``with`` block).  Closing twice is a
    no-op, so forgiving teardown paths can close defensively.
    """

    __slots__ = ("tracer", "name", "category", "track", "start", "end",
                 "attrs")

    def __init__(self, tracer: "Tracer", name: str, category: Category,
                 track: Track, start: float, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)
        return self

    def close(self, at: Optional[float] = None, **attrs: Any) -> "Span":
        """End the span (idempotent); optional attrs are merged in."""
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.tracer._close(self, at)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.start:.6f}..{self.end:.6f}" if self.closed \
            else f"{self.start:.6f}.."
        return f"<Span {self.name!r} {self.category} {self.track} {state}>"


class _NullSpan:
    """Shared no-op span returned by the disabled tracer."""

    __slots__ = ()
    closed = True
    duration = 0.0

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def close(self, at: Optional[float] = None, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_TRACK = Track("null", "null")


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration timeline marker (chassis event, fault, recovery)."""

    time: float
    name: str
    category: Category
    track: Track
    attrs: dict


class Tracer:
    """Collects spans and instant events against a simulation clock."""

    def __init__(self, env: Any = None, enabled: bool = True):
        if enabled and env is None:
            raise ValueError("an enabled tracer needs an environment")
        self.env = env
        self.enabled = enabled
        #: Every span ever opened, in open order (closed in place).
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self._open: dict[Track, list[Span]] = {}
        # Lane pools: smallest free index per (process, prefix).
        self._free_lanes: dict[tuple[str, str], list[int]] = {}
        self._lane_high: dict[tuple[str, str], int] = {}

    # -- spans -------------------------------------------------------------
    def span(self, name: str, category: Category = Category.OTHER,
             track: Track = _NULL_TRACK, **attrs: Any):
        """Open a span at the current simulated time.

        Use as a context manager (closes on block exit) or keep the
        returned :class:`Span` and :meth:`Span.close` it explicitly.
        """
        if not self.enabled:
            return _NULL_SPAN
        if track is None:
            track = _NULL_TRACK
        span = Span(self, name, category, track, self.env.now, attrs)
        self.spans.append(span)
        self._open.setdefault(track, []).append(span)
        return span

    #: Alias for callers that read better with an explicit begin/close pair.
    begin = span

    def complete(self, name: str, category: Category, track: Track,
                 start: float, end: float, **attrs: Any):
        """Record an already-finished span retroactively.

        Used where a phase's true extent is only known after the fact —
        e.g. DDP's backward kernel inside the backward+allreduce overlap
        region.  The caller is responsible for keeping retroactive spans
        disjoint from other spans on the same track.
        """
        if not self.enabled:
            return _NULL_SPAN
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts "
                             f"({end} < {start})")
        span = Span(self, name, category, track, start, attrs)
        span.end = end
        self.spans.append(span)
        return span

    def _close(self, span: Span, at: Optional[float]) -> None:
        end = self.env.now if at is None else at
        if end < span.start:
            end = span.start
        stack = self._open.get(span.track)
        if stack and span in stack:
            # Forgiving stack discipline: close any still-open descendants
            # at the same instant so spans on one track always nest.
            while stack:
                top = stack.pop()
                top.end = max(end, top.start)
                if top is span:
                    break
        else:
            span.end = end

    # -- instants ----------------------------------------------------------
    def instant(self, name: str, category: Category = Category.OTHER,
                track: Track = _NULL_TRACK, time: Optional[float] = None,
                **attrs: Any) -> None:
        """Record a zero-duration marker (defaults to the current time)."""
        if not self.enabled:
            return
        when = self.env.now if time is None else time
        self.instants.append(InstantEvent(when, name, category, track,
                                          attrs))

    # -- lanes -------------------------------------------------------------
    def lane(self, process: str, prefix: str = "lane") -> Track:
        """Borrow the lowest-numbered free lane track under ``process``.

        Concurrent activities (collective ops, fluid-flow transfers) each
        take a lane so overlapping spans never share a tid; returning the
        lane via :meth:`release_lane` keeps the pool compact.
        """
        if not self.enabled:
            return _NULL_TRACK
        key = (process, prefix)
        free = self._free_lanes.setdefault(key, [])
        if free:
            index = heapq.heappop(free)
        else:
            index = self._lane_high.get(key, 0)
            self._lane_high[key] = index + 1
        return Track(process, f"{prefix}-{index}")

    def release_lane(self, track: Track) -> None:
        """Return a lane obtained from :meth:`lane` to the pool."""
        if not self.enabled or track is _NULL_TRACK:
            return
        prefix, _, index = track.thread.rpartition("-")
        if not index.isdigit():
            return
        heapq.heappush(self._free_lanes.setdefault(
            (track.process, prefix), []), int(index))

    # -- event-log bridge --------------------------------------------------
    def attach_event_log(self, log: Any,
                         process: str = "events") -> None:
        """Mirror every management/chaos audit record as an instant event.

        ``log`` is a :class:`repro.management.events.EventLog`; existing
        entries are replayed so a tracer attached mid-run still shows the
        full history, then new records stream in via the log's subscriber
        hook.  Fault-flavoured kinds are categorized as chaos so recovery
        (reattach, ring shrink) is visually distinct on the timeline.
        """
        if not self.enabled:
            return

        def mirror(event: Any) -> None:
            kind = event.kind
            category = Category.CHAOS if _is_chaos_kind(kind) \
                else Category.MANAGEMENT
            self.instant(kind, category, Track(process, event.actor),
                         time=event.time, **event.details)

        for event in log.query():
            mirror(event)
        log.subscribe(mirror)

    # -- lifecycle ---------------------------------------------------------
    def open_spans(self) -> list[Span]:
        """Spans not yet closed (mostly useful for debugging/tests)."""
        return [s for s in self.spans if not s.closed]

    def finish(self, at: Optional[float] = None) -> None:
        """Close every still-open span (e.g. after a faulted teardown)."""
        if not self.enabled:
            return
        end = self.env.now if at is None else at
        for stack in self._open.values():
            while stack:
                span = stack.pop()
                span.end = max(end, span.start)

    def clear(self) -> None:
        """Drop all recorded data (lane pools included)."""
        self.spans.clear()
        self.instants.clear()
        self._open.clear()
        self._free_lanes.clear()
        self._lane_high.clear()

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (f"<Tracer {state} spans={len(self.spans)} "
                f"instants={len(self.instants)}>")


#: Kinds recorded by the chaos/fault layer (PR 1) and the recovery runtime.
_CHAOS_KIND_MARKERS = ("fault", "fail", "chaos", "degrade", "flap",
                      "recover", "reattach", "restart", "interrupt")


def _is_chaos_kind(kind: str) -> bool:
    lowered = kind.lower()
    return any(marker in lowered for marker in _CHAOS_KIND_MARKERS)


#: Shared disabled tracer: safe to call from any hot path.
NULL_TRACER = Tracer(env=None, enabled=False)
