"""The composable system facade (paper Fig. 6's experimental topology).

:class:`ComposableSystem` assembles the full test bed in one call:

- one Supermicro host with 8 local NVLink-meshed V100s, dual NICs, a
  SATA-class scratch volume, and (on demand) a local NVMe drive;
- one Falcon 4016 with 8 PCIe V100s (four per drawer) and a 4 TB NVMe
  drive in drawer 1, both drawers cabled to the host (ports H1/H2);
- a management plane wired to the chassis event stream.

The five Table III host configurations are exposed via
:meth:`configure`, which returns the GPU set (in NCCL-friendly ring
order) and the storage device a training job should use;
:meth:`train` runs a benchmark end to end on a configuration.

Systems are cheap to construct; experiments build a fresh one per run so
traffic counters and telemetry start clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..devices import (
    GPU,
    HostServer,
    SSDPEDKX040T7,
    StorageDevice,
    SUPERMICRO_4029GP_TVRT,
    V100_PCIE_16GB,
)
from ..fabric import Falcon4016, FalconMode, RING_ORDER, Topology
from ..fabric.link import PCIE_GEN4_X4
from ..management import Inventory, ManagementCenterServer
from ..sim import Environment
from ..telemetry import MetricsCollector
from ..training import (
    AMP_POLICY,
    DistributedDataParallel,
    ParallelStrategy,
    PrecisionPolicy,
    TrainingConfig,
    TrainingJob,
    TrainingResult,
)
from ..workloads import get_benchmark
from .presets import CONFIGURATION_DESCRIPTIONS, CONFIGURATION_ORDER

__all__ = ["ComposableSystem", "ActiveConfiguration"]

#: NVLink-connected 4-cycle inside the hybrid cube mesh, used as the
#: local half of the hybridGPUs ring (0-4, 4-6, 6-2, 2-0 are all edges).
_LOCAL_QUAD = (0, 4, 6, 2)


@dataclass(frozen=True)
class ActiveConfiguration:
    """A resolved Table III configuration: devices a job should use."""

    name: str
    description: str
    gpus: tuple[GPU, ...]
    storage: StorageDevice

    @property
    def gpu_names(self) -> tuple[str, ...]:
        return tuple(g.name for g in self.gpus)


class ComposableSystem:
    """Host + Falcon 4016 test bed with Table III configurations."""

    def __init__(self, env: Optional[Environment] = None,
                 falcon_mode: FalconMode = FalconMode.STANDARD):
        self.env = env or Environment()
        self.topology = Topology(self.env)
        self.mcs = ManagementCenterServer(self.env)
        self.host = HostServer(self.env, self.topology, "host0",
                               SUPERMICRO_4029GP_TVRT)
        self.falcon = Falcon4016(self.topology, "falcon0", mode=falcon_mode,
                                 on_event=self.mcs.record_event)
        self.mcs.register_falcon(self.falcon)
        self.mcs.register_host("host0")

        # Cable both drawers to the host (paper Fig. 6).
        self.falcon.connect_host("H1", "host0", self.host.rc_node, drawer=0)
        self.falcon.connect_host("H2", "host0", self.host.rc_node, drawer=1)

        # Hot-plug inventory over the chassis (fault-recovery spares).
        self.inventory = Inventory(self.mcs, self.falcon)

        # Eight PCIe V100s, four per drawer, allocated to the host.
        self.falcon_gpus: list[GPU] = []
        for i in range(8):
            gpu = GPU(self.env, self.topology, f"falcon0/gpu{i}",
                      V100_PCIE_16GB)
            self.falcon.install_device(gpu.name, drawer=i // 4)
            self.falcon.allocate(gpu.name, "host0")
            self.inventory.register_gpu(gpu)
            self.falcon_gpus.append(gpu)
        self._next_falcon_gpu = 8

        # 4 TB NVMe in drawer 1 ("Drawer 2" in the paper's 1-based text).
        self.falcon_nvme = StorageDevice(self.env, self.topology,
                                         "falcon0/nvme", SSDPEDKX040T7)
        self.falcon.install_device(self.falcon_nvme.name, drawer=1,
                                   spec=PCIE_GEN4_X4)
        self.falcon.allocate(self.falcon_nvme.name, "host0")

        # Local NVMe for the localNVMe configuration.
        self.local_nvme = self.host.attach_nvme(SSDPEDKX040T7)

    # -- spares --------------------------------------------------------------
    def install_spare_gpu(self, drawer: int = 0) -> GPU:
        """Seat an unallocated standby V100 in the chassis.

        The spare is installed and inventory-tracked but owned by no
        host; a fault-tolerant job hot-adds it through the management
        plane when a ring GPU dies.
        """
        gpu = GPU(self.env, self.topology,
                  f"falcon0/gpu{self._next_falcon_gpu}", V100_PCIE_16GB)
        self._next_falcon_gpu += 1
        self.falcon.install_device(gpu.name, drawer=drawer)
        self.inventory.register_gpu(gpu)
        return gpu

    # -- configurations -----------------------------------------------------
    def configuration_names(self) -> tuple[str, ...]:
        return CONFIGURATION_ORDER

    def configure(self, name: str) -> ActiveConfiguration:
        """Resolve a Table III configuration to concrete devices."""
        if name not in CONFIGURATION_DESCRIPTIONS:
            raise KeyError(
                f"unknown configuration {name!r}; available: "
                f"{', '.join(CONFIGURATION_ORDER)}")
        local_ring = [self.host.gpus[i] for i in RING_ORDER]
        if name == "localGPUs":
            gpus, storage = local_ring, self.host.scratch
        elif name == "hybridGPUs":
            local_quad = [self.host.gpus[i] for i in _LOCAL_QUAD]
            gpus = local_quad + self.falcon_gpus[:4]
            storage = self.host.scratch
        elif name == "falconGPUs":
            gpus, storage = list(self.falcon_gpus), self.host.scratch
        elif name == "localNVMe":
            gpus, storage = local_ring, self.local_nvme
        else:  # falconNVMe
            gpus, storage = local_ring, self.falcon_nvme
        return ActiveConfiguration(
            name=name,
            description=CONFIGURATION_DESCRIPTIONS[name],
            gpus=tuple(gpus),
            storage=storage,
        )

    # -- training ------------------------------------------------------------
    def train(self, benchmark_key: str, configuration: str = "localGPUs",
              strategy: Optional[ParallelStrategy] = None,
              policy: PrecisionPolicy = AMP_POLICY,
              global_batch: Optional[int] = None,
              sim_steps: int = 24,
              collector: Optional[MetricsCollector] = None,
              tracer=None,
              **config_overrides) -> TrainingResult:
        """Run one benchmark on one configuration; returns the result.

        Passing a :class:`~repro.telemetry.Tracer` instruments the job
        with spans and points the fabric/storage layers at it too.
        """
        active = self.configure(configuration)
        config = TrainingConfig(
            benchmark=get_benchmark(benchmark_key),
            strategy=strategy or DistributedDataParallel(),
            policy=policy,
            global_batch=global_batch,
            sim_steps=sim_steps,
            **config_overrides,
        )
        if tracer is not None:
            self.topology.tracer = tracer
        job = TrainingJob(self.env, self.topology, self.host,
                          list(active.gpus), active.storage, config,
                          collector=collector, tracer=tracer)
        return job.run()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ComposableSystem host0 + falcon0 "
                f"({self.falcon.mode.value} mode)>")
