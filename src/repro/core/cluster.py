"""Multi-host composable cluster (paper §III and the future-work agenda).

The single-host :class:`~repro.core.ComposableSystem` reproduces the
evaluation testbed (Fig. 6); this module builds the *general* architecture
of §III — several host servers sharing one or more Falcon 4016 chassis —
and implements the paper's future-work experiments:

- **advanced mode**: up to three hosts cabled to one drawer, its eight
  devices split among them, with on-the-fly reallocation;
- **concurrent tenancy**: independent training jobs from different hosts
  running simultaneously over the shared fabric, so cross-tenant
  interference (shared host ports, drawer switches) is measurable;
- **dynamic reconfiguration**: move GPUs between hosts mid-campaign and
  quantify the reconfiguration cost against the throughput gained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..devices import (
    GPU,
    HostServer,
    HostSpec,
    SSDPEDKX040T7,
    StorageDevice,
    SUPERMICRO_4029GP_TVRT,
    V100_PCIE_16GB,
)
from ..fabric import Falcon4016, FalconMode, Topology
from ..fabric.link import PCIE_GEN4_X4
from ..management import ManagementCenterServer
from ..sim import Environment
from ..training import (
    AMP_POLICY,
    DistributedDataParallel,
    ParallelStrategy,
    PrecisionPolicy,
    TrainingConfig,
    TrainingJob,
    TrainingResult,
)
from ..workloads import get_benchmark

__all__ = ["ComposableCluster", "JobSpec", "HOTPLUG_SECONDS"]

#: Simulated PCIe hot-plug latency for a device attach/detach: surprise
#: link-down, re-enumeration, and driver bring-up on the new host.
HOTPLUG_SECONDS = 4.0


@dataclass(frozen=True)
class JobSpec:
    """One tenant's training job in a concurrent-sharing experiment."""

    host_index: int
    benchmark: str
    gpus: tuple[str, ...]
    strategy: Optional[ParallelStrategy] = None
    policy: PrecisionPolicy = AMP_POLICY
    global_batch: Optional[int] = None
    sim_steps: int = 8


class ComposableCluster:
    """Several hosts sharing Falcon chassis, with tenancy helpers."""

    def __init__(self, env: Optional[Environment] = None, hosts: int = 3,
                 mode: FalconMode = FalconMode.ADVANCED,
                 host_spec: HostSpec = SUPERMICRO_4029GP_TVRT):
        if not 1 <= hosts <= 4:
            raise ValueError("a Falcon 4016 has four host ports")
        self.env = env or Environment()
        self.topology = Topology(self.env)
        self.mcs = ManagementCenterServer(self.env)
        self.hosts: list[HostServer] = []
        for i in range(hosts):
            host = HostServer(self.env, self.topology, f"host{i}",
                              host_spec)
            self.hosts.append(host)
            self.mcs.register_host(host.name)

        self.falcon = Falcon4016(self.topology, "falcon0", mode=mode,
                                 on_event=self.mcs.record_event)
        self.mcs.register_falcon(self.falcon)

        # Cabling: hosts 0..min(3,N)-1 share drawer 0 (advanced mode);
        # the last port serves drawer 1 from host 0.
        ports = iter(Falcon4016.HOST_PORTS)
        for host in self.hosts[:3]:
            self.falcon.connect_host(next(ports), host.name,
                                     host.rc_node, drawer=0)
        self.falcon.connect_host(next(ports), self.hosts[0].name,
                                 self.hosts[0].rc_node, drawer=1)

        # Populate: eight PCIe V100s (4 per drawer) + NVMe in drawer 1.
        self.falcon_gpus: list[GPU] = []
        for i in range(8):
            gpu = GPU(self.env, self.topology, f"falcon0/gpu{i}",
                      V100_PCIE_16GB)
            self.falcon.install_device(gpu.name, drawer=i // 4)
            self.falcon_gpus.append(gpu)
        self.falcon_nvme = StorageDevice(self.env, self.topology,
                                         "falcon0/nvme", SSDPEDKX040T7)
        self.falcon.install_device(self.falcon_nvme.name, drawer=1,
                                   spec=PCIE_GEN4_X4)

    # -- device management --------------------------------------------------
    def host(self, index: int) -> HostServer:
        return self.hosts[index]

    def gpu_by_name(self, name: str) -> GPU:
        for gpu in self.falcon_gpus:
            if gpu.name == name:
                return gpu
        for host in self.hosts:
            for gpu in host.gpus:
                if gpu.name == name:
                    return gpu
        raise KeyError(f"unknown GPU {name!r}")

    def allocate(self, gpu_name: str, host_index: int):
        """Hot-add a falcon GPU to a host; returns a process event that
        fires after the hot-plug latency."""
        host = self.hosts[host_index]
        return self.env.process(self._hotplug(gpu_name, host.name))

    def _hotplug(self, gpu_name: str, host_id: str):
        yield self.env.timeout(HOTPLUG_SECONDS)
        if self.falcon.owner_of(gpu_name) is not None:
            self.falcon.deallocate(gpu_name)
        self.falcon.allocate(gpu_name, host_id)
        return gpu_name

    def reconfigure(self, assignments: dict[str, int]):
        """Apply a bulk {gpu_name: host_index} reallocation (sequential
        hot-plugs, as the management plane performs them)."""
        return self.env.process(self._reconfigure(assignments))

    def _reconfigure(self, assignments: dict[str, int]):
        for gpu_name, host_index in assignments.items():
            yield self.env.process(
                self._hotplug(gpu_name, self.hosts[host_index].name))
        return len(assignments)

    # -- concurrent training ---------------------------------------------------
    def run_jobs(self, jobs: Sequence[JobSpec]) -> list[TrainingResult]:
        """Run tenant jobs concurrently over the shared fabric."""
        if not jobs:
            return []
        started: list[TrainingJob] = []
        for spec in jobs:
            host = self.hosts[spec.host_index]
            gpus = [self.gpu_by_name(name) for name in spec.gpus]
            self._check_ownership(spec, host, gpus)
            config = TrainingConfig(
                benchmark=get_benchmark(spec.benchmark),
                strategy=spec.strategy or DistributedDataParallel(),
                policy=spec.policy,
                global_batch=spec.global_batch,
                sim_steps=spec.sim_steps,
            )
            job = TrainingJob(self.env, self.topology, host, gpus,
                              host.scratch, config)
            started.append(job)
        done = self.env.all_of([job.start() for job in started])
        self.env.run(until=done)
        return [job.collect() for job in started]

    def _check_ownership(self, spec: JobSpec, host: HostServer,
                         gpus: list[GPU]) -> None:
        for gpu in gpus:
            if gpu.name.startswith("falcon0"):
                owner = self.falcon.owner_of(gpu.name)
                if owner != host.name:
                    raise PermissionError(
                        f"{gpu.name} is allocated to {owner!r}, not "
                        f"{host.name!r}; allocate it first")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ComposableCluster hosts={len(self.hosts)} "
                f"mode={self.falcon.mode.value}>")
