"""Public facade: the composable system, fleet, and static presets."""

from .cluster import ComposableCluster, HOTPLUG_SECONDS, JobSpec
from .fleet import ComposableFleet, FleetError
from .presets import (
    COMM_REQUIREMENTS,
    CONFIGURATION_DESCRIPTIONS,
    CONFIGURATION_ORDER,
    FLEET_FOUR_CHASSIS,
    FLEET_PRESETS,
    FLEET_TWO_CHASSIS,
    FleetSpec,
    SOFTWARE_STACK,
)
from .system import ActiveConfiguration, ComposableSystem

__all__ = [
    "ComposableSystem",
    "ComposableCluster",
    "ComposableFleet",
    "FleetError",
    "FleetSpec",
    "FLEET_TWO_CHASSIS",
    "FLEET_FOUR_CHASSIS",
    "FLEET_PRESETS",
    "JobSpec",
    "HOTPLUG_SECONDS",
    "ActiveConfiguration",
    "SOFTWARE_STACK",
    "CONFIGURATION_DESCRIPTIONS",
    "CONFIGURATION_ORDER",
    "COMM_REQUIREMENTS",
]
