"""Public facade: the composable system and static presets."""

from .cluster import ComposableCluster, HOTPLUG_SECONDS, JobSpec
from .presets import (
    COMM_REQUIREMENTS,
    CONFIGURATION_DESCRIPTIONS,
    CONFIGURATION_ORDER,
    SOFTWARE_STACK,
)
from .system import ActiveConfiguration, ComposableSystem

__all__ = [
    "ComposableSystem",
    "ComposableCluster",
    "JobSpec",
    "HOTPLUG_SECONDS",
    "ActiveConfiguration",
    "SOFTWARE_STACK",
    "CONFIGURATION_DESCRIPTIONS",
    "CONFIGURATION_ORDER",
    "COMM_REQUIREMENTS",
]
