"""Multi-chassis composable fleet behind a spine switch.

:class:`ComposableFleet` scales the paper's §III architecture out to a
row of racks: N Falcon 4016 chassis and M composable host servers all
cabled into one spine switch, so any host can reach any chassis GPU —
the full promise of composability, at the price of fabric hops.

Topology (one chassis column shown)::

    host0/rc ──(CDFP / oversubscription)── spine0
                                             │ (CDFP trunk per drawer)
                  falcon0/drawer0/switch ────┤
                  falcon0/drawer1/switch ────┘
                       │ ... 8 slots ...
                     falcon0/gpu0..gpu7

- Hosts are GPU-less (``local_gpus=0``): every GPU they train on is
  composed from a chassis, which is what makes placement interesting.
- Each drawer has **one** physical trunk to the spine; every host
  admitted to the drawer shares it (leaf/spine semantics, implemented by
  :meth:`~repro.fabric.falcon.Falcon4016.connect_fabric_host`).
- Each host has **one** spine uplink at ``CDFP/oversubscription``
  bandwidth; concurrent jobs on the same host contend on it, which is
  the cross-job fabric contention the fleet experiments measure.

Admission (which hosts may allocate from which drawer) is dynamic and
port-bounded: a chassis has four host ports, two consumed at build time
by its home host, leaving two for visiting hosts.  :meth:`admit` /
:meth:`release` refcount those cables so the scheduler can compose
cross-chassis jobs and give the ports back afterwards.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..devices import (
    GPU,
    HostServer,
    SUPERMICRO_4029GP_TVRT,
    V100_PCIE_16GB,
)
from ..fabric import Falcon4016, FalconError, FalconMode, Link, Topology
from ..fabric.link import CDFP_400G
from ..management import Inventory, ManagementCenterServer
from ..sim import Environment
from .presets import FLEET_TWO_CHASSIS, FleetSpec

__all__ = ["ComposableFleet", "FleetError"]


class FleetError(Exception):
    """No feasible cabling/placement for a fleet operation."""


class ComposableFleet:
    """N chassis + M composable hosts meshed through a spine switch."""

    def __init__(self, spec: FleetSpec = FLEET_TWO_CHASSIS,
                 env: Optional[Environment] = None):
        self.spec = spec
        self.env = env or Environment()
        self.topology = Topology(self.env)
        self.mcs = ManagementCenterServer(self.env)

        # The spine: a pure transit switch every uplink/trunk lands on.
        self.spine = spec.spine
        self.topology.add_node(self.spine, kind="switch", transit=True)
        if spec.oversubscription == 1.0:
            self.uplink_spec = CDFP_400G
        else:
            self.uplink_spec = replace(
                CDFP_400G,
                name=f"{CDFP_400G.name} "
                     f"(1:{spec.oversubscription:g} oversubscribed)",
                bandwidth=CDFP_400G.bandwidth / spec.oversubscription)

        # Composable hosts: no local GPUs — everything is fabric-attached.
        host_spec = replace(SUPERMICRO_4029GP_TVRT, local_gpus=0)
        self.hosts: list[HostServer] = []
        #: host name -> its spine uplink (the per-host shared resource).
        self.host_uplinks: dict[str, Link] = {}
        for i in range(spec.hosts):
            host = HostServer(self.env, self.topology, f"host{i}",
                              host_spec)
            self.host_uplinks[host.name] = self.topology.add_link(
                self.uplink_spec, host.rc_node, self.spine)
            self.mcs.register_host(host.name)
            self.hosts.append(host)

        # Chassis: advanced mode (3 hosts/drawer), drawers trunked to the
        # spine under their home host's admission.
        self.falcons: list[Falcon4016] = []
        self.inventories: list[Inventory] = []
        self.gpus: dict[str, GPU] = {}
        #: gpu name -> chassis index (placement bookkeeping).
        self.chassis_of: dict[str, int] = {}
        #: (falcon name, drawer, host name) -> admission refcount.
        self._admission_refs: dict[tuple[str, int, str], int] = {}
        #: build-time admissions that are never uncabled.
        self._pinned: set[tuple[str, int, str]] = set()
        for c in range(spec.chassis):
            falcon = Falcon4016(self.topology, f"falcon{c}",
                                mode=FalconMode.ADVANCED)
            self.mcs.register_falcon(falcon)
            home = self.hosts[c % len(self.hosts)]
            for drawer, port in ((0, "H1"), (1, "H2")):
                falcon.connect_fabric_host(port, home.name, self.spine,
                                           drawer=drawer)
                key = (falcon.name, drawer, home.name)
                self._admission_refs[key] = 1
                self._pinned.add(key)
            inventory = Inventory(self.mcs, falcon)
            for g in range(spec.gpus_per_chassis):
                gpu = GPU(self.env, self.topology, f"falcon{c}/gpu{g}",
                          V100_PCIE_16GB)
                # Split evenly across the two drawers.
                falcon.install_device(
                    gpu.name, drawer=g * 2 // spec.gpus_per_chassis
                    if spec.gpus_per_chassis > 1 else 0)
                inventory.register_gpu(gpu)
                self.gpus[gpu.name] = gpu
                self.chassis_of[gpu.name] = c
            self.falcons.append(falcon)
            self.inventories.append(inventory)

    # -- lookups -----------------------------------------------------------
    def host_by_name(self, name: str) -> HostServer:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(f"unknown host {name!r}")

    def gpu(self, name: str) -> GPU:
        try:
            return self.gpus[name]
        except KeyError:
            raise KeyError(f"unknown fleet GPU {name!r}") from None

    def inventory_of(self, gpu_name: str) -> Inventory:
        return self.inventories[self.chassis_of[gpu_name]]

    def home_host(self, chassis: int) -> HostServer:
        return self.hosts[chassis % len(self.hosts)]

    def free_gpus(self, chassis: Optional[int] = None) -> list[str]:
        """Unallocated chassis GPUs, in deterministic name order."""
        out = []
        for name in sorted(self.gpus):
            if chassis is not None and self.chassis_of[name] != chassis:
                continue
            falcon = self.falcons[self.chassis_of[name]]
            if falcon.owner_of(name) is None:
                out.append(name)
        return out

    # -- dynamic admission (visiting hosts) --------------------------------
    def admit(self, host_name: str, chassis: int, drawer: int) -> None:
        """Ensure ``host_name`` may allocate from the drawer (refcounted).

        A visiting host consumes one of the chassis' free ports; the
        drawer's existing spine trunk is shared, no new cable is run.
        Raises :class:`FleetError` when the chassis has no free port or
        the drawer is at its mode's connection limit.
        """
        falcon = self.falcons[chassis]
        key = (falcon.name, drawer, host_name)
        if key in self._admission_refs:
            self._admission_refs[key] += 1
            return
        port = next((p for p in falcon.HOST_PORTS
                     if p not in falcon.port_map), None)
        if port is None:
            raise FleetError(
                f"{falcon.name} has no free host port for {host_name!r}")
        try:
            falcon.connect_fabric_host(port, host_name, self.spine,
                                       drawer=drawer)
        except FalconError as exc:
            raise FleetError(str(exc)) from exc
        self._admission_refs[key] = 1

    def release(self, host_name: str, chassis: int, drawer: int) -> None:
        """Drop one admission reference; uncable on the last (unless the
        admission is the drawer's build-time home cabling)."""
        falcon = self.falcons[chassis]
        key = (falcon.name, drawer, host_name)
        refs = self._admission_refs.get(key)
        if refs is None:
            return
        if refs > 1:
            self._admission_refs[key] = refs - 1
            return
        if key in self._pinned:
            return  # home cabling stays; keep the floor refcount
        del self._admission_refs[key]
        port = next(p for p, (h, d) in falcon.port_map.items()
                    if h == host_name and d == drawer)
        falcon.disconnect_host(port)

    def is_admitted(self, host_name: str, chassis: int,
                    drawer: int) -> bool:
        return host_name in self.falcons[chassis].drawers[drawer].hosts

    # -- spine contention --------------------------------------------------
    def spine_links(self) -> dict[str, Link]:
        """Every link terminating at the spine, labelled for reporting:
        per-host uplinks plus per-drawer trunks."""
        links: dict[str, Link] = {}
        for host_name, link in self.host_uplinks.items():
            links[f"uplink/{host_name}"] = link
        for falcon in self.falcons:
            for drawer in falcon.drawers:
                switch = drawer.switch
                if self.spine in switch.upstream:
                    links[f"trunk/{drawer.name}"] = \
                        switch.uplink_to(self.spine)
        return links

    def spine_traffic(self, t0: float, t1: float) -> dict[str, dict]:
        """Mean (to-spine, from-spine) bytes/s per spine link over
        ``[t0, t1]`` — the cross-job contention view."""
        out: dict[str, dict] = {}
        for label, link in self.spine_links().items():
            edge = link.other(self.spine)
            out[label] = {
                "to_spine_gbs": link.mean_rate(edge, self.spine,
                                               t0, t1) / 1e9,
                "from_spine_gbs": link.mean_rate(self.spine, edge,
                                                 t0, t1) / 1e9,
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ComposableFleet {self.spec.name}: "
                f"{len(self.falcons)} chassis x "
                f"{self.spec.gpus_per_chassis} GPUs, "
                f"{len(self.hosts)} hosts, "
                f"oversub {self.spec.oversubscription:g}>")
