"""Static presets: the paper's software stack (Table I) and host
configuration descriptions (Table III).

Table I is reproduced verbatim as data — it documents the stack whose
*behaviour* the simulation models (PyTorch DDP semantics, NCCL ring
collectives, CUDA kernel streams, wandb-style sampled telemetry).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SOFTWARE_STACK", "CONFIGURATION_DESCRIPTIONS",
           "CONFIGURATION_ORDER", "COMM_REQUIREMENTS", "FleetSpec",
           "FLEET_TWO_CHASSIS", "FLEET_FOUR_CHASSIS", "FLEET_PRESETS"]

#: Paper Table I: Software Stack Details.
SOFTWARE_STACK: dict[str, str] = {
    "Operating system": "Ubuntu 18.04",
    "DL Framework": "PyTorch 1.7.1",
    "CUDA": "10.2.89",
    "CUDA Driver": "450.102.04",
    "CUDNN": "cudnn7.6.5",
    "NCCL": "NCCL 2.8.4",
    "Profilers": "wandb 0.10.14; NVIDIA Nsight Systems 2020.4.3.7; "
                 "NVIDIA Nsight Compute 2020.3.0.0",
}

#: Paper Table III: composable host configurations.
CONFIGURATION_DESCRIPTIONS: dict[str, str] = {
    "localGPUs": "8 local GPUs and local storage",
    "hybridGPUs": "4 local GPUs, 4 falcon GPUs, and local storage",
    "falconGPUs": "8 falcon-attached GPUs",
    "localNVMe": "8 local GPUs and local NVMe",
    "falconNVMe": "8 local GPUs and falcon-attached NVMe",
}

#: Table III row order.
CONFIGURATION_ORDER: tuple[str, ...] = (
    "localGPUs", "hybridGPUs", "falconGPUs", "localNVMe", "falconNVMe")


@dataclass(frozen=True)
class CommRequirement:
    """One row of the paper's Fig. 5 communications-requirements table."""

    path: str
    latency: str
    bandwidth: str
    link_length: str


@dataclass(frozen=True)
class FleetSpec:
    """Bill of materials for a multi-chassis fleet (§III scaled out).

    N Falcon 4016 chassis and M composable (GPU-less) host servers meet
    behind one spine switch: every drawer is trunked to the spine over a
    CDFP cable, and every host's root complex uplinks to the spine at
    ``1/oversubscription`` of CDFP bandwidth — the oversubscription knob
    is the classic leaf/spine ratio between edge capacity and what the
    host can actually push into the fabric.
    """

    name: str
    chassis: int = 2
    hosts: int = 2
    gpus_per_chassis: int = 8
    #: Host-uplink oversubscription factor: each host's spine uplink
    #: carries ``CDFP / oversubscription`` bandwidth (1.0 = non-blocking).
    oversubscription: float = 1.0
    #: Topology node name of the spine switch.
    spine: str = "spine0"

    def __post_init__(self) -> None:
        if self.chassis < 1:
            raise ValueError("a fleet needs at least one chassis")
        if self.hosts < 1:
            raise ValueError("a fleet needs at least one host")
        if not 1 <= self.gpus_per_chassis <= 16:
            raise ValueError("a Falcon 4016 holds 1..16 devices")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")

    @property
    def total_gpus(self) -> int:
        return self.chassis * self.gpus_per_chassis


#: Two chassis / two hosts, non-blocking spine: the smallest topology on
#: which cross-chassis placement and spine contention are observable.
FLEET_TWO_CHASSIS = FleetSpec(name="two-chassis")

#: Four chassis / four hosts with 2:1 oversubscribed host uplinks — the
#: configuration the fleet study uses to surface queueing + contention.
FLEET_FOUR_CHASSIS = FleetSpec(name="four-chassis", chassis=4, hosts=4,
                               oversubscription=2.0)

FLEET_PRESETS: dict[str, FleetSpec] = {
    spec.name: spec for spec in (FLEET_TWO_CHASSIS, FLEET_FOUR_CHASSIS)
}


#: Paper Fig. 5: communications requirements of disaggregation (from [1]).
COMM_REQUIREMENTS: tuple[CommRequirement, ...] = (
    CommRequirement("CPU - CPU", "10 ns", "200 - 320 Gbps/CPU", "0.1 - 1 m"),
    CommRequirement("CPU - Memory", "10 - 50 ns", "300 - 800 Gbps/CPU",
                    "1 - 5 m"),
    CommRequirement("CPU - Disk", "1 - 10 us", "5 - 128 Gbps/device",
                    "5 m - 1 km"),
)
