"""Static presets: the paper's software stack (Table I) and host
configuration descriptions (Table III).

Table I is reproduced verbatim as data — it documents the stack whose
*behaviour* the simulation models (PyTorch DDP semantics, NCCL ring
collectives, CUDA kernel streams, wandb-style sampled telemetry).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SOFTWARE_STACK", "CONFIGURATION_DESCRIPTIONS",
           "CONFIGURATION_ORDER", "COMM_REQUIREMENTS"]

#: Paper Table I: Software Stack Details.
SOFTWARE_STACK: dict[str, str] = {
    "Operating system": "Ubuntu 18.04",
    "DL Framework": "PyTorch 1.7.1",
    "CUDA": "10.2.89",
    "CUDA Driver": "450.102.04",
    "CUDNN": "cudnn7.6.5",
    "NCCL": "NCCL 2.8.4",
    "Profilers": "wandb 0.10.14; NVIDIA Nsight Systems 2020.4.3.7; "
                 "NVIDIA Nsight Compute 2020.3.0.0",
}

#: Paper Table III: composable host configurations.
CONFIGURATION_DESCRIPTIONS: dict[str, str] = {
    "localGPUs": "8 local GPUs and local storage",
    "hybridGPUs": "4 local GPUs, 4 falcon GPUs, and local storage",
    "falconGPUs": "8 falcon-attached GPUs",
    "localNVMe": "8 local GPUs and local NVMe",
    "falconNVMe": "8 local GPUs and falcon-attached NVMe",
}

#: Table III row order.
CONFIGURATION_ORDER: tuple[str, ...] = (
    "localGPUs", "hybridGPUs", "falconGPUs", "localNVMe", "falconNVMe")


@dataclass(frozen=True)
class CommRequirement:
    """One row of the paper's Fig. 5 communications-requirements table."""

    path: str
    latency: str
    bandwidth: str
    link_length: str


#: Paper Fig. 5: communications requirements of disaggregation (from [1]).
COMM_REQUIREMENTS: tuple[CommRequirement, ...] = (
    CommRequirement("CPU - CPU", "10 ns", "200 - 320 Gbps/CPU", "0.1 - 1 m"),
    CommRequirement("CPU - Memory", "10 - 50 ns", "300 - 800 Gbps/CPU",
                    "1 - 5 m"),
    CommRequirement("CPU - Disk", "1 - 10 us", "5 - 128 Gbps/device",
                    "5 m - 1 km"),
)
