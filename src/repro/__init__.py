"""repro — Performance analysis of DL workloads on a composable system.

A full-system simulation reproduction of El Maghraoui et al. (IPPS 2021):
a Falcon 4016 PCIe-composable chassis, NVLink-meshed V100 hosts, and a
data-parallel DL training engine, with the paper's five benchmarks and
experiment harness.

Quickstart::

    from repro import ComposableSystem

    system = ComposableSystem()
    result = system.train("resnet50", configuration="falconGPUs")
    print(result.summary())
"""

from .core import (
    ActiveConfiguration,
    COMM_REQUIREMENTS,
    CONFIGURATION_DESCRIPTIONS,
    CONFIGURATION_ORDER,
    ComposableCluster,
    ComposableSystem,
    JobSpec,
    SOFTWARE_STACK,
)
from .training import (
    AMP_POLICY,
    DataParallel,
    DistributedDataParallel,
    FP32_POLICY,
    ShardedDataParallel,
    TrainingConfig,
    TrainingResult,
)
from .workloads import BENCHMARKS, benchmark_names, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "ComposableSystem",
    "ComposableCluster",
    "JobSpec",
    "ActiveConfiguration",
    "SOFTWARE_STACK",
    "CONFIGURATION_DESCRIPTIONS",
    "CONFIGURATION_ORDER",
    "COMM_REQUIREMENTS",
    "TrainingConfig",
    "TrainingResult",
    "DataParallel",
    "DistributedDataParallel",
    "ShardedDataParallel",
    "AMP_POLICY",
    "FP32_POLICY",
    "BENCHMARKS",
    "get_benchmark",
    "benchmark_names",
    "__version__",
]
