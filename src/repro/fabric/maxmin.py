"""Incremental max-min fair rate solver over directed link capacities.

The classic fluid-flow simulation re-runs progressive filling over
*every* active flow at every arrival/completion — O(rounds x links x
flows) per event, which collapses once thousands of concurrent flows
from co-scheduled jobs share one fabric.  This module keeps the exact
water-filling arithmetic but makes it *incremental*:

- :func:`water_fill` is the batch reference solver (the oracle): a pure
  function computing the max-min fair rate of each flow.
- :class:`MaxMinSolver` maintains per-directed-link flow indexes plus a
  dirty set, and re-solves only the **connected component** of the
  contention graph touched by a flow add/remove or a capacity change.

Why the component solve is exact
--------------------------------
Flows and directed links form a bipartite contention graph (a flow is
adjacent to every directed link it crosses).  Max-min rates in one
connected component are independent of every other component: the
bottleneck argument never lets capacity or demand cross a component
boundary.  Progressive filling over the full flow set is therefore an
interleaving of independent per-component fills — freezing a bottleneck
link only updates residuals/users of links in its own component — so
re-filling just the dirty component reproduces the batch result.  The
arithmetic is bitwise identical, not merely close: within a component
the bottleneck order (sorted by share) is the same, every residual
update subtracts the same frozen share values, and subtracting the same
constant per frozen flow is order-independent.  The fast-path engine's
1e-9 golden equivalence tests pin this.

A flow object is anything with a ``segments`` sequence (each segment
exposing ``key`` — the hashable directed-capacity identity — and
``capacity``) and a writable ``rate``; both the live
:class:`~repro.fabric.flows.Flow` and the fast-path engine's duck-typed
``_Flow`` qualify.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

__all__ = ["MaxMinSolver", "water_fill", "apply_rates"]


def water_fill(flows: Iterable) -> dict:
    """Batch progressive filling; returns ``{flow: rate}`` (pure).

    This is the reference oracle: max-min fair rates subject to each
    directed link's capacity, computed from scratch over ``flows``.
    """
    rates: dict = {}
    unfrozen: set = set(flows)
    # Residual capacity and unfrozen users per directed link.
    residual: dict = {}
    users: dict = {}
    for flow in unfrozen:
        for seg in flow.segments:
            residual.setdefault(seg.key, seg.capacity)
            users.setdefault(seg.key, set()).add(flow)

    while unfrozen:
        # Find the bottleneck: the directed link with the smallest
        # equal share among its unfrozen users.
        best_key = None
        best_share = float("inf")
        for key, flows_on in users.items():
            if not flows_on:
                continue
            share = residual[key] / len(flows_on)
            if share < best_share:
                best_share = share
                best_key = key
        if best_key is None:
            # Remaining flows cross no constrained link.
            for flow in unfrozen:
                rates[flow] = float("inf")
            break
        frozen_now = list(users[best_key])
        for flow in frozen_now:
            rates[flow] = best_share
            unfrozen.discard(flow)
            for seg in flow.segments:
                if seg.key not in users:
                    continue
                users[seg.key].discard(flow)
                if seg.key != best_key:
                    residual[seg.key] = max(
                        0.0, residual[seg.key] - best_share)
        residual[best_key] = 0.0
        users[best_key].clear()
    return rates


def apply_rates(flows: Iterable) -> None:
    """Batch water-fill ``flows`` and write each flow's ``rate``."""
    for flow, rate in water_fill(flows).items():
        flow.rate = rate


class MaxMinSolver:
    """Per-link flow index + dirty-component incremental re-solver.

    The owner registers every active flow (:meth:`add` / :meth:`remove`),
    reports capacity changes (:meth:`touch` / :meth:`touch_all`), and
    calls :meth:`solve` at each recompute point.  Only flows in
    contention-graph components reachable from a dirty link are re-rated;
    all other flows keep their previously assigned rates.
    """

    __slots__ = ("_flows_on", "_keys_of", "_dirty", "_dirty_all")

    def __init__(self) -> None:
        #: directed-link key -> set of flows crossing it.
        self._flows_on: Dict[tuple, Set] = {}
        #: flow -> its distinct directed-link keys (loop-free iteration).
        self._keys_of: Dict[object, tuple] = {}
        #: link keys whose membership or capacity changed since solve().
        self._dirty: Set[tuple] = set()
        self._dirty_all = False

    def __len__(self) -> int:
        return len(self._keys_of)

    @property
    def flows(self) -> list:
        return list(self._keys_of)

    # -- index maintenance -------------------------------------------------
    def add(self, flow) -> None:
        """Index a new flow; its links become dirty."""
        seen = set()
        for seg in flow.segments:
            key = seg.key
            if key in seen:
                continue
            seen.add(key)
            self._flows_on.setdefault(key, set()).add(flow)
            self._dirty.add(key)
        self._keys_of[flow] = tuple(seen)

    def remove(self, flow) -> None:
        """Unindex a flow; its links become dirty (no-op if unknown)."""
        keys = self._keys_of.pop(flow, None)
        if keys is None:
            return
        for key in keys:
            flows = self._flows_on.get(key)
            if flows is not None:
                flows.discard(flow)
                if not flows:
                    del self._flows_on[key]
            self._dirty.add(key)

    def touch(self, *keys: tuple) -> None:
        """Mark directed-link capacities as changed (retrain/degrade)."""
        self._dirty.update(keys)

    def touch_all(self) -> None:
        """Mark every link dirty (unknown capacity change)."""
        self._dirty_all = True

    def flows_on(self, *keys: tuple) -> set:
        """Union of flows crossing any of the directed-link keys."""
        out: set = set()
        for key in keys:
            out |= self._flows_on.get(key, set())
        return out

    # -- solving -----------------------------------------------------------
    def affected(self) -> set:
        """Flows in components reachable from the dirty links (pure)."""
        if self._dirty_all:
            return set(self._keys_of)
        affected: set = set()
        seen_keys = set(k for k in self._dirty if k in self._flows_on)
        frontier = list(seen_keys)
        while frontier:
            key = frontier.pop()
            for flow in self._flows_on[key]:
                if flow in affected:
                    continue
                affected.add(flow)
                for other in self._keys_of[flow]:
                    if other not in seen_keys:
                        seen_keys.add(other)
                        frontier.append(other)
        return affected

    def solve(self) -> int:
        """Re-rate the dirty components; returns the flow count touched.

        Rates of flows outside the affected components are left exactly
        as the previous solve assigned them.
        """
        if not self._dirty and not self._dirty_all:
            return 0
        affected = self.affected()
        self._dirty.clear()
        self._dirty_all = False
        if affected:
            apply_rates(affected)
        return len(affected)

    def solve_full(self) -> int:
        """Batch-oracle mode: water-fill every indexed flow."""
        self._dirty.clear()
        self._dirty_all = False
        apply_rates(self._keys_of)
        return len(self._keys_of)

    def assert_equivalent(self, rtol: float = 1e-9) -> None:
        """Compare current rates against the batch oracle at ``rtol``.

        Raises :class:`AssertionError` on divergence — the
        ``assert_equivalence``-style cross-check the property tests and
        the churn microbench run after every mutation batch.
        """
        expect = water_fill(self._keys_of)
        for flow, want in expect.items():
            have = flow.rate
            if want == float("inf"):
                ok = have == want
            else:
                ok = abs(have - want) <= rtol * max(abs(want), 1.0)
            if not ok:
                raise AssertionError(
                    f"incremental rate diverged from batch water-fill: "
                    f"flow={flow!r} incremental={have!r} batch={want!r}")
