"""Traffic aggregation helpers over link counters.

The fabric accounts every delivered byte on each link's directional
counters (:class:`~repro.sim.CounterMonitor`).  These helpers roll those
counters up into the quantities the paper reports: per-node ingress and
egress rates, and rate time-series suitable for plotting (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .link import GB, Link
from .topology import Topology

__all__ = ["NodeTraffic", "node_traffic", "node_rate_series",
           "total_bytes_moved"]


@dataclass(frozen=True)
class NodeTraffic:
    """Ingress/egress byte totals and mean rates for one node."""

    node: str
    ingress_bytes: float
    egress_bytes: float
    ingress_rate: float
    egress_rate: float

    @property
    def combined_rate(self) -> float:
        """Total data exchanged per second (ingress + egress)."""
        return self.ingress_rate + self.egress_rate

    @property
    def combined_rate_gbps(self) -> float:
        """Combined rate in GB/s, the unit of the paper's Fig. 12."""
        return self.combined_rate / GB


def node_traffic(topology: Topology, node: str, t0: float, t1: float
                 ) -> NodeTraffic:
    """Aggregate ingress/egress over every link touching ``node``."""
    ingress = 0.0
    egress = 0.0
    for link in topology.links_of(node):
        other = link.other(node)
        ingress += link.counters[(other, node)].total_between(t0, t1)
        egress += link.counters[(node, other)].total_between(t0, t1)
    span = max(t1 - t0, 0.0)
    return NodeTraffic(
        node=node,
        ingress_bytes=ingress,
        egress_bytes=egress,
        ingress_rate=ingress / span if span > 0 else 0.0,
        egress_rate=egress / span if span > 0 else 0.0,
    )


def node_rate_series(topology: Topology, node: str, width: float,
                     t_end: Optional[float] = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(window_starts, ingress_rates, egress_rates) for one node.

    Rates are averaged per fixed-width window, the same presentation the
    paper uses for per-second PCIe traffic.
    """
    links = topology.links_of(node)
    hi = t_end if t_end is not None else topology.env.now
    if hi <= 0 or not links:
        empty = np.array([])
        return empty, empty.copy(), empty.copy()
    edges = np.arange(0.0, hi + width, width)
    ingress = np.zeros(edges.size - 1)
    egress = np.zeros(edges.size - 1)
    for link in links:
        other = link.other(node)
        for direction, acc in (((other, node), ingress),
                               ((node, other), egress)):
            counter = link.counters[direction]
            t = np.asarray(counter._times)
            c = np.asarray(counter._totals)
            at_edges = np.interp(edges, t, c)
            acc += np.diff(at_edges) / width
    return edges[:-1], ingress, egress


def total_bytes_moved(links: Iterable[Link]) -> float:
    """Sum of all bytes moved in both directions over the given links."""
    return sum(counter.total
               for link in links for counter in link.counters.values())
