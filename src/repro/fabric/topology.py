"""Fabric topology: nodes, links, routing, and transfers.

A :class:`Topology` is an undirected multigraph of named nodes connected
by :class:`~repro.fabric.link.Link` instances.  Nodes carry a *kind* (GPU,
switch, root complex, ...) and a *transit* flag: data may only be routed
*through* transit nodes (switches, root complexes, host adapters), never
through endpoint devices — e.g. two NVLink-non-adjacent GPUs fall back to
the PCIe path through the root complex exactly as real GPUDirect P2P does.

Routing is latency-weighted Dijkstra with hop-count tie-breaking, cached
and invalidated whenever the topology changes (devices can be attached and
detached at runtime — the composability feature under study).

:meth:`Topology.transfer` is the single entry point for data movement: it
pays the path's fixed latency, then streams bytes through the
:class:`~repro.fabric.flows.FlowScheduler`, which accounts traffic on each
link's directional counters.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim import Environment, Event, Process
from .flows import FlowScheduler, Segment
from .link import Link, LinkSpec, US

__all__ = ["Topology", "Node", "Route", "NoRouteError", "LinkFailure",
           "DeviceFailure"]

#: Fixed software/DMA initiation overhead per transfer, seconds.  Combined
#: with per-link latencies this reproduces Table IV's P2P write latencies.
DEFAULT_TRANSFER_OVERHEAD = 1.30 * US


class NoRouteError(KeyError):
    """No path exists between the requested endpoints.

    Subclasses :class:`KeyError` so callers that historically caught the
    routing layer's ``KeyError`` for unknown endpoints keep working; new
    code should catch ``NoRouteError`` for both the unknown-node and the
    failed-link case.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class LinkFailure(Exception):
    """An in-flight transfer was aborted by a link failure."""

    def __init__(self, link_name: str):
        super().__init__(f"link {link_name} failed")
        self.link_name = link_name


class DeviceFailure(Exception):
    """A fabric endpoint device (GPU, NVMe, NIC) dropped off the fabric."""

    def __init__(self, device: str):
        super().__init__(f"device {device} failed")
        self.device = device


@dataclass
class Node:
    """A topology node.

    Attributes
    ----------
    name:
        Unique node name, e.g. ``"host0/gpu3"``.
    kind:
        Free-form kind tag (``"gpu"``, ``"switch"``, ``"rc"``, ``"nvme"``...).
    transit:
        Whether routes may pass *through* this node.
    """

    name: str
    kind: str = "device"
    transit: bool = False


@dataclass(frozen=True)
class Route:
    """A resolved path: ordered directed segments plus fixed latency."""

    segments: tuple[Segment, ...]
    latency: float

    @property
    def hops(self) -> int:
        return len(self.segments)

    @property
    def bandwidth(self) -> float:
        """Uncontended bottleneck bandwidth of the path (bytes/s/dir)."""
        if not self.segments:
            return float("inf")
        return min(seg.capacity for seg in self.segments)

    @property
    def nodes(self) -> tuple[str, ...]:
        if not self.segments:
            return ()
        return (self.segments[0].src,) + tuple(
            seg.dst for seg in self.segments)


class Topology:
    """Mutable fabric graph with routing and fluid transfers."""

    def __init__(self, env: Environment,
                 transfer_overhead: float = DEFAULT_TRANSFER_OVERHEAD):
        self.env = env
        self.scheduler = FlowScheduler(env)
        self.transfer_overhead = transfer_overhead
        #: Optional :class:`repro.telemetry.Tracer`; when set, every
        #: transfer records a span (and storage/collective layers pick the
        #: tracer up from here).  Duck-typed to avoid an import cycle.
        self.tracer = None
        self._nodes: dict[str, Node] = {}
        self._adjacency: dict[str, list[Link]] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}
        self._failed_links: set[Link] = set()

    # -- construction ----------------------------------------------------
    def add_node(self, name: str, kind: str = "device",
                 transit: bool = False) -> Node:
        """Add a node; name must be unique."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(name, kind, transit)
        self._nodes[name] = node
        self._adjacency[name] = []
        self._route_cache.clear()
        return node

    def add_link(self, spec: LinkSpec, a: str, b: str,
                 name: Optional[str] = None) -> Link:
        """Connect nodes ``a`` and ``b`` with a new link of ``spec``."""
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise KeyError(f"unknown node {endpoint!r}")
        link = Link(spec, a, b, name)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._route_cache.clear()
        return link

    def remove_link(self, link: Link) -> None:
        """Disconnect a link (device detach)."""
        try:
            self._adjacency[link.a].remove(link)
            self._adjacency[link.b].remove(link)
        except (KeyError, ValueError):
            raise ValueError(f"{link!r} is not part of this topology")
        self._failed_links.discard(link)
        self._route_cache.clear()

    # -- fault injection ---------------------------------------------------
    def degrade_link(self, link: Link, lanes: int) -> None:
        """Retrain a link at reduced width (PCIe lane failure).

        In-flight flows adopt the reduced bandwidth immediately.
        """
        link.retrain(link.spec.scaled(lanes))
        self._route_cache.clear()
        self.scheduler.poke(link)

    def restore_link(self, link: Link,
                     spec: Optional[LinkSpec] = None) -> None:
        """Bring a link back to health.

        For a degraded link this retrains it (to ``spec``, or to the spec
        it was built with).  For a hard-failed link (:meth:`fail_link`)
        this *re-seats* it: the link rejoins the graph and routing through
        it works again — the symmetric inverse of a cable pull.
        """
        if link in self._failed_links:
            for endpoint in (link.a, link.b):
                if endpoint not in self._nodes:
                    raise ValueError(
                        f"cannot re-seat {link.name}: node {endpoint!r} "
                        "no longer exists")
            self._adjacency[link.a].append(link)
            self._adjacency[link.b].append(link)
            self._failed_links.discard(link)
            link.failed = False
        link.retrain(spec or link.original_spec)
        self._route_cache.clear()
        self.scheduler.poke(link)

    def fail_link(self, link: Link,
                  cause: Optional[Exception] = None) -> int:
        """Hard-fail a link (cable pull): aborts in-flight transfers with
        ``cause`` (default :class:`LinkFailure`) and detaches the link
        from the graph; :meth:`restore_link` can re-seat it.
        Returns the number of transfers aborted."""
        killed = self.scheduler.kill_flows_on(
            link, cause or LinkFailure(link.name))
        self.remove_link(link)
        link.failed = True
        self._failed_links.add(link)
        return killed

    def failed_links(self) -> list[Link]:
        """Links that were hard-failed and not yet re-seated."""
        return list(self._failed_links)

    def remove_node(self, name: str) -> None:
        """Remove a node and all its links."""
        if name not in self._nodes:
            raise KeyError(f"unknown node {name!r}")
        for link in list(self._adjacency[name]):
            self.remove_link(link)
        del self._adjacency[name]
        del self._nodes[name]
        self._route_cache.clear()

    # -- inspection -------------------------------------------------------
    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self, kind: Optional[str] = None) -> list[Node]:
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind == kind]

    def links_of(self, name: str) -> list[Link]:
        return list(self._adjacency[name])

    def links(self) -> list[Link]:
        seen: dict[int, Link] = {}
        for links in self._adjacency.values():
            for link in links:
                seen[link.id] = link
        return list(seen.values())

    def neighbors(self, name: str) -> list[str]:
        return [link.other(name) for link in self._adjacency[name]]

    # -- routing ----------------------------------------------------------
    def route(self, src: str, dst: str) -> Route:
        """Lowest-latency path from ``src`` to ``dst`` (cached).

        Raises :class:`NoRouteError` both when no path exists (e.g. it
        would cross a failed link) and when an endpoint is unknown (e.g.
        the device dropped off the fabric entirely).
        """
        if src not in self._nodes:
            raise NoRouteError(f"unknown node {src!r}")
        if dst not in self._nodes:
            raise NoRouteError(f"unknown node {dst!r}")
        if src == dst:
            return Route((), 0.0)
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        route = self._dijkstra(src, dst)
        self._route_cache[(src, dst)] = route
        return route

    def _dijkstra(self, src: str, dst: str) -> Route:
        # Cost = (latency, hops); routes may only transit through
        # transit-enabled nodes, except for the endpoints themselves.
        dist: dict[str, tuple[float, int]] = {src: (0.0, 0)}
        parent: dict[str, tuple[str, Link]] = {}
        heap: list[tuple[float, int, str]] = [(0.0, 0, src)]
        visited: set[str] = set()
        while heap:
            latency, hops, here = heapq.heappop(heap)
            if here in visited:
                continue
            visited.add(here)
            if here == dst:
                break
            if here != src and not self._nodes[here].transit:
                continue  # cannot route through an endpoint device
            for link in self._adjacency[here]:
                there = link.other(here)
                cost = (latency + link.spec.latency + link.spec.hop_penalty,
                        hops + 1)
                if there not in dist or cost < dist[there]:
                    dist[there] = cost
                    parent[there] = (here, link)
                    heapq.heappush(heap, (cost[0], cost[1], there))
        if dst not in parent:
            raise NoRouteError(f"no route from {src!r} to {dst!r}")
        # Reconstruct.
        segments: list[Segment] = []
        node = dst
        while node != src:
            prev, link = parent[node]
            segments.append(Segment(link, prev, node))
            node = prev
        segments.reverse()
        latency = sum(s.link.spec.latency + s.link.spec.hop_penalty
                      for s in segments)
        return Route(tuple(segments), latency)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether any route currently exists between two nodes."""
        try:
            self.route(src, dst)
        except NoRouteError:
            return False
        return True

    def path_latency(self, src: str, dst: str) -> float:
        """One-way fixed latency including transfer overhead, seconds."""
        return self.transfer_overhead + self.route(src, dst).latency

    def path_bandwidth(self, src: str, dst: str) -> float:
        """Uncontended bottleneck bandwidth, bytes/s per direction."""
        return self.route(src, dst).bandwidth

    # -- data movement ------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float,
                 label: str = "") -> Process:
        """Move ``nbytes`` from ``src`` to ``dst``; returns a process event.

        The process pays the route's fixed latency plus the shared-
        bandwidth streaming time, and returns the route taken.
        """
        route = self.route(src, dst)  # raises NoRouteError eagerly
        return self.env.process(self._transfer(route, nbytes, label))

    def _transfer(self, route: Route, nbytes: float, label: str):
        tracer = self.tracer
        if tracer is None:
            yield self.env.timeout(self.transfer_overhead + route.latency)
            if nbytes > 0 and route.segments:
                yield self.scheduler.start_flow(route.segments, nbytes,
                                                label)
            return route
        # Traced path: one span per transfer on a pooled "fabric" lane.
        # The stall attribute is the contention penalty — streaming time
        # beyond what the uncontended bottleneck bandwidth would take.
        from ..telemetry.trace import Category
        nodes = route.nodes
        track = tracer.lane("fabric")
        span = tracer.span(label or "transfer", Category.FABRIC, track,
                           bytes=nbytes,
                           src=nodes[0] if nodes else "",
                           dst=nodes[-1] if nodes else "")
        try:
            yield self.env.timeout(self.transfer_overhead + route.latency)
            stream_t0 = self.env.now
            if nbytes > 0 and route.segments:
                yield self.scheduler.start_flow(route.segments, nbytes,
                                                label)
            ideal = nbytes / route.bandwidth if route.segments else 0.0
            stall = max(0.0, (self.env.now - stream_t0) - ideal)
            span.close(stall_s=stall)
        finally:
            span.close()  # no-op if closed above; covers the fault path
            tracer.release_lane(track)
        return route
