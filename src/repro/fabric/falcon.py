"""The Falcon 4016 composable chassis (paper §II-III).

A 4U chassis with **two drawers of eight PCIe 4.0 slots** each (sixteen
devices total), four **host ports** (H1-H4) that connect drawers to host
servers over 400 Gb/s CDFP cables + low-profile PCIe 4.0 x16 host
adapters, and a PCIe switch chip per drawer.

Composability features modelled:

- dynamic install/remove of devices in slots (GPUs, NVMe, NICs — anything
  with a PCIe interface),
- connecting up to two (standard mode) or three (advanced mode) hosts per
  drawer,
- logical allocation of devices to connected hosts with per-mode
  validation (standard: one host takes the drawer, or two hosts take four
  slots each; advanced: arbitrary sharing across up to three hosts),
- per-port and per-slot ingress/egress traffic counters (paper Fig. 12),
- configuration export/import (paper §II-B "import or export resource
  allocation as a configuration file").

State-changing operations emit structured events through an optional
callback, which the management plane (:mod:`repro.management`) records in
its event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from .link import CDFP_400G, Link, LinkSpec, PCIE_GEN4_X16
from .pcie import PCIeSwitch
from .topology import Topology

__all__ = ["Falcon4016", "FalconMode", "Drawer", "Slot", "FalconError"]


class FalconError(Exception):
    """Invalid chassis operation (bad slot, mode violation, ...)."""


class FalconMode(str, Enum):
    """Chassis operating mode (paper §III-B)."""

    #: One or two hosts per drawer; a host takes eight or four devices.
    STANDARD = "standard"
    #: Up to three hosts per drawer with arbitrary dynamic allocation.
    ADVANCED = "advanced"


@dataclass
class Slot:
    """One of the eight device slots in a drawer."""

    drawer_index: int
    index: int
    device: Optional[str] = None        # node name of installed device
    link: Optional[Link] = None
    owner: Optional[str] = None         # host id the device is allocated to

    @property
    def occupied(self) -> bool:
        return self.device is not None

    @property
    def label(self) -> str:
        return f"drawer{self.drawer_index}/slot{self.index}"


class Drawer:
    """A drawer: PCIe switching fronting eight slots.

    A drawer normally presents one switch chip; in the paper's
    dual-connection standard-mode layout (§III-B: "one host can have two
    connections to the same drawer") it is *partitioned* into two
    4-slot halves, each with its own upstream port — host-device
    bandwidth doubles, but the halves can only reach each other through
    the host's root complex.
    """

    SLOTS = 8

    def __init__(self, topology: Topology, falcon_name: str, index: int,
                 partitions: int = 1):
        if partitions not in (1, 2):
            raise FalconError("a drawer has one or two switch partitions")
        self.index = index
        self.partitions = partitions
        self.name = f"{falcon_name}/drawer{index}"
        ports_per = self.SLOTS // partitions
        if partitions == 1:
            self.switches = [PCIeSwitch(topology, f"{self.name}/switch",
                                        ports=ports_per)]
        else:
            self.switches = [
                PCIeSwitch(topology, f"{self.name}/switch{p}",
                           ports=ports_per)
                for p in range(partitions)
            ]
        self.slots = [Slot(index, i) for i in range(self.SLOTS)]
        #: host id -> [(port name, link, partition), ...] — a host may
        #: hold two connections to a partitioned drawer.
        self.hosts: dict[str, list[tuple[str, Link, int]]] = {}

    @property
    def switch(self) -> PCIeSwitch:
        """The (first) switch — unambiguous for unpartitioned drawers."""
        return self.switches[0]

    def partition_of_slot(self, slot_index: int) -> int:
        return slot_index * self.partitions // self.SLOTS

    def switch_for_slot(self, slot_index: int) -> PCIeSwitch:
        return self.switches[self.partition_of_slot(slot_index)]

    @property
    def connection_count(self) -> int:
        return sum(len(entries) for entries in self.hosts.values())

    def free_slot(self, partition: Optional[int] = None) -> Optional[Slot]:
        for slot in self.slots:
            if slot.occupied:
                continue
            if partition is not None \
                    and self.partition_of_slot(slot.index) != partition:
                continue
            return slot
        return None

    def slot_of(self, device: str) -> Optional[Slot]:
        for slot in self.slots:
            if slot.device == device:
                return slot
        return None

    def devices(self) -> list[str]:
        return [s.device for s in self.slots if s.device is not None]

    def allocated_to(self, host_id: str) -> list[str]:
        return [s.device for s in self.slots
                if s.device is not None and s.owner == host_id]


class Falcon4016:
    """The composable chassis: drawers, host ports, allocation logic."""

    HOST_PORTS = ("H1", "H2", "H3", "H4")
    DRAWERS = 2

    def __init__(self, topology: Topology, name: str = "falcon0",
                 mode: FalconMode = FalconMode.STANDARD,
                 on_event: Optional[Callable[[str, dict], None]] = None,
                 partitioned_drawers: frozenset[int] = frozenset()):
        self.topology = topology
        self.name = name
        self.mode = mode
        self._on_event = on_event
        self.drawers = [
            Drawer(topology, name, i,
                   partitions=2 if i in partitioned_drawers else 1)
            for i in range(self.DRAWERS)
        ]
        #: port name -> (host id, drawer index)
        self.port_map: dict[str, tuple[str, int]] = {}

    # -- events -----------------------------------------------------------
    def _emit(self, kind: str, **details: Any) -> None:
        if self._on_event is not None:
            self._on_event(kind, dict(details, falcon=self.name,
                                      time=self.topology.env.now))

    def set_event_sink(self, sink: Callable[[str, dict], None]) -> None:
        self._on_event = sink

    # -- mode ---------------------------------------------------------------
    def set_mode(self, mode: FalconMode) -> None:
        """Switch operating mode; current state must satisfy the new mode."""
        if mode == self.mode:
            return
        if mode == FalconMode.STANDARD:
            for drawer in self.drawers:
                if drawer.connection_count > 2:
                    raise FalconError(
                        f"{drawer.name} has {drawer.connection_count} "
                        "connections; standard mode allows at most 2 per "
                        "drawer")
        self.mode = mode
        self._emit("mode_changed", mode=mode.value)

    @property
    def max_hosts_per_drawer(self) -> int:
        return 2 if self.mode == FalconMode.STANDARD else 3

    # -- host connections -----------------------------------------------------
    def connect_host(self, port: str, host_id: str, host_rc_node: str,
                     drawer: int, spec: LinkSpec = CDFP_400G,
                     partition: int = 0) -> Link:
        """Cable a host's adapter into ``port``, serving ``drawer``.

        For a partitioned drawer, ``partition`` selects which 4-slot half
        this connection serves (the paper's dual-connection layout cables
        the *same* host to both partitions).
        """
        if port not in self.HOST_PORTS:
            raise FalconError(f"unknown host port {port!r}")
        if port in self.port_map:
            raise FalconError(f"port {port} is already in use")
        dr = self._drawer(drawer)
        if not 0 <= partition < dr.partitions:
            raise FalconError(
                f"{dr.name} has no partition {partition}")
        if dr.partitions > 1:
            # Each 4-slot partition exposes a single upstream port.
            for entries in dr.hosts.values():
                for _, _, used_partition in entries:
                    if used_partition == partition:
                        raise FalconError(
                            f"{dr.name} partition {partition} already has "
                            "an upstream connection")
        if host_id in dr.hosts and dr.partitions == 1:
            raise FalconError(
                f"host {host_id!r} is already connected to {dr.name}")
        if dr.connection_count >= self.max_hosts_per_drawer:
            raise FalconError(
                f"{dr.name} already has {dr.connection_count} connections "
                f"(mode {self.mode.value} allows "
                f"{self.max_hosts_per_drawer})")
        link = dr.switches[partition].connect_upstream(host_rc_node, spec)
        dr.hosts.setdefault(host_id, []).append((port, link, partition))
        self.port_map[port] = (host_id, drawer)
        self._emit("host_connected", port=port, host=host_id,
                   drawer=drawer, partition=partition)
        return link

    def connect_fabric_host(self, port: str, host_id: str,
                            fabric_node: str, drawer: int,
                            spec: LinkSpec = CDFP_400G) -> Link:
        """Admit a host to ``drawer`` over a shared fabric (spine) trunk.

        Leaf/spine cabling for multi-chassis fleets: the port's cable
        lands on a transit switch (``fabric_node``) rather than on the
        host's own adapter, and the host is reached *through* that
        fabric.  The first fabric connection of a drawer cables its
        switch to the spine — one physical trunk; every later host
        admitted over the same fabric shares the trunk instead of adding
        a cable, so all of the drawer's spine-bound traffic contends on
        it.  Port bookkeeping, per-mode connection limits, and
        allocation checks behave exactly as for :meth:`connect_host`.
        """
        if port not in self.HOST_PORTS:
            raise FalconError(f"unknown host port {port!r}")
        if port in self.port_map:
            raise FalconError(f"port {port} is already in use")
        dr = self._drawer(drawer)
        if dr.partitions > 1:
            raise FalconError(
                f"{dr.name} is partitioned; fabric trunks require an "
                "unpartitioned drawer")
        if host_id in dr.hosts:
            raise FalconError(
                f"host {host_id!r} is already connected to {dr.name}")
        if dr.connection_count >= self.max_hosts_per_drawer:
            raise FalconError(
                f"{dr.name} already has {dr.connection_count} connections "
                f"(mode {self.mode.value} allows "
                f"{self.max_hosts_per_drawer})")
        switch = dr.switches[0]
        if fabric_node in switch.upstream:
            link = switch.uplink_to(fabric_node)
        else:
            link = switch.connect_upstream(fabric_node, spec)
        dr.hosts.setdefault(host_id, []).append((port, link, 0))
        self.port_map[port] = (host_id, drawer)
        self._emit("host_connected", port=port, host=host_id,
                   drawer=drawer, partition=0, fabric=fabric_node)
        return link

    def disconnect_host(self, port: str) -> None:
        """Uncable a host port; the host's allocations in the drawer are
        released once its last connection goes."""
        if port not in self.port_map:
            raise FalconError(f"port {port} is not in use")
        host_id, drawer = self.port_map.pop(port)
        dr = self._drawer(drawer)
        entries = dr.hosts[host_id]
        index = next(i for i, (p, _, _) in enumerate(entries) if p == port)
        _, link, partition = entries.pop(index)
        if not entries:
            del dr.hosts[host_id]
            for slot in dr.slots:
                if slot.owner == host_id:
                    slot.owner = None
        # A fabric trunk is shared by every host admitted over it; only
        # physically uncable when the last sharer goes.
        still_shared = any(entry[1] is link
                           for remaining in dr.hosts.values()
                           for entry in remaining)
        if not still_shared:
            dr.switches[partition].disconnect_upstream(
                link.other(dr.switches[partition].name))
        self._emit("host_disconnected", port=port, host=host_id,
                   drawer=drawer)

    def hosts_of_drawer(self, drawer: int) -> list[str]:
        return list(self._drawer(drawer).hosts)

    # -- device install / remove ------------------------------------------------
    def install_device(self, device_node: str, drawer: int,
                       slot: Optional[int] = None,
                       spec: LinkSpec = PCIE_GEN4_X16) -> Slot:
        """Seat a device (an existing topology node) into a slot."""
        dr = self._drawer(drawer)
        if slot is None:
            target = dr.free_slot()
            if target is None:
                raise FalconError(f"{dr.name} has no free slots")
        else:
            if not 0 <= slot < Drawer.SLOTS:
                raise FalconError(f"slot index {slot} out of range")
            target = dr.slots[slot]
            if target.occupied:
                raise FalconError(f"{target.label} is occupied")
        for other in self.drawers:
            if other.slot_of(device_node) is not None:
                raise FalconError(
                    f"{device_node!r} is already installed in {other.name}")
        target.device = device_node
        target.link = dr.switch_for_slot(target.index).attach(device_node,
                                                              spec)
        self._emit("device_installed", device=device_node,
                   slot=target.label)
        return target

    def remove_device(self, device_node: str) -> None:
        """Unseat a device; it must not be allocated to a host."""
        slot = self._find_slot(device_node)
        if slot.owner is not None:
            raise FalconError(
                f"{device_node!r} is allocated to {slot.owner}; "
                "deallocate first")
        drawer = self.drawers[slot.drawer_index]
        drawer.switch_for_slot(slot.index).detach(device_node)
        slot.device = None
        slot.link = None
        self._emit("device_removed", device=device_node, slot=slot.label)

    # -- allocation -----------------------------------------------------------
    def allocate(self, device_node: str, host_id: str) -> None:
        """Logically hand a device to a connected host (hot-add)."""
        slot = self._find_slot(device_node)
        drawer = self.drawers[slot.drawer_index]
        if host_id not in drawer.hosts:
            raise FalconError(
                f"host {host_id!r} is not connected to {drawer.name}")
        if slot.owner is not None:
            raise FalconError(
                f"{device_node!r} is already allocated to {slot.owner}")
        if self.mode == FalconMode.STANDARD and len(drawer.hosts) == 2:
            # Two hosts split the drawer four/four.
            if len(drawer.allocated_to(host_id)) >= 4:
                raise FalconError(
                    f"standard mode with two hosts limits {host_id!r} to "
                    f"4 devices in {drawer.name}")
        slot.owner = host_id
        self._emit("device_allocated", device=device_node, host=host_id,
                   slot=slot.label)

    def deallocate(self, device_node: str) -> None:
        """Release a device from its host (hot-remove)."""
        slot = self._find_slot(device_node)
        if slot.owner is None:
            raise FalconError(f"{device_node!r} is not allocated")
        host = slot.owner
        slot.owner = None
        self._emit("device_deallocated", device=device_node, host=host,
                   slot=slot.label)

    def reallocate(self, device_node: str, host_id: str) -> None:
        """Move a device between hosts on the fly (advanced mode)."""
        if self.mode != FalconMode.ADVANCED:
            raise FalconError(
                "dynamic reallocation requires advanced mode")
        slot = self._find_slot(device_node)
        if slot.owner is not None:
            self.deallocate(device_node)
        self.allocate(device_node, host_id)

    def owner_of(self, device_node: str) -> Optional[str]:
        return self._find_slot(device_node).owner

    def devices_of(self, host_id: str) -> list[str]:
        out: list[str] = []
        for drawer in self.drawers:
            out.extend(drawer.allocated_to(host_id))
        return out

    def installed_devices(self) -> list[str]:
        out: list[str] = []
        for drawer in self.drawers:
            out.extend(drawer.devices())
        return out

    # -- traffic ------------------------------------------------------------
    def device_traffic(self, device_node: str, t0: float, t1: float
                       ) -> tuple[float, float]:
        """(ingress, egress) bytes/s at the device's slot over [t0, t1].

        Ingress is data flowing *into* the device, egress out of it —
        the paper's Fig. 12 metric for Falcon-attached GPUs.
        """
        slot = self._find_slot(device_node)
        link = slot.link
        assert link is not None
        drawer = self.drawers[slot.drawer_index]
        switch = drawer.switch_for_slot(slot.index).name
        ingress = link.mean_rate(switch, device_node, t0, t1)
        egress = link.mean_rate(device_node, switch, t0, t1)
        return ingress, egress

    def total_device_traffic(self, t0: float, t1: float,
                             devices: Optional[list[str]] = None
                             ) -> tuple[float, float]:
        """Summed (ingress, egress) bytes/s over installed devices."""
        targets = devices if devices is not None else self.installed_devices()
        totals = [self.device_traffic(d, t0, t1) for d in targets]
        if not totals:
            return 0.0, 0.0
        return (sum(t[0] for t in totals), sum(t[1] for t in totals))

    def port_traffic(self, port: str, t0: float, t1: float
                     ) -> tuple[float, float]:
        """(ingress, egress) bytes/s at a host port (toward the drawer)."""
        if port not in self.port_map:
            raise FalconError(f"port {port} is not in use")
        host_id, drawer = self.port_map[port]
        dr = self._drawer(drawer)
        port_name, link, partition = next(
            entry for entry in dr.hosts[host_id] if entry[0] == port)
        switch_name = dr.switches[partition].name
        host_node = link.other(switch_name)
        ingress = link.mean_rate(host_node, switch_name, t0, t1)
        egress = link.mean_rate(switch_name, host_node, t0, t1)
        return ingress, egress

    def register_metrics(self, registry) -> None:
        """Publish the chassis' port/slot telemetry into a MetricsRegistry.

        Per in-use host port and per occupied slot: both directional link
        byte counters, plus derived ingress/egress gauges (bytes/s over a
        window) — the registry view of the paper's Fig. 12 data.
        """
        for port, (host_id, drawer) in self.port_map.items():
            dr = self._drawer(drawer)
            link = next(entry[1] for entry in dr.hosts[host_id]
                        if entry[0] == port)
            prefix = f"fabric/{self.name}/{port}"
            link.register_metrics(registry, prefix)
            registry.gauge(
                f"{prefix}/ingress",
                lambda t0, t1, p=port: self.port_traffic(p, t0, t1)[0])
            registry.gauge(
                f"{prefix}/egress",
                lambda t0, t1, p=port: self.port_traffic(p, t0, t1)[1])
        for drawer in self.drawers:
            for slot in drawer.slots:
                if slot.device is None or slot.link is None:
                    continue
                prefix = f"fabric/{self.name}/{slot.label}"
                slot.link.register_metrics(registry, prefix)
                registry.gauge(
                    f"{prefix}/ingress",
                    lambda t0, t1, d=slot.device:
                    self.device_traffic(d, t0, t1)[0])
                registry.gauge(
                    f"{prefix}/egress",
                    lambda t0, t1, d=slot.device:
                    self.device_traffic(d, t0, t1)[1])

    # -- configuration import/export --------------------------------------------
    def export_config(self) -> dict:
        """Snapshot mode, cabling, slots, and allocations as plain data."""
        return {
            "name": self.name,
            "mode": self.mode.value,
            "ports": {port: {"host": host, "drawer": drawer}
                      for port, (host, drawer) in self.port_map.items()},
            "slots": [
                {
                    "drawer": slot.drawer_index,
                    "slot": slot.index,
                    "device": slot.device,
                    "owner": slot.owner,
                }
                for drawer in self.drawers for slot in drawer.slots
            ],
        }

    def apply_allocations(self, config: dict) -> None:
        """Re-apply the device->host allocations of an exported config.

        Cabling and slot population must already match; only ownership is
        changed.  This is the "import resource allocation" management
        operation.
        """
        if config.get("mode") != self.mode.value:
            raise FalconError(
                f"config mode {config.get('mode')!r} does not match "
                f"chassis mode {self.mode.value!r}")
        for entry in config.get("slots", []):
            dr = self._drawer(entry["drawer"])
            slot = dr.slots[entry["slot"]]
            if slot.device != entry["device"]:
                raise FalconError(
                    f"{slot.label}: installed device {slot.device!r} does "
                    f"not match config {entry['device']!r}")
        for drawer in self.drawers:
            for slot in drawer.slots:
                slot.owner = None
        for entry in config.get("slots", []):
            if entry["device"] is not None and entry["owner"] is not None:
                self.allocate(entry["device"], entry["owner"])
        self._emit("config_imported", slots=len(config.get("slots", [])))

    # -- helpers ----------------------------------------------------------
    def _drawer(self, index: int) -> Drawer:
        if not 0 <= index < len(self.drawers):
            raise FalconError(f"drawer index {index} out of range")
        return self.drawers[index]

    def _find_slot(self, device_node: str) -> Slot:
        for drawer in self.drawers:
            slot = drawer.slot_of(device_node)
            if slot is not None:
                return slot
        raise FalconError(f"{device_node!r} is not installed in {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        used = sum(1 for d in self.drawers for s in d.slots if s.occupied)
        return (f"<Falcon4016 {self.name} mode={self.mode.value} "
                f"{used}/16 slots>")
