"""NVLink hybrid cube mesh (paper Fig. 7).

Builds the 8-GPU DGX-1V NVLink 2.0 topology used by the host servers'
locally-attached V100 SXM2 GPUs.  Each GPU has six NVLink bricks spread
over four neighbours — two neighbours with a single link (NV1) and two
with a dual link (NV2):

======  ===========================
GPU     neighbours (link count)
======  ===========================
0       1 (1), 2 (1), 3 (2), 4 (2)
1       0 (1), 3 (1), 2 (2), 5 (2)
2       0 (1), 6 (1), 1 (2), 3 (2)
3       1 (1), 7 (1), 0 (2), 2 (2)
4       5 (1), 6 (1), 0 (2), 7 (2)
5       4 (1), 7 (1), 1 (2), 6 (2)
6       2 (1), 4 (1), 5 (2), 7 (2)
7       3 (1), 5 (1), 4 (2), 6 (2)
======  ===========================

The mean bidirectional P2P bandwidth over the sixteen adjacent pairs is
(8 x 2-link + 8 x 1-link)/16 ≈ 72 GB/s, matching Table IV's L-L figure.

A Hamiltonian cycle over NVLink edges (``RING_ORDER``) is exported for
NCCL-style ring collectives, so every ring hop stays on NVLink.
"""

from __future__ import annotations

from typing import Sequence

from .link import Link, NVLINK2_X1, NVLINK2_X2
from .topology import Topology

__all__ = ["HYBRID_CUBE_MESH_EDGES", "RING_ORDER", "build_hybrid_cube_mesh",
           "adjacent_pairs"]

#: (gpu_a, gpu_b, link_count) edges of the DGX-1V hybrid cube mesh.
HYBRID_CUBE_MESH_EDGES: tuple[tuple[int, int, int], ...] = (
    (0, 1, 1), (0, 2, 1), (0, 3, 2), (0, 4, 2),
    (1, 2, 2), (1, 3, 1), (1, 5, 2),
    (2, 3, 2), (2, 6, 1),
    (3, 7, 1),
    (4, 5, 1), (4, 6, 1), (4, 7, 2),
    (5, 6, 2), (5, 7, 1),
    (6, 7, 2),
)

#: A Hamiltonian cycle over NVLink edges (every consecutive pair,
#: including the wrap-around, is directly NVLink-connected).
RING_ORDER: tuple[int, ...] = (0, 4, 6, 2, 3, 7, 5, 1)


def build_hybrid_cube_mesh(topology: Topology,
                           gpu_nodes: Sequence[str]) -> list[Link]:
    """Wire 8 existing GPU nodes into the hybrid cube mesh.

    Parameters
    ----------
    topology:
        The fabric to add NVLink links to.
    gpu_nodes:
        Names of exactly eight GPU nodes, indexed 0..7 in mesh order.

    Returns the created links.
    """
    if len(gpu_nodes) != 8:
        raise ValueError(
            f"hybrid cube mesh needs exactly 8 GPUs, got {len(gpu_nodes)}")
    links = []
    for a, b, count in HYBRID_CUBE_MESH_EDGES:
        spec = NVLINK2_X2 if count == 2 else NVLINK2_X1
        links.append(topology.add_link(spec, gpu_nodes[a], gpu_nodes[b]))
    return links


def adjacent_pairs() -> list[tuple[int, int, int]]:
    """All NVLink-adjacent GPU index pairs with their link counts."""
    return [(a, b, count) for a, b, count in HYBRID_CUBE_MESH_EDGES]
