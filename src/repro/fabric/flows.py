"""Fluid flow model with max-min fair bandwidth sharing.

Data movement in the composable system is modelled as *fluid flows*: a
transfer of ``nbytes`` over a sequence of directed link segments streams
at a rate determined by max-min fair sharing of every link direction it
crosses (progressive filling / water-filling).  Whenever the set of active
flows changes, affected rates are recomputed and the next completion is
rescheduled — the classic event-driven fluid simulation used by
flow-level network simulators.

Rate assignment is **incremental** (:class:`~repro.fabric.maxmin.
MaxMinSolver`): a flow add/remove/kill or a capacity change re-solves
only the affected connected component of the contention graph, so a
fleet of independent jobs sharing one scheduler stays O(component), not
O(all flows), per event.  The batch water-filler
(:func:`~repro.fabric.maxmin.water_fill`) is kept as the reference
oracle — construct the scheduler with ``incremental=False`` to force
full re-solves, or call :meth:`FlowScheduler.assert_rates_equivalent`
to cross-check the incremental state at 1e-9.

This captures the two congestion phenomena the paper observes:

- multiple GPUs funnelling through one Falcon host port share its
  bandwidth fairly, and
- p2p traffic inside a drawer does not contend with host-port traffic
  (separate links).

Per-segment byte accounting is pushed into each link's directional
counters on every scheduler update, so port ingress/egress rate series
(paper Fig. 12) are exact for piecewise-constant rates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..sim import Environment, Event
from .link import Link
from .maxmin import MaxMinSolver, apply_rates, water_fill

__all__ = ["FlowScheduler", "Flow", "Segment"]

#: Bytes below which a flow is considered drained (guards float error).
_EPSILON_BYTES = 1e-6
#: Remaining stream time below which a flow is force-completed.  Without
#: this, float rounding can leave a residual whose completion horizon is
#: smaller than the clock's ulp, so simulated time stops advancing and the
#: scheduler would spin forever.
_EPSILON_SECONDS = 1e-9


@dataclass(frozen=True)
class Segment:
    """One directed hop of a flow: ``src -> dst`` over ``link``."""

    link: Link
    src: str
    dst: str
    #: Hashable identity of the directed capacity this segment uses.
    #: Precomputed: the rate solver touches it millions of times.
    key: tuple = None          # type: ignore[assignment]
    #: The directional byte counter (cached for the accounting hot path).
    counter: object = None     # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.link.direction(self.src, self.dst)  # validates
        object.__setattr__(self, "key",
                           (self.link.id, self.src, self.dst))
        object.__setattr__(self, "counter",
                           self.link.counters[(self.src, self.dst)])

    @property
    def capacity(self) -> float:
        """Current per-direction bandwidth (reads the live link spec, so
        lane retraining applies to in-flight flows)."""
        return self.link.spec.bandwidth


def _link_keys(link: Link) -> tuple[tuple, tuple]:
    """Both directed-capacity keys of a link (the solver's index keys)."""
    return ((link.id, link.a, link.b), (link.id, link.b, link.a))


#: Fallback id source for flows constructed outside a scheduler (tests,
#: ad-hoc solver experiments).  Scheduler-owned flows draw from the
#: scheduler's own counter so runs are deterministic regardless of what
#: other schedulers the process ran before.
_flow_ids = itertools.count()


class Flow:
    """An active transfer streaming over a set of directed segments."""

    def __init__(self, segments: Sequence[Segment], nbytes: float,
                 done: Event, label: str = "",
                 flow_id: Optional[int] = None):
        self.id = next(_flow_ids) if flow_id is None else flow_id
        self.segments = tuple(segments)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.done = done
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Flow {self.id} {self.label!r} "
                f"{self.remaining:.0f}/{self.nbytes:.0f}B @ {self.rate:.3g}B/s>")


class FlowScheduler:
    """Event-driven fluid simulation of concurrent transfers.

    Usage::

        done = scheduler.start_flow(segments, nbytes)
        yield done          # fires when the last byte is delivered

    ``incremental=False`` keeps the per-link indexes but re-solves every
    flow at every recompute — the batch oracle mode the equivalence
    tests and the churn microbench compare against.
    """

    def __init__(self, env: Environment, incremental: bool = True):
        self.env = env
        self.incremental = incremental
        self._flows: dict[int, Flow] = {}
        self._ids = itertools.count()
        self._solver = MaxMinSolver()
        self._last_update = env.now
        self._generation = 0
        #: Completed flow count (introspection / tests).
        self.completed = 0

    @property
    def active_flows(self) -> list[Flow]:
        return list(self._flows.values())

    def poke(self, link: Optional[Link] = None) -> None:
        """Force an immediate rate recomputation.

        Call after mutating link capacities (retrain/degradation) so
        in-flight flows adopt the new rates without waiting for the next
        natural arrival/completion event.  Passing the changed ``link``
        confines the re-solve to its contention component; with no
        argument every component is re-solved (unknown change).
        """
        self._advance()
        if link is None:
            self._solver.touch_all()
        else:
            self._solver.touch(*_link_keys(link))
        self._recompute()

    def kill_flows_on(self, link: Link, cause: Exception) -> int:
        """Fail every in-flight flow crossing ``link`` (cable pull).

        Each affected flow's done event fails with ``cause``; waiting
        processes see the exception at their ``yield``.  Returns the
        number of flows killed.  Victims come from the per-link flow
        index — O(victims), not O(flows x segments).
        """
        self._advance()
        victims = sorted(self._solver.flows_on(*_link_keys(link)),
                         key=lambda flow: flow.id)
        for flow in victims:
            del self._flows[flow.id]
            self._solver.remove(flow)
            flow.done.fail(cause)
        if victims:
            self._recompute()
        return len(victims)

    def start_flow(self, segments: Iterable[Segment], nbytes: float,
                   label: str = "") -> Event:
        """Begin streaming ``nbytes`` over ``segments``; returns done event.

        A zero-byte or zero-segment flow completes immediately (the caller
        is responsible for any fixed latency; see ``Topology.transfer``).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        done = self.env.event()
        segments = tuple(segments)
        if nbytes <= _EPSILON_BYTES or not segments:
            # Nothing to stream: still account the bytes for traffic stats.
            for seg in segments:
                seg.link.account(self.env.now, seg.src, seg.dst, nbytes)
            done.succeed(nbytes)
            self.completed += 1
            return done
        flow = Flow(segments, nbytes, done, label,
                    flow_id=next(self._ids))
        self._advance()
        self._flows[flow.id] = flow
        self._solver.add(flow)
        self._recompute()
        return done

    # -- equivalence oracle ------------------------------------------------
    def assert_rates_equivalent(self, rtol: float = 1e-9) -> None:
        """Cross-check current rates against batch water-filling."""
        self._solver.assert_equivalent(rtol)

    # -- internals -------------------------------------------------------
    def _advance(self) -> None:
        """Deliver bytes accrued since the last update; account per link."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for flow in self._flows.values():
            delivered = min(flow.remaining, flow.rate * dt)
            if delivered > 0:
                flow.remaining -= delivered
                for seg in flow.segments:
                    seg.counter.add(now, delivered)

    def _recompute(self) -> None:
        """Complete drained flows, re-assign fair rates, re-arm the timer."""
        self._complete_drained()
        if self.incremental:
            self._solver.solve()
        else:
            self._solver.solve_full()
        self._arm_timer()

    @staticmethod
    def _assign_rates(flows: Iterable[Flow]) -> None:
        """Batch progressive filling (the reference oracle, kept for
        direct callers; see :func:`repro.fabric.maxmin.water_fill`)."""
        apply_rates(flows)

    def _complete_drained(self) -> None:
        done_ids = [fid for fid, f in self._flows.items()
                    if self._is_drained(f)]
        now = self.env.now
        for fid in done_ids:
            flow = self._flows.pop(fid)
            self._solver.remove(flow)
            if flow.remaining > 0:
                # Account the float-rounding residual so byte conservation
                # holds exactly on the link counters.
                for seg in flow.segments:
                    seg.link.account(now, seg.src, seg.dst, flow.remaining)
                flow.remaining = 0.0
            self.completed += 1
            flow.done.succeed(flow.nbytes)

    @staticmethod
    def _is_drained(flow: Flow) -> bool:
        if flow.remaining <= _EPSILON_BYTES:
            return True
        return flow.rate > 0 and flow.remaining / flow.rate <= _EPSILON_SECONDS

    def _arm_timer(self) -> None:
        self._generation += 1
        if not self._flows:
            return
        gen = self._generation
        horizon = min(f.remaining / f.rate for f in self._flows.values()
                      if f.rate > 0)
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _evt: self._on_timer(gen))

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later recompute
        self._advance()
        self._recompute()
