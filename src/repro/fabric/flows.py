"""Fluid flow model with max-min fair bandwidth sharing.

Data movement in the composable system is modelled as *fluid flows*: a
transfer of ``nbytes`` over a sequence of directed link segments streams
at a rate determined by max-min fair sharing of every link direction it
crosses (progressive filling / water-filling).  Whenever the set of active
flows changes, all rates are recomputed and the next completion is
rescheduled — the classic event-driven fluid simulation used by
flow-level network simulators.

This captures the two congestion phenomena the paper observes:

- multiple GPUs funnelling through one Falcon host port share its
  bandwidth fairly, and
- p2p traffic inside a drawer does not contend with host-port traffic
  (separate links).

Per-segment byte accounting is pushed into each link's directional
counters on every scheduler update, so port ingress/egress rate series
(paper Fig. 12) are exact for piecewise-constant rates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..sim import Environment, Event
from .link import Link

__all__ = ["FlowScheduler", "Flow", "Segment"]

#: Bytes below which a flow is considered drained (guards float error).
_EPSILON_BYTES = 1e-6
#: Remaining stream time below which a flow is force-completed.  Without
#: this, float rounding can leave a residual whose completion horizon is
#: smaller than the clock's ulp, so simulated time stops advancing and the
#: scheduler would spin forever.
_EPSILON_SECONDS = 1e-9


@dataclass(frozen=True)
class Segment:
    """One directed hop of a flow: ``src -> dst`` over ``link``."""

    link: Link
    src: str
    dst: str
    #: Hashable identity of the directed capacity this segment uses.
    #: Precomputed: the rate solver touches it millions of times.
    key: tuple = None          # type: ignore[assignment]
    #: The directional byte counter (cached for the accounting hot path).
    counter: object = None     # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.link.direction(self.src, self.dst)  # validates
        object.__setattr__(self, "key",
                           (self.link.id, self.src, self.dst))
        object.__setattr__(self, "counter",
                           self.link.counters[(self.src, self.dst)])

    @property
    def capacity(self) -> float:
        """Current per-direction bandwidth (reads the live link spec, so
        lane retraining applies to in-flight flows)."""
        return self.link.spec.bandwidth


_flow_ids = itertools.count()


class Flow:
    """An active transfer streaming over a set of directed segments."""

    def __init__(self, segments: Sequence[Segment], nbytes: float,
                 done: Event, label: str = ""):
        self.id = next(_flow_ids)
        self.segments = tuple(segments)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.done = done
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Flow {self.id} {self.label!r} "
                f"{self.remaining:.0f}/{self.nbytes:.0f}B @ {self.rate:.3g}B/s>")


class FlowScheduler:
    """Event-driven fluid simulation of concurrent transfers.

    Usage::

        done = scheduler.start_flow(segments, nbytes)
        yield done          # fires when the last byte is delivered
    """

    def __init__(self, env: Environment):
        self.env = env
        self._flows: dict[int, Flow] = {}
        self._last_update = env.now
        self._generation = 0
        #: Completed flow count (introspection / tests).
        self.completed = 0

    @property
    def active_flows(self) -> list[Flow]:
        return list(self._flows.values())

    def poke(self) -> None:
        """Force an immediate rate recomputation.

        Call after mutating link capacities (retrain/degradation) so
        in-flight flows adopt the new rates without waiting for the next
        natural arrival/completion event.
        """
        self._advance()
        self._recompute()

    def kill_flows_on(self, link, cause: Exception) -> int:
        """Fail every in-flight flow crossing ``link`` (cable pull).

        Each affected flow's done event fails with ``cause``; waiting
        processes see the exception at their ``yield``.  Returns the
        number of flows killed.
        """
        self._advance()
        victims = [f for f in self._flows.values()
                   if any(seg.link is link for seg in f.segments)]
        for flow in victims:
            del self._flows[flow.id]
            flow.done.fail(cause)
        if victims:
            self._recompute()
        return len(victims)

    def start_flow(self, segments: Iterable[Segment], nbytes: float,
                   label: str = "") -> Event:
        """Begin streaming ``nbytes`` over ``segments``; returns done event.

        A zero-byte or zero-segment flow completes immediately (the caller
        is responsible for any fixed latency; see ``Topology.transfer``).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        done = self.env.event()
        segments = tuple(segments)
        if nbytes <= _EPSILON_BYTES or not segments:
            # Nothing to stream: still account the bytes for traffic stats.
            for seg in segments:
                seg.link.account(self.env.now, seg.src, seg.dst, nbytes)
            done.succeed(nbytes)
            self.completed += 1
            return done
        flow = Flow(segments, nbytes, done, label)
        self._advance()
        self._flows[flow.id] = flow
        self._recompute()
        return done

    # -- internals -------------------------------------------------------
    def _advance(self) -> None:
        """Deliver bytes accrued since the last update; account per link."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for flow in self._flows.values():
            delivered = min(flow.remaining, flow.rate * dt)
            if delivered > 0:
                flow.remaining -= delivered
                for seg in flow.segments:
                    seg.counter.add(now, delivered)

    def _recompute(self) -> None:
        """Complete drained flows, re-assign fair rates, re-arm the timer."""
        self._complete_drained()
        self._assign_rates(self._flows.values())
        self._arm_timer()

    @staticmethod
    def _assign_rates(flows: Iterable[Flow]) -> None:
        """Progressive filling: water-fill rates subject to link capacity."""
        unfrozen: set[Flow] = set(flows)
        # Residual capacity and unfrozen users per directed link.
        residual: dict[tuple, float] = {}
        users: dict[tuple, set[Flow]] = {}
        for flow in unfrozen:
            for seg in flow.segments:
                residual.setdefault(seg.key, seg.capacity)
                users.setdefault(seg.key, set()).add(flow)

        while unfrozen:
            # Find the bottleneck: the directed link with the smallest
            # equal share among its unfrozen users.
            best_key = None
            best_share = float("inf")
            for key, flows_on in users.items():
                if not flows_on:
                    continue
                share = residual[key] / len(flows_on)
                if share < best_share:
                    best_share = share
                    best_key = key
            if best_key is None:
                # Remaining flows cross no constrained link.
                for flow in unfrozen:
                    flow.rate = float("inf")
                break
            frozen_now = list(users[best_key])
            for flow in frozen_now:
                flow.rate = best_share
                unfrozen.discard(flow)
                for seg in flow.segments:
                    users[seg.key].discard(flow)
                    if seg.key != best_key:
                        residual[seg.key] = max(
                            0.0, residual[seg.key] - best_share)
            residual[best_key] = 0.0
            users[best_key].clear()

    def _complete_drained(self) -> None:
        done_ids = [fid for fid, f in self._flows.items()
                    if self._is_drained(f)]
        now = self.env.now
        for fid in done_ids:
            flow = self._flows.pop(fid)
            if flow.remaining > 0:
                # Account the float-rounding residual so byte conservation
                # holds exactly on the link counters.
                for seg in flow.segments:
                    seg.link.account(now, seg.src, seg.dst, flow.remaining)
                flow.remaining = 0.0
            self.completed += 1
            flow.done.succeed(flow.nbytes)

    @staticmethod
    def _is_drained(flow: Flow) -> bool:
        if flow.remaining <= _EPSILON_BYTES:
            return True
        return flow.rate > 0 and flow.remaining / flow.rate <= _EPSILON_SECONDS

    def _arm_timer(self) -> None:
        self._generation += 1
        if not self._flows:
            return
        gen = self._generation
        horizon = min(f.remaining / f.rate for f in self._flows.values()
                      if f.rate > 0)
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _evt: self._on_timer(gen))

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later recompute
        self._advance()
        self._recompute()
