"""Interconnect fabric: links, flows, topology, NVLink mesh, Falcon 4016.

This package models everything between devices: link specifications
(:mod:`~repro.fabric.link`), a max-min fair fluid-flow bandwidth model
(:mod:`~repro.fabric.flows`), a routable topology graph with dynamic
attach/detach (:mod:`~repro.fabric.topology`), the DGX-1V NVLink hybrid
cube mesh (:mod:`~repro.fabric.nvlink`), PCIe switches and root complexes
(:mod:`~repro.fabric.pcie`), the Falcon 4016 composable chassis
(:mod:`~repro.fabric.falcon`), and traffic aggregation helpers
(:mod:`~repro.fabric.traffic`).
"""

from .falcon import Drawer, Falcon4016, FalconError, FalconMode, Slot
from .flows import Flow, FlowScheduler, Segment
from .maxmin import MaxMinSolver, water_fill
from .link import (
    CDFP_400G,
    DDR4_CHANNEL,
    ETH_10G,
    GB,
    GIB,
    Link,
    LinkSpec,
    NVLINK2_X1,
    NVLINK2_X2,
    PCIE_GEN3_X16,
    PCIE_GEN4_X16,
    PCIE_GEN4_X4,
    PCIE_GEN4_X8,
    Protocol,
    SATA3,
    US,
)
from .nvlink import HYBRID_CUBE_MESH_EDGES, RING_ORDER, build_hybrid_cube_mesh
from .pcie import PCIeSwitch, RootComplex
from .topology import (
    DeviceFailure,
    LinkFailure,
    NoRouteError,
    Node,
    Route,
    Topology,
)
from .traffic import NodeTraffic, node_rate_series, node_traffic

__all__ = [
    "Link",
    "LinkSpec",
    "Protocol",
    "GB",
    "GIB",
    "US",
    "PCIE_GEN3_X16",
    "PCIE_GEN4_X4",
    "PCIE_GEN4_X8",
    "PCIE_GEN4_X16",
    "NVLINK2_X1",
    "NVLINK2_X2",
    "CDFP_400G",
    "ETH_10G",
    "SATA3",
    "DDR4_CHANNEL",
    "Flow",
    "FlowScheduler",
    "MaxMinSolver",
    "Segment",
    "water_fill",
    "Topology",
    "Node",
    "Route",
    "NoRouteError",
    "LinkFailure",
    "DeviceFailure",
    "PCIeSwitch",
    "RootComplex",
    "Falcon4016",
    "FalconMode",
    "FalconError",
    "Drawer",
    "Slot",
    "HYBRID_CUBE_MESH_EDGES",
    "RING_ORDER",
    "build_hybrid_cube_mesh",
    "NodeTraffic",
    "node_traffic",
    "node_rate_series",
]
