"""Interconnect link models.

A :class:`LinkSpec` describes the physical characteristics of one class of
link (protocol, lane count, per-direction bandwidth, latency).  A
:class:`Link` is one *instance* of a spec wired between two topology nodes,
carrying per-direction traffic counters so that fabric port statistics
(paper Fig. 12 — ingress/egress GB/s on Falcon ports) can be derived.

Bandwidth figures are *effective payload* bandwidths: raw signalling rate
times protocol efficiency (encoding, DLLP/TLP framing for PCIe; flit
overhead for NVLink).  The catalog constants are calibrated so that the
microbenchmarks in :mod:`repro.experiments.microbench` land on the paper's
Table IV (L-L 72.37 GB/s, F-L 19.64 GB/s, F-F 24.47 GB/s bidirectional).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..sim import CounterMonitor

__all__ = [
    "Protocol",
    "LinkSpec",
    "Link",
    "PCIE_GEN3_X16",
    "PCIE_GEN4_X4",
    "PCIE_GEN4_X8",
    "PCIE_GEN4_X16",
    "NVLINK2_X1",
    "NVLINK2_X2",
    "CDFP_400G",
    "ETH_10G",
    "SATA3",
    "DDR4_CHANNEL",
    "GB",
    "GIB",
    "US",
]

#: One gigabyte (decimal, as used by bandwidth figures).
GB = 1e9
#: One gibibyte.
GIB = 2.0 ** 30
#: One microsecond in seconds.
US = 1e-6


class Protocol(str, Enum):
    """Link-layer protocol families recognized by the fabric."""

    PCIE3 = "PCIe 3.0"
    PCIE4 = "PCIe 4.0"
    NVLINK2 = "NVLink"
    CDFP = "CDFP"
    ETHERNET = "Ethernet"
    SATA = "SATA"
    MEMORY = "DDR4"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LinkSpec:
    """Physical characteristics of one class of link.

    Attributes
    ----------
    name:
        Human-readable spec name, e.g. ``"PCIe 4.0 x16"``.
    protocol:
        The :class:`Protocol` family.
    lanes:
        Lane (or sub-link) count.
    bandwidth:
        Effective payload bandwidth *per direction*, bytes/second.
    latency:
        One-way propagation + protocol latency, seconds.
    hop_penalty:
        Extra latency added per switch/retimer hop this link type implies
        (e.g. crossing a Falcon host adapter), seconds.
    """

    name: str
    protocol: Protocol
    lanes: int
    bandwidth: float
    latency: float
    hop_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError(f"lanes must be positive, got {self.lanes}")
        if self.bandwidth <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0 or self.hop_penalty < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def bidirectional_bandwidth(self) -> float:
        """Aggregate payload bandwidth with both directions saturated."""
        return 2.0 * self.bandwidth

    def scaled(self, lanes: int) -> "LinkSpec":
        """A spec with a different lane count, bandwidth scaled linearly."""
        if lanes <= 0:
            raise ValueError("lanes must be positive")
        factor = lanes / self.lanes
        return replace(
            self,
            name=_relane(self.name, lanes),
            lanes=lanes,
            bandwidth=self.bandwidth * factor,
        )


def _relane(name: str, lanes: int) -> str:
    base = name.rsplit(" x", 1)[0]
    return f"{base} x{lanes}"


# ---------------------------------------------------------------------------
# Catalog.  Bandwidths are effective payload bytes/s per direction.
#
# PCIe 4.0 x16: 31.5 GB/s raw; ~78% sustained payload efficiency for large
# DMA reads/writes through one switch -> 12.3 GB/s/dir measured on the
# falcon path gives Table IV's F-F 24.47 GB/s bidirectional.
# Crossing the host adapter (F-L) pays an extra efficiency penalty, modelled
# as the CDFP host-port spec below.
# NVLink2: 25 GB/s/dir raw per link, ~92% payload -> a 2-link pair measures
# ~92 GB/s bidirectional and a 1-link pair ~46 GB/s; the hybrid-cube-mesh
# average over adjacent pairs is ~72 GB/s (Table IV L-L 72.37).
# ---------------------------------------------------------------------------

PCIE_GEN3_X16 = LinkSpec(
    name="PCIe 3.0 x16",
    protocol=Protocol.PCIE3,
    lanes=16,
    bandwidth=12.0 * GB,
    latency=0.30 * US,
)

PCIE_GEN4_X16 = LinkSpec(
    name="PCIe 4.0 x16",
    protocol=Protocol.PCIE4,
    lanes=16,
    bandwidth=12.3 * GB,
    latency=0.39 * US,
)

PCIE_GEN4_X8 = PCIE_GEN4_X16.scaled(8)
PCIE_GEN4_X4 = PCIE_GEN4_X16.scaled(4)

NVLINK2_X1 = LinkSpec(
    name="NVLink 2.0 x1",
    protocol=Protocol.NVLINK2,
    lanes=1,
    bandwidth=24.1 * GB,
    latency=0.55 * US,
)

NVLINK2_X2 = LinkSpec(
    name="NVLink 2.0 x2",
    protocol=Protocol.NVLINK2,
    lanes=2,
    bandwidth=48.2 * GB,
    latency=0.55 * US,
)

#: Falcon host port: 400 Gb/s CDFP cable + low-profile PCIe 4.0 x16 host
#: adapter.  The adapter crossing costs protocol conversion efficiency and
#: latency, which is why F-L bandwidth (19.64 GB/s) is below F-F (24.47).
CDFP_400G = LinkSpec(
    name="CDFP 400G host link",
    protocol=Protocol.CDFP,
    lanes=16,
    bandwidth=9.85 * GB,
    latency=0.22 * US,
    hop_penalty=0.15 * US,
)

ETH_10G = LinkSpec(
    name="10GbE",
    protocol=Protocol.ETHERNET,
    lanes=1,
    bandwidth=1.15 * GB,
    latency=8.0 * US,
)

SATA3 = LinkSpec(
    name="SATA 3",
    protocol=Protocol.SATA,
    lanes=1,
    bandwidth=0.55 * GB,
    latency=50.0 * US,
)

DDR4_CHANNEL = LinkSpec(
    name="DDR4-2666 channel",
    protocol=Protocol.MEMORY,
    lanes=1,
    bandwidth=21.3 * GB,
    latency=0.08 * US,
)


_link_ids = itertools.count()


class Link:
    """One physical link instance between two topology nodes.

    Links are full duplex: each direction has independent capacity and
    independent traffic counters.  Directions are identified by the
    endpoint names: traffic ``a -> b`` is egress at ``a`` and ingress at
    ``b``.
    """

    def __init__(self, spec: LinkSpec, a: str, b: str,
                 name: Optional[str] = None):
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        self.spec = spec
        #: The spec the link was built with — what a full repair restores.
        self.original_spec = spec
        #: True while the link is hard-failed (cable pulled).
        self.failed = False
        self.a = a
        self.b = b
        self.id = next(_link_ids)
        self.name = name or f"{spec.name}[{a}<->{b}]"
        # Byte counters per direction, keyed by (src, dst).
        self.counters: dict[tuple[str, str], CounterMonitor] = {
            (a, b): CounterMonitor(f"{self.name}:{a}->{b}"),
            (b, a): CounterMonitor(f"{self.name}:{b}->{a}"),
        }

    @property
    def endpoints(self) -> tuple[str, str]:
        return (self.a, self.b)

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self.name}")

    def direction(self, src: str, dst: str) -> tuple[str, str]:
        """Validate and normalize a (src, dst) direction key."""
        if (src, dst) not in self.counters:
            raise ValueError(
                f"({src!r}, {dst!r}) is not a direction of {self.name}")
        return (src, dst)

    def account(self, time: float, src: str, dst: str, nbytes: float) -> None:
        """Record ``nbytes`` transferred ``src -> dst`` at ``time``."""
        self.counters[self.direction(src, dst)].add(time, nbytes)

    def bytes_moved(self, src: str, dst: str) -> float:
        """Total bytes moved in the given direction so far."""
        return self.counters[self.direction(src, dst)].total

    def mean_rate(self, src: str, dst: str, t0: float, t1: float) -> float:
        """Average bytes/s in the given direction over [t0, t1]."""
        return self.counters[self.direction(src, dst)].mean_rate(t0, t1)

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish both directional byte counters into a registry.

        Names are ``{prefix}/{src}->{dst}`` — e.g.
        ``fabric/falcon0/H1/host0/rc->falcon0/drawer0/switch``.
        """
        for (src, dst), counter in self.counters.items():
            registry.attach(f"{prefix}/{src}->{dst}", counter)

    def retrain(self, spec: LinkSpec) -> None:
        """Replace the link's spec in place (lane degradation/recovery).

        PCIe links that accumulate correctable errors retrain at reduced
        width (x16 -> x8 -> x4); the fluid-flow scheduler picks the new
        capacity up at its next rate recomputation (see
        :meth:`~repro.fabric.flows.FlowScheduler.poke`).
        """
        self.spec = spec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name}>"
