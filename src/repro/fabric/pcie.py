"""PCIe plumbing: root complexes and switches.

Thin object wrappers over topology nodes that keep track of which devices
hang off which upstream component, mirroring how a PCIe tree enumerates.
These are the building blocks from which hosts
(:mod:`repro.devices.host`) and the Falcon chassis
(:mod:`repro.fabric.falcon`) are assembled.
"""

from __future__ import annotations

from typing import Optional

from .link import Link, LinkSpec, PCIE_GEN4_X16
from .topology import Topology

__all__ = ["RootComplex", "PCIeSwitch"]


class RootComplex:
    """A host CPU's PCIe root complex (one per socket pair, simplified)."""

    def __init__(self, topology: Topology, name: str):
        self.topology = topology
        self.name = name
        topology.add_node(name, kind="rc", transit=True)
        self._children: dict[str, Link] = {}

    def attach(self, device_node: str,
               spec: LinkSpec = PCIE_GEN4_X16) -> Link:
        """Attach an existing node directly below this root complex."""
        if device_node in self._children:
            raise ValueError(f"{device_node!r} already attached to {self.name}")
        link = self.topology.add_link(spec, self.name, device_node)
        self._children[device_node] = link
        return link

    def detach(self, device_node: str) -> None:
        """Hot-remove a directly attached node."""
        link = self._children.pop(device_node, None)
        if link is None:
            raise ValueError(f"{device_node!r} is not attached to {self.name}")
        self.topology.remove_link(link)

    @property
    def children(self) -> list[str]:
        return list(self._children)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RootComplex {self.name} children={len(self._children)}>"


class PCIeSwitch:
    """A PCIe switch chip with a bounded number of downstream ports."""

    def __init__(self, topology: Topology, name: str, ports: int = 8,
                 port_spec: LinkSpec = PCIE_GEN4_X16):
        if ports <= 0:
            raise ValueError("a switch needs at least one port")
        self.topology = topology
        self.name = name
        self.ports = ports
        self.port_spec = port_spec
        topology.add_node(name, kind="pcie-switch", transit=True)
        self._downstream: dict[str, Link] = {}
        self._upstream: dict[str, Link] = {}

    @property
    def free_ports(self) -> int:
        return self.ports - len(self._downstream)

    @property
    def downstream(self) -> list[str]:
        return list(self._downstream)

    @property
    def upstream(self) -> list[str]:
        return list(self._upstream)

    def connect_upstream(self, node: str, spec: LinkSpec) -> Link:
        """Connect toward a host (upstream ports are not counted as slots)."""
        if node in self._upstream:
            raise ValueError(f"{node!r} is already upstream of {self.name}")
        link = self.topology.add_link(spec, self.name, node)
        self._upstream[node] = link
        return link

    def disconnect_upstream(self, node: str) -> None:
        link = self._upstream.pop(node, None)
        if link is None:
            raise ValueError(f"{node!r} is not upstream of {self.name}")
        self.topology.remove_link(link)

    def uplink_to(self, node: str) -> Link:
        """The upstream link toward ``node`` (KeyError if not cabled)."""
        return self._upstream[node]

    def attach(self, device_node: str,
               spec: Optional[LinkSpec] = None) -> Link:
        """Plug a device into a free downstream port."""
        if self.free_ports <= 0:
            raise ValueError(f"switch {self.name} has no free ports")
        if device_node in self._downstream:
            raise ValueError(f"{device_node!r} already on {self.name}")
        link = self.topology.add_link(spec or self.port_spec,
                                      self.name, device_node)
        self._downstream[device_node] = link
        return link

    def detach(self, device_node: str) -> None:
        """Hot-remove a downstream device."""
        link = self._downstream.pop(device_node, None)
        if link is None:
            raise ValueError(f"{device_node!r} is not on {self.name}")
        self.topology.remove_link(link)

    def link_to(self, device_node: str) -> Link:
        return self._downstream[device_node]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PCIeSwitch {self.name} "
                f"{len(self._downstream)}/{self.ports} ports used>")
