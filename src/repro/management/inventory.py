"""Device inventory: hot-plug spares for fault recovery.

The Falcon chassis tracks *node names* in slots; recovery code needs the
actual device objects (a :class:`~repro.devices.gpu.GPU` to rebuild a
communicator around).  The :class:`Inventory` keeps that mapping and
wraps the MCS attach/detach operations into the one move a fault-
tolerant runtime cares about: *replace this dead GPU with a spare* —
the composable-infrastructure recovery story the paper's hot-plug
capability enables (a failed device is deallocated and a standby device
from the same chassis is allocated in its place, no reboot).
"""

from __future__ import annotations

from typing import Optional

from ..fabric.falcon import Falcon4016, FalconError
from .mcs import ManagementCenterServer

__all__ = ["Inventory", "InventoryError"]


class InventoryError(Exception):
    """No suitable spare, or the device is not inventory-managed."""


class Inventory:
    """Registry of chassis-installed devices and their spare pool."""

    def __init__(self, mcs: ManagementCenterServer, falcon: Falcon4016,
                 actor: str = "admin"):
        self.mcs = mcs
        self.falcon = falcon
        #: MCS account used for recovery operations (audit trail).
        self.actor = actor
        self._devices: dict[str, object] = {}

    # -- registry ---------------------------------------------------------
    def register_gpu(self, gpu) -> None:
        """Track a chassis-installed GPU (allocated or spare)."""
        self._devices[gpu.name] = gpu

    def gpu(self, name: str):
        """The device object for a registered node name."""
        device = self._devices.get(name)
        if device is None:
            raise InventoryError(f"{name!r} is not inventory-managed")
        return device

    def manages(self, name: str) -> bool:
        return name in self._devices

    def spare_gpus(self) -> list:
        """Registered GPUs installed in the chassis but owned by no host."""
        spares = []
        for name, device in self._devices.items():
            try:
                owner = self.falcon.owner_of(name)
            except FalconError:
                continue  # removed from the chassis
            if owner is None:
                spares.append(device)
        return spares

    # -- hot-plug operations ----------------------------------------------
    def attach(self, name: str, host_id: str) -> None:
        """Allocate a registered device to a host (hot-add).

        Raises :class:`InventoryError` naming the contending owner when
        the device is already claimed — elastic runtimes racing for the
        same spare need to know *who* won to decide whether to back off
        and retry or abandon the grow.
        """
        self.gpu(name)  # must be managed
        try:
            owner = self.falcon.owner_of(name)
        except FalconError as exc:  # removed from the chassis
            raise InventoryError(str(exc)) from exc
        if owner is not None:
            if owner == host_id:
                return  # already ours: attach is idempotent per owner
            raise InventoryError(
                f"{name!r} is already held by {owner!r}; "
                f"cannot attach to {host_id!r}")
        try:
            self.mcs.attach(self.actor, name, host_id)
        except FalconError as exc:  # lost a race between check and claim
            raise InventoryError(str(exc)) from exc

    def detach(self, name: str) -> None:
        """Release a registered device from its host (hot-remove).

        Idempotent: detaching an already-free device is a no-op, so
        recovery paths can release speculatively claimed spares without
        tracking whether the claim succeeded.
        """
        self.gpu(name)
        try:
            if self.falcon.owner_of(name) is None:
                return
            self.mcs.detach(self.actor, name)
        except FalconError as exc:
            raise InventoryError(str(exc)) from exc

    def replace_gpu(self, failed_name: str, host_id: str):
        """Swap a dead GPU for a spare; returns the replacement device.

        Deallocates the failed device (it stays in its slot for physical
        service) and hot-adds the first available spare to ``host_id``.
        Raises :class:`InventoryError` when the failed device is not
        chassis-managed (e.g. a host-internal GPU) or no spare exists.
        """
        if not self.manages(failed_name):
            raise InventoryError(
                f"{failed_name!r} is not chassis-managed; cannot hot-swap")
        spares = self.spare_gpus()
        if not spares:
            raise InventoryError("no spare GPU available")
        try:
            if self.falcon.owner_of(failed_name) is not None:
                self.detach(failed_name)
        except FalconError as exc:
            raise InventoryError(str(exc)) from exc
        spare = spares[0]
        self.attach(spare.name, host_id)
        return spare

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Inventory {len(self._devices)} devices, "
                f"{len(self.spare_gpus())} spare>")
