"""Management plane: MCS, BMC monitoring, and the audit event log.

Reproduces the paper's enterprise management layer (§II-B/§II-D): an
OpenBMC-style chassis monitor, a multi-tenant Management Center Server
with roles/grants so users only touch their own resources, and a
structured, exportable event log.
"""

from .bmc import BMC, LinkHealth, Sensor
from .events import Event, EventLog
from .inventory import Inventory, InventoryError
from .mcs import ManagementCenterServer, PermissionError_, Role, UserAccount

__all__ = [
    "ManagementCenterServer",
    "Role",
    "UserAccount",
    "PermissionError_",
    "BMC",
    "Sensor",
    "LinkHealth",
    "Event",
    "EventLog",
    "Inventory",
    "InventoryError",
]
