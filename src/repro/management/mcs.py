"""Management Center Server (paper §II-D, "Enterprise Features").

The MCS is the enterprise abstraction above the raw chassis management:
users never touch the physical Falcon interface directly.  Instead they
hold *roles* and operate only on resources they own:

- **administrators** manage users, connect hosts, install devices, change
  modes, and export the event log;
- **users** may attach/detach (allocate/deallocate) only devices that an
  administrator granted them, to hosts they are entitled to — "users can
  control their own environment, yet not have any access to other users'
  resources."

Every operation is permission-checked and audit-logged.  The MCS also
exposes the read-only monitoring views of §II-B (resource list, topology
view, traffic, event log export) and config import/export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..fabric.falcon import Falcon4016
from ..sim import Environment
from .bmc import BMC
from .events import EventLog

__all__ = ["ManagementCenterServer", "Role", "PermissionError_",
           "UserAccount"]


class Role(str, Enum):
    ADMINISTRATOR = "administrator"
    USER = "user"


class PermissionError_(Exception):
    """An operation was attempted without the required rights."""


@dataclass
class UserAccount:
    """One MCS account with its resource grants."""

    username: str
    role: Role
    #: Device node names this user may allocate/deallocate.
    granted_devices: set = field(default_factory=set)
    #: Host ids this user may target.
    granted_hosts: set = field(default_factory=set)
    last_login: Optional[float] = None


class ManagementCenterServer:
    """Multi-tenant management layer over one or more Falcon chassis."""

    def __init__(self, env: Environment):
        self.env = env
        self.log = EventLog()
        self.users: dict[str, UserAccount] = {
            "admin": UserAccount("admin", Role.ADMINISTRATOR),
        }
        self.falcons: dict[str, Falcon4016] = {}
        self.bmcs: dict[str, BMC] = {}
        self.hosts: list[str] = []

    # -- chassis & host registry ------------------------------------------------
    def register_falcon(self, falcon: Falcon4016) -> BMC:
        """Adopt a chassis: wire its events in and stand up its BMC."""
        if falcon.name in self.falcons:
            raise ValueError(f"{falcon.name} already registered")
        self.falcons[falcon.name] = falcon
        falcon.set_event_sink(self.record_event)
        bmc = BMC(self.env, f"{falcon.name}/bmc", self.log)
        for drawer in falcon.drawers:
            bmc.add_sensor(f"{drawer.name}/inlet")
        self.bmcs[falcon.name] = bmc
        self.log.record(self.env.now, "falcon_registered", "system",
                        falcon=falcon.name)
        return bmc

    def register_host(self, host_id: str) -> None:
        if host_id in self.hosts:
            raise ValueError(f"{host_id} already registered")
        self.hosts.append(host_id)
        self.log.record(self.env.now, "host_registered", "system",
                        host=host_id)

    def record_event(self, kind: str, details: dict) -> None:
        """Sink for chassis-originated events."""
        details = dict(details)
        when = details.pop("time", self.env.now)
        self.log.record(when, kind, "chassis", **details)

    # -- accounts ---------------------------------------------------------------
    def create_user(self, actor: str, username: str,
                    role: Role = Role.USER) -> UserAccount:
        self._require_admin(actor)
        if username in self.users:
            raise ValueError(f"user {username!r} already exists")
        account = UserAccount(username, role)
        self.users[username] = account
        self.log.record(self.env.now, "user_created", actor,
                        username=username, role=role.value)
        return account

    def login(self, username: str) -> UserAccount:
        account = self._account(username)
        account.last_login = self.env.now
        self.log.record(self.env.now, "login", username)
        return account

    def grant_device(self, actor: str, username: str,
                     device_node: str) -> None:
        self._require_admin(actor)
        self._require_installed(device_node)
        other = self._current_grantee(device_node)
        if other is not None and other != username:
            raise PermissionError_(
                f"{device_node!r} is already granted to {other!r}")
        self._account(username).granted_devices.add(device_node)
        self.log.record(self.env.now, "device_granted", actor,
                        username=username, device=device_node)

    def revoke_device(self, actor: str, username: str,
                      device_node: str) -> None:
        self._require_admin(actor)
        self._account(username).granted_devices.discard(device_node)
        self.log.record(self.env.now, "device_revoked", actor,
                        username=username, device=device_node)

    def grant_host(self, actor: str, username: str, host_id: str) -> None:
        self._require_admin(actor)
        if host_id not in self.hosts:
            raise KeyError(f"unknown host {host_id!r}")
        self._account(username).granted_hosts.add(host_id)
        self.log.record(self.env.now, "host_granted", actor,
                        username=username, host=host_id)

    # -- user-level composability operations --------------------------------------
    def attach(self, actor: str, device_node: str, host_id: str) -> None:
        """Allocate a granted device to a granted host (user operation)."""
        account = self._account(actor)
        if account.role is not Role.ADMINISTRATOR:
            if device_node not in account.granted_devices:
                raise PermissionError_(
                    f"{actor!r} has no grant for {device_node!r}")
            if host_id not in account.granted_hosts:
                raise PermissionError_(
                    f"{actor!r} has no grant for host {host_id!r}")
        falcon = self._falcon_of(device_node)
        falcon.allocate(device_node, host_id)
        self.log.record(self.env.now, "attach", actor,
                        device=device_node, host=host_id)

    def detach(self, actor: str, device_node: str) -> None:
        """Release a device allocation (owner or admin only)."""
        account = self._account(actor)
        if account.role is not Role.ADMINISTRATOR \
                and device_node not in account.granted_devices:
            raise PermissionError_(
                f"{actor!r} has no grant for {device_node!r}")
        falcon = self._falcon_of(device_node)
        falcon.deallocate(device_node)
        self.log.record(self.env.now, "detach", actor, device=device_node)

    # -- monitoring views ----------------------------------------------------------
    def resource_list(self) -> list[dict]:
        """The §II-B resource list: every slot across every chassis."""
        out = []
        for falcon in self.falcons.values():
            for drawer in falcon.drawers:
                for slot in drawer.slots:
                    out.append({
                        "falcon": falcon.name,
                        "slot": slot.label,
                        "device": slot.device,
                        "owner": slot.owner,
                        "link_speed": (slot.link.spec.name
                                       if slot.link else None),
                    })
        return out

    def topology_view(self) -> dict:
        """The §II-B topology view: cabling and allocation per chassis."""
        return {name: falcon.export_config()
                for name, falcon in self.falcons.items()}

    def export_event_log(self, actor: str) -> list[dict]:
        self._require_admin(actor)
        return self.log.export()

    def export_configuration(self, falcon_name: str) -> dict:
        return self._named_falcon(falcon_name).export_config()

    def import_configuration(self, actor: str, falcon_name: str,
                             config: dict) -> None:
        self._require_admin(actor)
        self._named_falcon(falcon_name).apply_allocations(config)
        self.log.record(self.env.now, "config_imported", actor,
                        falcon=falcon_name)

    def health(self, falcon_name: str) -> dict:
        return self.bmcs[falcon_name].health_report()

    # -- helpers ----------------------------------------------------------------
    def _account(self, username: str) -> UserAccount:
        account = self.users.get(username)
        if account is None:
            raise KeyError(f"unknown user {username!r}")
        return account

    def _require_admin(self, actor: str) -> None:
        if self._account(actor).role is not Role.ADMINISTRATOR:
            raise PermissionError_(f"{actor!r} is not an administrator")

    def _require_installed(self, device_node: str) -> None:
        self._falcon_of(device_node)

    def _falcon_of(self, device_node: str) -> Falcon4016:
        for falcon in self.falcons.values():
            for drawer in falcon.drawers:
                if drawer.slot_of(device_node) is not None:
                    return falcon
        raise KeyError(f"{device_node!r} is not installed in any chassis")

    def _named_falcon(self, name: str) -> Falcon4016:
        falcon = self.falcons.get(name)
        if falcon is None:
            raise KeyError(f"unknown falcon {name!r}")
        return falcon

    def _current_grantee(self, device_node: str) -> Optional[str]:
        for account in self.users.values():
            if device_node in account.granted_devices:
                return account.username
        return None
