"""OpenBMC-style baseboard management (paper §II-B).

Models the monitoring side of the chassis: temperature and fan sensors
per drawer, PCIe link-health (accumulated error counters), and threshold
alerts delivered to the event log — "the BMC can alert administrators to
any parameters which fall outside of specifications."

Sensor physics are intentionally simple (load-proportional temperature
with first-order settling) — the point is the management *interface*:
read sensors, set thresholds, receive alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Environment, TimeSeries
from .events import EventLog

__all__ = ["BMC", "Sensor", "LinkHealth"]

#: Ambient inlet temperature, Celsius.
AMBIENT_C = 24.0
#: Temperature rise at full load, Celsius.
FULL_LOAD_RISE_C = 46.0
#: First-order thermal settling constant, seconds.
THERMAL_TAU_S = 30.0


@dataclass
class Sensor:
    """One temperature sensor with an alert threshold."""

    name: str
    value: float = AMBIENT_C
    threshold: float = 85.0
    alerted: bool = False


@dataclass
class LinkHealth:
    """PCIe link-health record (paper: accumulated error count)."""

    name: str
    correctable_errors: int = 0
    uncorrectable_errors: int = 0

    @property
    def healthy(self) -> bool:
        return self.uncorrectable_errors == 0


class BMC:
    """Chassis BMC: sensors, fans, link health, alerts."""

    def __init__(self, env: Environment, name: str, log: EventLog,
                 sample_interval: float = 5.0):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.env = env
        self.name = name
        self.log = log
        self.sample_interval = sample_interval
        self.sensors: dict[str, Sensor] = {}
        self.links: dict[str, LinkHealth] = {}
        self.temperature_history: dict[str, TimeSeries] = {}
        self.fan_speed_pct = 35.0
        #: Callable returning current chassis load in [0, 1].
        self._load_source = lambda: 0.0
        self._running = False

    # -- configuration ------------------------------------------------------
    def add_sensor(self, name: str, threshold: float = 85.0) -> Sensor:
        if name in self.sensors:
            raise ValueError(f"sensor {name!r} already exists")
        sensor = Sensor(name, threshold=threshold)
        self.sensors[name] = sensor
        self.temperature_history[name] = TimeSeries(f"{name}:temp", "C")
        return sensor

    def track_link(self, name: str) -> LinkHealth:
        if name in self.links:
            raise ValueError(f"link {name!r} already tracked")
        health = LinkHealth(name)
        self.links[name] = health
        return health

    def set_load_source(self, fn) -> None:
        """Install a 0..1 utilization callable driving the thermal model."""
        self._load_source = fn

    # -- operation -----------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._monitor_loop())

    def _monitor_loop(self):
        dt = self.sample_interval
        alpha = 1.0 - pow(2.718281828, -dt / THERMAL_TAU_S)
        while True:
            yield self.env.timeout(dt)
            load = min(1.0, max(0.0, float(self._load_source())))
            target = AMBIENT_C + FULL_LOAD_RISE_C * load \
                - 0.15 * (self.fan_speed_pct - 35.0)
            for sensor in self.sensors.values():
                sensor.value += alpha * (target - sensor.value)
                self.temperature_history[sensor.name].record(
                    self.env.now, sensor.value)
                self._check_threshold(sensor)
            # Simple fan governor: ramp with the hottest sensor.
            if self.sensors:
                hottest = max(s.value for s in self.sensors.values())
                self.fan_speed_pct = min(
                    100.0, max(35.0, 35.0 + 1.8 * (hottest - 50.0)))

    def _check_threshold(self, sensor: Sensor) -> None:
        if sensor.value > sensor.threshold and not sensor.alerted:
            sensor.alerted = True
            self.log.record(self.env.now, "temperature_alert", self.name,
                            sensor=sensor.name, value=round(sensor.value, 1),
                            threshold=sensor.threshold)
        elif sensor.value < sensor.threshold - 5.0 and sensor.alerted:
            sensor.alerted = False
            self.log.record(self.env.now, "temperature_cleared", self.name,
                            sensor=sensor.name)

    def record_link_error(self, name: str, correctable: bool = True) -> None:
        """Account a PCIe link error; uncorrectables raise an alert."""
        health = self.links.get(name)
        if health is None:
            raise KeyError(f"link {name!r} is not tracked")
        if correctable:
            health.correctable_errors += 1
        else:
            health.uncorrectable_errors += 1
            self.log.record(self.env.now, "link_error", self.name,
                            link=name, severity="uncorrectable")

    # -- reporting --------------------------------------------------------------
    def health_report(self) -> dict:
        """The web interface's temperature/link summary."""
        return {
            "fan_speed_pct": self.fan_speed_pct,
            "sensors": {s.name: round(s.value, 2)
                        for s in self.sensors.values()},
            "links": {
                l.name: {
                    "correctable": l.correctable_errors,
                    "uncorrectable": l.uncorrectable_errors,
                    "healthy": l.healthy,
                }
                for l in self.links.values()
            },
        }
