"""Structured event log (paper §II-B: "define event logs for export").

Every state-changing operation on the chassis or the management server is
recorded as an :class:`Event` with its simulated timestamp, kind, actor,
and details.  Logs can be filtered and exported as plain data (JSON-able)
for the administrator's export feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One audit-log entry."""

    time: float
    kind: str
    actor: str
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "actor": self.actor,
                "details": dict(self.details)}


class EventLog:
    """Append-only audit log with filtering and export."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._events: list[Event] = []
        self._capacity = capacity
        self._subscribers: list[Callable[[Event], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def record(self, time: float, kind: str, actor: str = "system",
               **details: Any) -> Event:
        event = Event(time, kind, actor, details)
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            self._events.pop(0)
        for callback in self._subscribers:
            callback(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Receive every new event (e.g. an alerting hook)."""
        self._subscribers.append(callback)

    def query(self, kind: Optional[str] = None,
              actor: Optional[str] = None,
              since: Optional[float] = None) -> list[Event]:
        out: Iterable[Event] = self._events
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        if actor is not None:
            out = (e for e in out if e.actor == actor)
        if since is not None:
            out = (e for e in out if e.time >= since)
        return list(out)

    def export(self) -> list[dict]:
        """The administrator's event-log export."""
        return [e.as_dict() for e in self._events]

    def tail(self, n: int = 10) -> list[Event]:
        return self._events[-n:]
