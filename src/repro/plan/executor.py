"""The generic plan executor: replay a StepPlan on the DES environment.

One :class:`PlanExecution` instance is shared by every rank of one step.
Each rank calls :meth:`PlanExecution.run_rank` from its own process; the
executor spawns one lightweight process per op, wires dependencies
through per-op done events (cross-rank deps included), and drives the
same device models the hand-written strategy generators used to call:

- ``Compute``  -> ``gpu.compute`` (roofline kernel, stream-serialized)
- ``Collective``/``Barrier`` -> the ``Communicator`` rendezvous
- ``H2DCopy``/``D2HCopy``/``P2PCopy`` -> ``topology.transfer``
- ``StorageRead``/``StorageWrite`` -> the storage device
- ``Delay``    -> ``env.timeout`` (plus the elapsed-fraction overhead)

Telemetry is derived *mechanically* from op identities: when a rank's
program finishes, its recorded op intervals become spans.  Exclusive ops
emit under their own names; where communication overlapped compute
(DDP's bucketed allreduce under backward, pipeline sends under the next
micro-batch), the compute kernels emit directly and the non-hidden
remainder of the communication emits as ``exposed-sync`` — exactly the
compute/exposed-comm split the hand-instrumented loop produced.

Failure semantics match the legacy loop: a fault inside an op (link
pulled, collective timeout) fails that op's done event (pre-defused) and
propagates out of ``run_rank`` into the trainer's fault handler; the
training runtime then calls :meth:`PlanExecution.cancel` so no op
process outlives the job and corrupts a successor's device state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim import Environment, Interrupt
from ..telemetry.trace import NULL_TRACER, Category, Tracer
from .ir import (
    Barrier,
    Collective,
    Compute,
    D2HCopy,
    Delay,
    H2DCopy,
    P2PCopy,
    PlanError,
    StepPlan,
    StorageRead,
    StorageWrite,
)

__all__ = ["ExecutionContext", "PlanExecution"]

#: Ignore sub-picosecond slivers when deriving exposed-comm segments.
_EPS = 1e-12


@dataclass
class ExecutionContext:
    """Everything a plan needs to run: devices, fabric, comm, telemetry."""

    env: Environment
    comm: object = None
    gpus: list = field(default_factory=list)
    topology: object = None
    #: Host DRAM node name (H2D/D2H endpoints).
    host_node: Optional[str] = None
    storage: object = None
    tracer: Tracer = NULL_TRACER
    #: rank -> telemetry Track (None disables span derivation).
    track_for: Optional[Callable] = None
    #: Multiplicative kernel-noise sampler for ``jittered`` computes.
    jitter: Callable[[], float] = lambda: 1.0
    #: Called with the :class:`PlanExecution` when its last rank
    #: finishes — the profiler's capture point for per-op absolute
    #: times (``None`` disables the callback).
    on_plan_done: Optional[Callable] = None


class PlanExecution:
    """One in-flight instance of a plan (one optimizer step, all ranks)."""

    def __init__(self, plan: StepPlan, ctx: ExecutionContext):
        if not plan.validated:
            # Validate each distinct plan once; assert_valid stamps the
            # plan so the next step's execution skips this entirely.
            from .validate import assert_valid
            assert_valid(plan)
        self.plan = plan
        self.ctx = ctx
        self._done: dict = {}          # uid -> done Event
        self._times: dict = {}         # uid -> (start, end)
        self._procs: list = []
        self._rank_start: dict = {}
        self._ranks_finished = 0

    # -- introspection -----------------------------------------------------
    def op_times(self, uid: str):
        """(start, end) of a completed op; raises if it has not run."""
        try:
            return self._times[uid]
        except KeyError:
            raise PlanError(f"op {uid!r} has not completed") from None

    @property
    def all_ranks_done(self) -> bool:
        return self._ranks_finished >= self.plan.world_size

    # -- execution ---------------------------------------------------------
    def _event(self, uid: str):
        event = self._done.get(uid)
        if event is None:
            event = self._done[uid] = self.ctx.env.event()
        return event

    def run_rank(self, rank: int):
        """Generator: run this rank's program to completion.

        Spawns one process per op (dependencies gate their start), then
        waits for all of them.  Any op failure propagates out of the
        ``yield`` here, exactly as the hand-written schedules raised out
        of their ``yield`` s.
        """
        env = self.ctx.env
        self._rank_start[rank] = env.now
        ops = self.plan.by_rank(rank)
        procs = [env.process(self._run_op(op)) for op in ops]
        self._procs.extend(procs)
        if procs:
            yield env.all_of(procs)
        self._ranks_finished += 1
        self._emit_rank_spans(rank)
        if self._ranks_finished == self.plan.world_size:
            hook = self.ctx.on_plan_done
            if hook is not None:
                hook(self)

    def cancel(self, cause=None) -> None:
        """Interrupt every still-running op process (fault teardown)."""
        for proc in self._procs:
            if proc.is_alive and proc._target is not None:
                proc.interrupt(cause)

    def _run_op(self, op):
        env = self.ctx.env
        try:
            if op.deps:
                yield env.all_of([self._event(dep) for dep in op.deps])
            start = env.now
            yield from self._perform(op)
            self._times[op.uid] = (start, env.now)
        except Interrupt:
            return
        except BaseException as exc:
            # Fail the done event (pre-defused: dependents may already be
            # gone) so cross-rank waiters unwind instead of hanging.
            done = self._event(op.uid)
            if not done.triggered:
                done.defused = True
                done.fail(exc)
            raise
        done = self._event(op.uid)
        if not done.triggered:
            done.succeed()

    # -- op dispatch -------------------------------------------------------
    def _perform(self, op):
        ctx = self.ctx
        if isinstance(op, Compute):
            factor = ctx.jitter() if op.jittered else 1.0
            yield ctx.gpus[op.rank].compute(
                op.flops * factor, op.hbm_bytes, op.precision,
                op.efficiency)
        elif isinstance(op, Collective):
            yield self._join_collective(op)
        elif isinstance(op, Barrier):
            yield ctx.comm.barrier(op.rank)
        elif isinstance(op, H2DCopy):
            yield ctx.topology.transfer(ctx.host_node,
                                        ctx.gpus[op.rank].name,
                                        op.bytes, label=op.label)
        elif isinstance(op, D2HCopy):
            yield ctx.topology.transfer(ctx.gpus[op.rank].name,
                                        ctx.host_node, op.bytes,
                                        label=op.label)
        elif isinstance(op, P2PCopy):
            yield ctx.topology.transfer(ctx.gpus[op.rank].name,
                                        ctx.gpus[op.dst_rank].name,
                                        op.bytes, label=op.label)
        elif isinstance(op, StorageRead):
            yield ctx.storage.read_to(ctx.host_node, op.bytes)
        elif isinstance(op, StorageWrite):
            yield ctx.storage.write_from(ctx.host_node, op.bytes)
        elif isinstance(op, Delay):
            elapsed = self.ctx.env.now - self._rank_start[op.rank]
            yield self.ctx.env.timeout(
                op.seconds + op.elapsed_fraction * elapsed)
        else:  # pragma: no cover - taxonomy is closed
            raise PlanError(f"executor cannot run op kind {op.kind!r}")

    def _join_collective(self, op):
        comm = self.ctx.comm
        rank, root = op.rank, op.root
        if op.group is not None:
            # Grouped collective: rendezvous on the sub-communicator,
            # with rank/root translated to group-local indices.
            comm = comm.subgroup(op.group)
            rank = op.group.index(op.rank)
            root = op.group.index(op.root) if op.root is not None else None
        chunk = op.chunk_bytes
        if op.comm == "allreduce":
            return comm.allreduce(rank, op.bytes, chunk_bytes=chunk)
        if op.comm == "reduce_scatter":
            return comm.reduce_scatter(rank, op.bytes,
                                       chunk_bytes=chunk)
        if op.comm == "all_gather":
            return comm.allgather(rank, op.bytes, chunk_bytes=chunk)
        if op.comm == "broadcast":
            return comm.broadcast(rank, op.bytes, root=root or 0,
                                  chunk_bytes=chunk)
        if op.comm == "reduce":
            return comm.reduce(rank, op.bytes, root=root or 0,
                               chunk_bytes=chunk)
        raise PlanError(f"unknown collective {op.comm!r}")

    # -- mechanical span derivation ---------------------------------------
    def _emit_rank_spans(self, rank: int) -> None:
        tracer = self.ctx.tracer
        if not tracer.enabled or self.ctx.track_for is None:
            return
        track = self.ctx.track_for(rank)
        if track is None:
            return
        records = [(op, *self._times[op.uid])
                   for op in self.plan.by_rank(rank)
                   if op.traced and op.uid in self._times]
        for cluster in _overlap_clusters(records):
            if len(cluster) == 1:
                op, start, end = cluster[0]
                tracer.complete(op.name, op.category, track, start, end,
                                **_span_attrs(op))
                continue
            computes = [r for r in cluster
                        if r[0].category is Category.COMPUTE]
            others = [r for r in cluster
                      if r[0].category is not Category.COMPUTE]
            for op, start, end in computes:
                tracer.complete(op.name, op.category, track, start, end,
                                overlapped_comm=bool(others),
                                **_span_attrs(op))
            if not others:
                continue
            hidden = _merge_intervals([(s, e) for _, s, e in computes])
            exposed = _subtract_intervals(
                _merge_intervals([(s, e) for _, s, e in others]), hidden)
            total_bytes = sum(op.bytes for op, _, _ in others)
            for start, end in exposed:
                if end - start > _EPS:
                    tracer.complete("exposed-sync", Category.COMM, track,
                                    start, end, bytes=total_bytes)


def _span_attrs(op) -> dict:
    attrs = {}
    if op.bytes:
        attrs["bytes"] = op.bytes
    if op.fused:
        attrs["fused"] = op.fused
    if getattr(op, "chunk_bytes", None) is not None:
        attrs["chunk_bytes"] = op.chunk_bytes
    return attrs


def _overlap_clusters(records):
    """Group (op, start, end) records into interval-overlap clusters.

    Records touching only at endpoints are *not* overlapping; each
    cluster's spans would violate the tracer's per-track nesting
    invariant if emitted verbatim, so clusters of size > 1 get the
    compute/exposed-comm treatment.
    """
    ordered = sorted(records, key=lambda r: (r[1], r[2]))
    clusters = []
    current: list = []
    current_end = float("-inf")
    for record in ordered:
        _, start, end = record
        if current and start >= current_end - _EPS:
            clusters.append(current)
            current = []
            current_end = float("-inf")
        current.append(record)
        current_end = max(current_end, end)
    if current:
        clusters.append(current)
    return clusters


def _merge_intervals(intervals):
    """Union of [start, end) intervals, as a sorted disjoint list."""
    merged = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + _EPS:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _subtract_intervals(base, holes):
    """Set-difference of two disjoint sorted interval lists."""
    out = []
    for start, end in base:
        cursor = start
        for h0, h1 in holes:
            if h1 <= cursor or h0 >= end:
                continue
            if h0 > cursor:
                out.append((cursor, min(h0, end)))
            cursor = max(cursor, h1)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out
