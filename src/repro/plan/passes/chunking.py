"""Topology-aware collective chunk sizing.

NCCL's transports stage collective payloads through fixed-size bounce
buffers; the staging penalty amortizes with chunk size, and the right
chunk size depends on the wire — a Falcon PCIe uplink wants far larger
staging chunks than an NVLink mesh to hide its per-chunk protocol
overhead (cf. ``NCCL_P2P_NET_CHUNKSIZE`` tuning on real fabrics).

This pass annotates every sized collective with a ``chunk_bytes`` picked
from the *measured* bottleneck bandwidth of the links the schedule will
actually traverse: ring collectives look at consecutive ring-neighbour
pairs of ``ctx.rank_nodes``, rooted collectives at root<->leaf paths.
The chunk covers ~1 ms of streaming on the bottleneck link, clamped to
[1 MB, 64 MB] and never above the payload itself.  The executor forwards
the annotation to the communicator, whose transport model scales its
staging penalty by sqrt(reference/chunk) — so Falcon-attached ranks see
most of their 2.2x byte-inflation amortized away while NVLink (already
near line rate) is essentially unchanged.

The chunk for each rendezvous slot is computed once (from rank 0's
collective sequence) and applied to the matching slot on every rank, so
the rank-symmetry invariant — which includes ``chunk_bytes`` — holds by
construction.  Bytes, dependencies, and op counts are untouched.
"""

from __future__ import annotations

from dataclasses import replace

from ..ir import Barrier, Collective, StepPlan
from .manager import PassContext, PassError, PlanPass

__all__ = ["CollectiveChunkSizing", "DEFAULT_CHUNK_BYTES"]

#: Fallback chunk when no topology is available to measure.
DEFAULT_CHUNK_BYTES = 8e6
#: Chunk covers this much streaming time on the bottleneck link.
_TARGET_SECONDS = 1e-3
_MIN_CHUNK = 1e6
_MAX_CHUNK = 64e6

#: Collectives scheduled as neighbour-to-neighbour rings.
_RING_KINDS = frozenset({"allreduce", "reduce_scatter", "all_gather"})


class CollectiveChunkSizing(PlanPass):
    """Annotate collectives with bandwidth-derived staging chunk sizes."""

    name = "chunk-size"

    def __init__(self, target_seconds: float = _TARGET_SECONDS):
        if target_seconds <= 0:
            raise PassError("target_seconds must be positive")
        self.target_seconds = target_seconds

    def describe(self) -> str:
        return f"chunk-size(target={self.target_seconds * 1e3:g}ms)"

    # -- bandwidth probing -------------------------------------------------
    def _bottleneck(self, ctx: PassContext, op: Collective) -> float:
        """Min measured bandwidth over the links this op's schedule uses
        (0.0 when the context has nothing to measure)."""
        topo, nodes = ctx.topology, list(ctx.rank_nodes)
        if topo is None:
            return 0.0
        if op.group is not None:
            # Grouped collectives ring/star over the group's nodes only.
            nodes = [nodes[i] for i in op.group if i < len(nodes)]
            root_idx = op.group.index(op.root) if op.root is not None \
                else 0
        else:
            root_idx = op.root or 0
        if len(nodes) < 2:
            return 0.0
        if op.comm in _RING_KINDS:
            pairs = [(nodes[i], nodes[(i + 1) % len(nodes)])
                     for i in range(len(nodes))]
        else:
            root = nodes[root_idx]
            pairs = [(root, n) for n in nodes if n != root]
        bw = []
        for src, dst in pairs:
            try:
                bw.append(topo.path_bandwidth(src, dst))
            except Exception:
                return 0.0
        return min(bw) if bw else 0.0

    def _chunk_for(self, ctx: PassContext, op: Collective) -> float:
        bw = self._bottleneck(ctx, op)
        chunk = bw * self.target_seconds if bw > 0 else DEFAULT_CHUNK_BYTES
        chunk = min(max(chunk, _MIN_CHUNK), _MAX_CHUNK)
        return min(chunk, op.bytes)

    # -- rewrite -----------------------------------------------------------
    def run(self, plan: StepPlan, ctx: PassContext) -> StepPlan:
        from .bucketing import _comm_keys, _sync_ops

        sized: dict = {}        # uid -> annotated op
        # Slots are per communicator (group tuple or world): each
        # communicator's members share an identical slot sequence, and
        # the chunk computed from its first member applies to all.
        for key in _comm_keys(plan):
            member_ranks = range(plan.world_size) if key is None else key
            sync = [_sync_ops(plan, rank, key) for rank in member_ranks]
            if not sync or not sync[0]:
                continue
            chunks: dict = {}   # slot index -> chunk bytes
            for slot, op in enumerate(sync[0]):
                if isinstance(op, Collective) and op.bytes > 0 \
                        and op.chunk_bytes is None:
                    chunks[slot] = self._chunk_for(ctx, op)
            for rank_slots in sync:
                for slot, chunk in chunks.items():
                    op = rank_slots[slot]
                    sized[op.uid] = replace(op, chunk_bytes=chunk)
        if not sized:
            return plan
        ops = [sized.get(op.uid, op) for op in plan.ops]
        return StepPlan(plan.name, plan.world_size, ops, plan.meta)
