"""Comm/compute overlap: launch collectives as their producers retire.

The DDP compiler gates each gradient bucket's collective on an untraced
``Delay`` ("bucket i's gradients exist this many seconds into
backward") anchored on the producing compute op.  Those gate times are
*completion* times — the conservative hook point at which the whole
bucket is materialized.  Real DDP launches the allreduce for bucket
``k`` the moment its last gradient is written, which is while bucket
``k+1`` is still being computed: the communication stream runs one
bucket *behind* the compute stream, not after it.

This pass re-times exactly that.  For every run of collectives hanging
off sibling gates (same rank, same anchor dependencies), it shifts each
launch one slab earlier: collective ``k`` launches at the *previous*
collective's ready time, and the first extrapolates one inter-gate
interval before its own ready point (clamped at the anchor).  On a
bandwidth-bound fabric the comm work is conserved — the rewrite moves
the whole backlog earlier under the compute, which is precisely the
exposed-sync reduction DDP's overlapped hooks buy on the Falcon uplink.

Invariant obligations: only ``Delay.seconds`` values change and
now-unreferenced gates are dropped — no collective op, byte count, or
rendezvous slot is touched, so symmetry/conservation/acyclicity hold
trivially.  Per-rank launch *order* within the run is preserved (the
re-timed sequence stays sorted), keeping the communicator's sequence-
matched rendezvous deadlock-free.
"""

from __future__ import annotations

from dataclasses import replace

from ..ir import Collective, Delay, StepPlan
from .manager import PassContext, PlanPass, drop_orphaned_gates

__all__ = ["OverlapScheduling"]


def _pure_gate(op) -> bool:
    """An untraced fixed-seconds Delay — the compilers' bucket gates."""
    return (isinstance(op, Delay) and not op.traced
            and op.elapsed_fraction == 0.0)


class OverlapScheduling(PlanPass):
    """Re-time gate delays so collectives launch one slab earlier."""

    name = "overlap"

    def describe(self) -> str:
        return "overlap"

    def _runs(self, plan: StepPlan) -> list:
        """Find per-rank runs of gate-launched collectives.

        A collective joins a run when *all* its deps are pure gates,
        each gate's sole dependent is that collective, and the gates
        share the run's anchor (the union of the gates' own deps).
        Returns ``[(collective, launch_gate, ready_seconds), ...]`` runs
        of length >= 2, where ``launch_gate`` is the latest gate (the
        one that actually times the launch).
        """
        dependents: dict = {}
        for op in plan:
            for dep in op.deps:
                dependents.setdefault(dep, []).append(op.uid)
        runs: dict = {}
        for op in plan:
            if not isinstance(op, Collective) or not op.deps:
                continue
            gates = [plan.op(d) for d in op.deps]
            if not all(_pure_gate(g) and g.rank == op.rank
                       and dependents.get(g.uid) == [op.uid]
                       for g in gates):
                continue
            anchor = frozenset(d for g in gates for d in g.deps)
            launch = max(gates, key=lambda g: g.seconds)
            runs.setdefault((op.rank, anchor), []).append(
                (op, launch, launch.seconds))
        return [entries for entries in runs.values() if len(entries) >= 2]

    def run(self, plan: StepPlan, ctx: PassContext) -> StepPlan:
        retimed: dict = {}      # gate uid -> retimed gate
        slimmed: dict = {}      # collective uid -> single-gate collective
        dropped: set = set()    # gate uids a collective no longer needs
        for entries in self._runs(plan):
            entries.sort(key=lambda e: e[2])
            ready = [e[2] for e in entries]
            # Collective k launches when bucket k-1 was ready; the first
            # extrapolates one inter-gate interval early (>= 0, i.e.
            # never before the anchor itself).
            launch = [max(0.0, 2.0 * ready[0] - ready[1])]
            launch += ready[:-1]
            for (op, gate, _), when in zip(entries, launch):
                retimed[gate.uid] = replace(gate, seconds=when)
                if len(op.deps) > 1:
                    slimmed[op.uid] = replace(op, deps=(gate.uid,))
                    dropped.update(d for d in op.deps if d != gate.uid)
        if not retimed:
            return plan
        ops = [slimmed.get(op.uid, retimed.get(op.uid, op))
               for op in plan.ops]
        ops = drop_orphaned_gates(ops, dropped)
        return StepPlan(plan.name, plan.world_size, ops, plan.meta)
