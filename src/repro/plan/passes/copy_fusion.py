"""Copy elision/fusion: merge adjacent transfers with identical endpoints.

Two rewrites over the plan's H2D/D2H/P2P copies:

- **elision** — a zero-byte copy moves nothing; remove it and rewire its
  dependents to its (single) dependency.  Compilers emit these when a
  shard or micro-batch divides to nothing on some rank.
- **chain fusion** — when copy B's *only* dependency is copy A, A's
  *only* dependent is B, and both describe the same endpoints (same op
  kind, rank, label, payload, and destination rank for P2P), the pair is
  one logical transfer split in two.  Fuse B into A: one DMA setup, one
  fabric transfer of the summed bytes.  Maximal chains collapse into
  their head, which keeps its uid so the plan differ lines up.

Edge contraction of a degree-1/degree-1 edge cannot create a cycle (a
post-fusion cycle would imply a pre-existing B->...->A path, i.e. a
cycle through A->B already), copies are not rendezvous ops (rank
symmetry untouched), and summed bytes under an unchanged payload tag
keep conservation exact.
"""

from __future__ import annotations

from dataclasses import replace

from ..ir import D2HCopy, H2DCopy, P2PCopy, StepPlan
from .manager import PassContext, PlanPass, retarget_deps

__all__ = ["CopyFusion"]

_COPY_TYPES = (H2DCopy, D2HCopy, P2PCopy)


def _endpoints(op) -> tuple:
    """What must match for two copies to be one logical transfer."""
    key = (type(op), op.rank, op.label, op.payload, op.category,
           op.traced)
    if isinstance(op, P2PCopy):
        key += (op.dst_rank,)
    return key


class CopyFusion(PlanPass):
    """Elide zero-byte copies and fuse same-endpoint copy chains."""

    name = "copy-fusion"

    def describe(self) -> str:
        return "copy-fusion"

    # -- zero-byte elision -------------------------------------------------
    @staticmethod
    def _elide(plan: StepPlan) -> StepPlan:
        mapping: dict = {}
        for op in plan:
            if isinstance(op, _COPY_TYPES) and op.bytes == 0 \
                    and len(op.deps) <= 1:
                mapping[op.uid] = op.deps[0] if op.deps else None
        if not mapping:
            return plan
        # Chains of zero-byte copies: follow to a surviving target.
        resolved = {}
        for uid, target in mapping.items():
            while target in mapping:
                target = mapping[target]
            resolved[uid] = target
        ops = retarget_deps(
            [op for op in plan.ops if op.uid not in resolved], resolved)
        return StepPlan(plan.name, plan.world_size, ops, plan.meta)

    # -- chain fusion ------------------------------------------------------
    @staticmethod
    def _fuse_chains(plan: StepPlan) -> StepPlan:
        dependents: dict = {}
        for op in plan:
            for dep in op.deps:
                dependents.setdefault(dep, []).append(op.uid)
        succ: dict = {}         # copy uid -> its unique fusable successor
        for op in plan:
            if not isinstance(op, _COPY_TYPES) or len(op.deps) != 1:
                continue
            prev = plan.op(op.deps[0])
            if (isinstance(prev, _COPY_TYPES)
                    and dependents.get(prev.uid) == [op.uid]
                    and _endpoints(prev) == _endpoints(op)):
                succ[prev.uid] = op.uid
        if not succ:
            return plan
        heads = set(succ) - set(succ.values())
        mapping: dict = {}      # member uid -> chain head uid
        fused: dict = {}        # head uid -> fused op
        for head_uid in heads:
            head = plan.op(head_uid)
            total, count, uid = head.bytes, max(1, head.fused), head_uid
            while uid in succ:
                uid = succ[uid]
                member = plan.op(uid)
                total += member.bytes
                count += max(1, member.fused)
                mapping[uid] = head_uid
            fused[head_uid] = replace(head, bytes=total, fused=count)
        ops = [fused.get(op.uid, op) for op in plan.ops
               if op.uid not in mapping]
        ops = retarget_deps(ops, mapping)
        return StepPlan(plan.name, plan.world_size, ops, plan.meta)

    def run(self, plan: StepPlan, ctx: PassContext) -> StepPlan:
        return self._fuse_chains(self._elide(plan))
