"""Optimizing plan-to-plan rewrites (the scheduling layer).

Strategies compile *naive* step plans — one collective per gradient
bucket at the compiler's conservative launch points, one copy per
logical transfer, default transport staging.  The passes in this package
rewrite those plans between ``compile_step`` and ``PlanExecution``,
reproducing the software-level tuning axis of the paper's Fig. 16 (and
the optimizing scheduling layer Maya/VirtualFlow-style emulated stacks
put between model and hardware):

- :class:`GradientBucketing` — fuse per-tensor/per-bucket collectives
  into size-capped buckets (DDP ``bucket_cap_mb`` semantics);
- :class:`OverlapScheduling` — re-anchor backward-phase collective
  launches to the retirement of their producing compute slab, shrinking
  exposed-sync;
- :class:`CopyFusion` — merge chained H2D/D2H/P2P copies with identical
  endpoints and elide zero-byte copies;
- :class:`CollectiveChunkSizing` — topology-aware staging chunk sizes
  picked from measured uplink vs NVLink bandwidth.

Every pass is a pure function ``StepPlan -> StepPlan`` and must preserve
the validation invariants (structure, acyclicity, rank symmetry, bytes
conservation); :class:`PassManager` enforces that obligation by
re-validating after every pass.  Unchanged ops keep their uids, so the
uid-matched plan differ renders exactly what a pass did.
"""

from .manager import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    PassContext,
    PassError,
    PassManager,
    PassReport,
    PlanPass,
    passes_from_spec,
    passes_to_spec,
    resolve_passes,
)
from .bucketing import GradientBucketing
from .overlap import OverlapScheduling
from .copy_fusion import CopyFusion
from .chunking import CollectiveChunkSizing

__all__ = [
    "PlanPass",
    "PassContext",
    "PassError",
    "PassManager",
    "PassReport",
    "PASS_REGISTRY",
    "DEFAULT_PIPELINE",
    "resolve_passes",
    "passes_to_spec",
    "passes_from_spec",
    "GradientBucketing",
    "OverlapScheduling",
    "CopyFusion",
    "CollectiveChunkSizing",
]
