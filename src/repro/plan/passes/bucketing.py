"""Gradient bucketing: fuse per-bucket collectives up to a byte cap.

Reproduces DDP's ``bucket_cap_mb`` semantics as a *plan rewrite*: runs
of consecutive same-signature collectives (same kind, root, and payload
tag — e.g. the compiler's per-bucket ``grad-bucket`` allreduces) are
greedily fused into collectives of at most ``cap_bytes``.  Fewer
collectives mean fewer ring phases, so less per-phase launch/rendezvous
latency — the reason real DDP does not allreduce tensor-by-tensor.

The default cap is 100 MB — deliberately 4x PyTorch's 25 MB default,
which is what the strategy compilers already bucket at.  Tuning
``bucket_cap_mb`` *up* is the standard remedy for latency-dominated
fabrics: a composed PCIe/Falcon path pays its fixed per-phase cost ~14
times per collective (ring allreduce over 8 ranks), so quartering the
collective count quarters that latency bill while the bandwidth term is
unchanged.  On NVLink the rewrite is close to neutral, which matches
the paper's observation that software tuning matters most when the
fabric is the bottleneck.

Fusion is conservative about readiness: the fused collective depends on
the *union* of its constituents' dependencies, so it launches only once
every fused gradient exists (the last constituent's ready gate).  The
:class:`~repro.plan.passes.overlap.OverlapScheduling` pass is the one
that then re-times those launches.

Correctness obligations (enforced by the pass manager's re-validation):

- **rank symmetry** — grouping is decided once over rendezvous *slot
  indices* (every rank issues the same ordered sync sequence in a valid
  plan) and applied to the matching slots on every rank, so all ranks
  fuse identically by construction;
- **bytes conservation** — a fused op's bytes are the exact sum of its
  constituents', under the same payload tag;
- **acyclicity** — the fused op keeps the first constituent's uid, and a
  slot only joins a group if, on every rank, no *non-member* op sits
  between two members in the dependency order (such an op would become
  both an ancestor and a descendant of the fused op).
"""

from __future__ import annotations

from dataclasses import replace

from ..ir import Barrier, Collective, StepPlan
from .manager import PassContext, PassError, PlanPass, retarget_deps

__all__ = ["GradientBucketing", "DEFAULT_CAP_BYTES"]

#: Re-bucketing cap: 4x DDP's 25 MB default (see module docstring).
DEFAULT_CAP_BYTES = 100e6


def _signature(op: Collective) -> tuple:
    """What must match for two collectives to share a bucket."""
    return (op.comm, op.root, op.payload, op.category, op.traced,
            op.group)


def _ancestors(plan: StepPlan) -> dict:
    """uid -> set of all transitive dependency uids."""
    anc: dict = {}
    for op in plan.topo_order():
        closure: set = set()
        for dep in op.deps:
            closure.add(dep)
            closure |= anc[dep]
        anc[op.uid] = closure
    return anc


def _sync_ops(plan: StepPlan, rank: int, key=...) -> list:
    """This rank's collective/barrier ops in rendezvous-slot order.

    With ``key`` given, only ops rendezvousing on that communicator
    (a group tuple, or ``None`` for the world communicator shared by
    barriers and ungrouped collectives).
    """
    ops = [op for op in plan.by_rank(rank)
           if isinstance(op, (Collective, Barrier))]
    if key is ...:
        return ops
    return [op for op in ops if getattr(op, "group", None) == key]


def _comm_keys(plan: StepPlan) -> list:
    """Every communicator key used by the plan, world first."""
    keys: list = []
    for op in plan:
        if isinstance(op, (Collective, Barrier)):
            key = getattr(op, "group", None)
            if key not in keys:
                keys.append(key)
    return sorted(keys, key=lambda k: (k is not None, k or ()))


class GradientBucketing(PlanPass):
    """Fuse runs of adjacent same-signature collectives up to a cap."""

    name = "bucketing"

    def __init__(self, cap_bytes: float = DEFAULT_CAP_BYTES):
        if cap_bytes <= 0:
            raise PassError("cap_bytes must be positive")
        self.cap_bytes = cap_bytes

    def describe(self) -> str:
        return f"bucketing(cap={self.cap_bytes / 1e6:g}MB)"

    # -- grouping ----------------------------------------------------------
    @staticmethod
    def _fusable(slots, slot: int, group: list, anc: dict) -> bool:
        """Would fusing slots ``group + [slot]`` stay acyclic on every
        rank?  The fused op inherits every member's dependency edges (in
        *and* out), so a non-member X with a member among its ancestors
        *and* a member among its descendants would close a cycle through
        the fused op."""
        for rank_slots in slots:
            members = {rank_slots[s].uid for s in group + [slot]}
            outside: set = set()
            for uid in members:
                outside |= anc[uid] - members
            if any(anc[a] & members for a in outside):
                return False
        return True

    def _slot_groups(self, slots, anc: dict) -> list:
        """Greedy size-capped grouping over rendezvous slot indices.

        Only *consecutive* sync slots fuse (a barrier or a non-matching
        collective in between ends the run), mirroring how DDP buckets
        are contiguous slices of the reversed parameter list.  Decided
        once from rank 0's sequence (identical on all ranks by the rank
        symmetry invariant) with the acyclicity guard consulted on every
        rank, so the result is rank-uniform by construction.
        """
        groups: list = []
        current: list = []
        total = 0.0
        for slot, op in enumerate(slots[0]):
            eligible = (isinstance(op, Collective) and op.bytes > 0
                        and op.payload is not None)
            if (eligible and current
                    and _signature(op) == _signature(
                        slots[0][current[-1]])
                    and total + op.bytes <= self.cap_bytes
                    and self._fusable(slots, slot, current, anc)):
                current.append(slot)
                total += op.bytes
            elif eligible:
                current = [slot]
                total = op.bytes
                groups.append(current)
            else:
                current = []
        return [g for g in groups if len(g) > 1]

    # -- rewrite -----------------------------------------------------------
    def run(self, plan: StepPlan, ctx: PassContext) -> StepPlan:
        anc = _ancestors(plan)
        mapping: dict = {}      # removed uid -> fused (head) uid
        fused: dict = {}        # head uid -> fused op
        # Grouping is per communicator: each group tuple (and the world
        # communicator) has its own rendezvous slot sequence, identical
        # across exactly its members.
        for key in _comm_keys(plan):
            members_ranks = range(plan.world_size) if key is None \
                else key
            slots = [_sync_ops(plan, rank, key) for rank in members_ranks]
            if not slots or not slots[0]:
                continue
            groups = self._slot_groups(slots, anc)
            for rank_slots in slots:
                for group in groups:
                    members = [rank_slots[s] for s in group]
                    head = members[0]
                    uids = {m.uid for m in members}
                    deps: list = []
                    for member in members:
                        for dep in member.deps:
                            if dep not in deps and dep not in uids:
                                deps.append(dep)
                    fused[head.uid] = replace(
                        head,
                        bytes=sum(m.bytes for m in members),
                        deps=tuple(deps),
                        fused=sum(max(1, m.fused) for m in members))
                    for member in members[1:]:
                        mapping[member.uid] = head.uid
        if not fused:
            return plan
        ops = [fused.get(op.uid, op) for op in plan.ops
               if op.uid not in mapping]
        ops = retarget_deps(ops, mapping)
        return StepPlan(plan.name, plan.world_size, ops, plan.meta)
