"""The pass manager: ordered plan rewrites with invariant enforcement.

A :class:`PlanPass` is a pure plan-to-plan rewrite.  The manager's
contract is the optimization layer's safety net:

1. the input plan must already be valid (passes may rely on rank
   symmetry when grouping collectives);
2. after *every* pass the rewritten plan is re-validated — a pass that
   breaks structure, introduces a cycle, desynchronizes the ranks, or
   loses bytes fails loudly at compile time, never at execution time;
3. each pass's effect is recorded as a :class:`PassReport` holding the
   uid-matched :class:`~repro.plan.diff.PlanDiff`, so ``repro plan
   --opt`` can print exactly what each rewrite did.

Passes are registered under short CLI names in :data:`PASS_REGISTRY`;
:func:`resolve_passes` turns ``"bucketing,overlap"`` / ``"all"`` /
already-constructed instances into a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..diff import PlanDiff, diff_plans
from ..ir import Op, PlanError, StepPlan
from ..validate import assert_valid

__all__ = [
    "PassError",
    "PassContext",
    "PlanPass",
    "PassReport",
    "PassManager",
    "PASS_REGISTRY",
    "DEFAULT_PIPELINE",
    "resolve_passes",
    "passes_to_spec",
    "passes_from_spec",
    "retarget_deps",
    "drop_orphaned_gates",
]


class PassError(PlanError):
    """A pass was misconfigured or produced an invalid plan."""


@dataclass
class PassContext:
    """What topology-aware passes may consult (all optional).

    ``rank_nodes`` maps rank index -> topology node name of that rank's
    GPU; passes that size chunks from measured link bandwidth need it
    plus ``topology``.  Structure-only passes ignore the context.
    """

    topology: object = None
    rank_nodes: Sequence[str] = ()
    host_node: Optional[str] = None


class PlanPass:
    """Base class: a named, pure plan-to-plan rewrite."""

    name = "base"

    def run(self, plan: StepPlan, ctx: PassContext) -> StepPlan:
        raise NotImplementedError

    def describe(self) -> str:
        """Short parameterization summary for plan meta / CLI output."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


@dataclass
class PassReport:
    """One pass's measured effect on the plan."""

    pass_name: str
    ops_before: int
    ops_after: int
    diff: PlanDiff = field(repr=False)

    @property
    def changed(self) -> bool:
        return not self.diff.identical

    def summary(self) -> str:
        d = self.diff
        return (f"{self.pass_name}: {self.ops_before} -> "
                f"{self.ops_after} ops (+{len(d.added)} "
                f"-{len(d.removed)} ~{len({c.uid for c in d.changed})})")


class PassManager:
    """Run an ordered pipeline of passes, validating after each one."""

    def __init__(self, passes: Sequence[PlanPass], validate: bool = True):
        for p in passes:
            if not isinstance(p, PlanPass):
                raise PassError(f"not a PlanPass: {p!r}")
        self.passes = list(passes)
        self.validate = validate
        self.reports: list[PassReport] = []

    def run(self, plan: StepPlan,
            ctx: Optional[PassContext] = None) -> StepPlan:
        ctx = ctx or PassContext()
        if self.validate:
            assert_valid(plan)
        self.reports = []
        for p in self.passes:
            rewritten = p.run(plan, ctx)
            if self.validate:
                assert_valid(rewritten)
            self.reports.append(PassReport(
                pass_name=p.name, ops_before=len(plan),
                ops_after=len(rewritten),
                diff=diff_plans(plan, rewritten)))
            plan = rewritten
        if self.passes:
            applied = ",".join(p.describe() for p in self.passes)
            plan = StepPlan(plan.name, plan.world_size, plan.ops,
                            {**plan.meta, "opt": applied})
        return plan


# -- shared rewrite helpers ------------------------------------------------

def retarget_deps(ops: Sequence[Op], mapping: dict) -> list[Op]:
    """Rewrite every op's deps through ``mapping`` (removed uid ->
    replacement uid), deduplicating while preserving order.  Ops whose
    deps are untouched are returned unchanged (same object, same uid) so
    the differ sees them as identical."""
    out = []
    for op in ops:
        if not any(d in mapping for d in op.deps):
            out.append(op)
            continue
        seen: list = []
        for dep in op.deps:
            dep = mapping.get(dep, dep)
            if dep is not None and dep not in seen:
                seen.append(dep)
        out.append(replace(op, deps=tuple(seen)))
    return out


def drop_orphaned_gates(ops: Sequence[Op], candidates: set) -> list[Op]:
    """Remove untraced ops in ``candidates`` that no op depends on any
    more (dead launch gates left behind by a fusion/retiming rewrite)."""
    used: set = set()
    for op in ops:
        used.update(op.deps)
    return [op for op in ops if op.uid not in candidates
            or op.uid in used]


# -- registry --------------------------------------------------------------

def _registry() -> dict:
    from .bucketing import GradientBucketing
    from .chunking import CollectiveChunkSizing
    from .copy_fusion import CopyFusion
    from .overlap import OverlapScheduling
    return {
        "bucketing": GradientBucketing,
        "overlap": OverlapScheduling,
        "copy-fusion": CopyFusion,
        "chunk-size": CollectiveChunkSizing,
    }


#: CLI/pipeline name -> pass class (constructed with defaults).
PASS_REGISTRY = _registry()

#: ``--opt all``: the canonical order.  Bucketing first (fewer, bigger
#: collectives), overlap re-times the fused launches, copy fusion cleans
#: up adjacent transfers, chunk sizing annotates whatever survived.
DEFAULT_PIPELINE = ("bucketing", "overlap", "copy-fusion", "chunk-size")


def resolve_passes(spec) -> list[PlanPass]:
    """Build a pipeline from a spec: ``"bucketing,overlap"``, ``"all"``,
    or any iterable mixing names and :class:`PlanPass` instances."""
    if isinstance(spec, str):
        spec = [s.strip() for s in spec.split(",") if s.strip()]
    out: list[PlanPass] = []
    for item in spec:
        if isinstance(item, PlanPass):
            out.append(item)
        elif item == "all":
            out.extend(PASS_REGISTRY[name]() for name in DEFAULT_PIPELINE)
        elif item in PASS_REGISTRY:
            out.append(PASS_REGISTRY[item]())
        else:
            known = ", ".join(sorted(PASS_REGISTRY))
            raise PassError(
                f"unknown plan pass {item!r} (known: {known}, all)")
    return out


def passes_to_spec(spec) -> list[dict]:
    """Canonical JSONable form of a pass pipeline, knobs *resolved*.

    ``[{"pass": name, "params": {...}}]`` — every constructor parameter
    appears with its concrete value, so two pipelines that differ only
    in a knob (bucket cap, chunk target) serialize differently.  This is
    the form cell caches and tuning tables persist; reverse with
    :func:`passes_from_spec`.  Accepts anything
    :func:`resolve_passes` accepts.
    """
    return [{"pass": p.name, "params": dict(sorted(vars(p).items()))}
            for p in resolve_passes(spec)]


def passes_from_spec(spec: Sequence[dict]) -> list[PlanPass]:
    """Rebuild pass instances from :func:`passes_to_spec` output."""
    out: list[PlanPass] = []
    for entry in spec:
        name = entry["pass"]
        if name not in PASS_REGISTRY:
            known = ", ".join(sorted(PASS_REGISTRY))
            raise PassError(
                f"unknown plan pass {name!r} in spec (known: {known})")
        out.append(PASS_REGISTRY[name](**entry.get("params", {})))
    return out
