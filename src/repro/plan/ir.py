"""The step-program IR: typed ops, plans, and a builder.

Ops are immutable records.  Every op belongs to exactly one *rank* (its
program), carries a display ``name`` (the telemetry span name), a span
``category``, a wire/memory ``bytes`` annotation, and the ``deps`` tuple
of op uids that must complete before it may start.  Dependencies may
cross ranks — that is how pipeline parallelism expresses activation
hand-offs — while collectives and barriers additionally synchronize at
runtime through the communicator's rendezvous.

The op taxonomy (``Compute``, ``H2DCopy``, ``D2HCopy``, ``Collective``,
``StorageRead``, ``StorageWrite``, ``Barrier``) follows the paper's data
workflow; two pragmatic extensions make real schedules expressible:

- :class:`Delay` — a pure time offset.  DDP's bucket-readiness points
  ("bucket i's gradients exist 40% into backward") and the framework's
  per-step overhead (a *fraction of elapsed step time*, so only the
  executor can resolve it) are schedule facts, not device work.
- :class:`P2PCopy` — a direct GPU-to-GPU transfer, the primitive behind
  pipeline-parallel activation/gradient hand-offs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from ..devices.gpu import Precision
from ..telemetry.trace import Category

__all__ = [
    "PlanError",
    "Op",
    "Compute",
    "H2DCopy",
    "D2HCopy",
    "P2PCopy",
    "Collective",
    "StorageRead",
    "StorageWrite",
    "Barrier",
    "Delay",
    "COLLECTIVE_KINDS",
    "StepPlan",
    "PlanBuilder",
    "format_plan",
]

#: Collective flavours the executor can drive on a Communicator.
COLLECTIVE_KINDS = ("allreduce", "reduce_scatter", "all_gather",
                    "broadcast", "reduce")


class PlanError(Exception):
    """Structural misuse while building or consuming a plan."""


@dataclass(frozen=True)
class Op:
    """One node of the step DAG (base class; use the typed subclasses)."""

    kind: ClassVar[str] = "op"

    uid: str
    rank: int
    name: str
    #: Uids of ops that must complete before this op starts.
    deps: tuple = ()
    category: Category = Category.OTHER
    #: Bytes this op moves (0 for pure compute/waits).
    bytes: float = 0.0
    #: Whether the executor derives a telemetry span from this op.
    traced: bool = True
    #: Conservation-lint tag: which logical payload these bytes belong to
    #: (e.g. "gradients"); see ``StepPlan.meta["conservation"]``.
    payload: Optional[str] = None
    #: How many compiler-emitted ops an optimization pass fused into this
    #: one (0 = untouched by any pass; >= 2 after bucketing/copy fusion).
    fused: int = 0

    def describe(self) -> str:
        """One-line rendering used by ``format_plan`` and the CLI."""
        extra = self._describe_extra()
        if self.fused:
            extra += f" fused={self.fused}"
        dep = ",".join(self.deps) if self.deps else "-"
        nbytes = f" {self.bytes / 1e6:.2f}MB" if self.bytes else ""
        return (f"[{self.uid}] {self.kind:<13} {self.name:<18}"
                f"{nbytes}{extra}  <- {dep}")

    def _describe_extra(self) -> str:
        return ""


@dataclass(frozen=True)
class Compute(Op):
    """A GPU kernel: roofline-costed from FLOPs and HBM traffic."""

    kind: ClassVar[str] = "compute"

    flops: float = 0.0
    hbm_bytes: float = 0.0
    precision: Precision = Precision.FP32
    efficiency: float = 1.0
    #: Whether the kernel draws a multiplicative jitter sample.
    jittered: bool = False
    category: Category = Category.COMPUTE

    def _describe_extra(self) -> str:
        return f" {self.flops / 1e9:.1f}GF"


@dataclass(frozen=True)
class H2DCopy(Op):
    """Host DRAM -> this rank's GPU over the attach fabric."""

    kind: ClassVar[str] = "h2d_copy"
    category: Category = Category.DATA
    label: str = "h2d"


@dataclass(frozen=True)
class D2HCopy(Op):
    """This rank's GPU -> host DRAM (checkpoint drains)."""

    kind: ClassVar[str] = "d2h_copy"
    category: Category = Category.CHECKPOINT
    label: str = "d2h"


@dataclass(frozen=True)
class P2PCopy(Op):
    """Direct GPU-to-GPU transfer (pipeline activation hand-off)."""

    kind: ClassVar[str] = "p2p_copy"
    category: Category = Category.COMM
    label: str = "p2p"
    dst_rank: int = -1

    def _describe_extra(self) -> str:
        return f" ->r{self.dst_rank}"


@dataclass(frozen=True)
class Collective(Op):
    """One rank's participation in a communicator-wide collective.

    Every rank contributes one ``Collective`` op per logical operation;
    ``bytes`` is the per-rank payload (NCCL semantics).  At runtime the
    communicator's rendezvous enforces that all ranks join matching ops
    in matching order — the static mirror of that invariant is the
    validator's rank-symmetry pass.

    ``group`` restricts the collective to a subset of world ranks
    (``None`` = world-wide): a sorted tuple of world rank indices that
    rendezvous on their own sub-communicator.  ``root`` stays a *world*
    rank index and must be a group member.  This is how 2D parallelism
    expresses intra-TP-group vs. cross-DP-group communicators.
    """

    kind: ClassVar[str] = "collective"
    category: Category = Category.COMM
    comm: str = "allreduce"
    root: Optional[int] = None
    #: Transport staging chunk size chosen by the chunk-sizing pass
    #: (``None`` = communicator default); forwarded to the communicator,
    #: whose transport penalty amortizes with larger chunks.
    chunk_bytes: Optional[float] = None
    #: Participating world ranks (``None`` = all ranks).
    group: Optional[tuple] = None

    def _describe_extra(self) -> str:
        root = f" root={self.root}" if self.root is not None else ""
        chunk = (f" chunk={self.chunk_bytes / 1e6:.1f}MB"
                 if self.chunk_bytes is not None else "")
        grp = (" grp=" + ",".join(str(r) for r in self.group)
               if self.group is not None else "")
        return f" {self.comm}{root}{chunk}{grp}"


@dataclass(frozen=True)
class StorageRead(Op):
    """Storage device -> host DRAM."""

    kind: ClassVar[str] = "storage_read"
    category: Category = Category.STORAGE


@dataclass(frozen=True)
class StorageWrite(Op):
    """Host DRAM -> storage device (checkpoint persistence)."""

    kind: ClassVar[str] = "storage_write"
    category: Category = Category.STORAGE


@dataclass(frozen=True)
class Barrier(Op):
    """Synchronize all ranks without moving data."""

    kind: ClassVar[str] = "barrier"
    category: Category = Category.STALL


@dataclass(frozen=True)
class Delay(Op):
    """A pure time offset: ``seconds`` plus ``elapsed_fraction`` of the
    time elapsed since this rank entered the plan (the executor resolves
    the latter — it models per-step framework overhead, which PyTorch
    exhibits proportionally to step length)."""

    kind: ClassVar[str] = "delay"
    category: Category = Category.COMPUTE

    seconds: float = 0.0
    elapsed_fraction: float = 0.0

    def _describe_extra(self) -> str:
        if self.elapsed_fraction:
            return f" {self.elapsed_fraction:.3f}*elapsed"
        return f" {self.seconds * 1e3:.3f}ms"


class StepPlan:
    """An immutable program: ops for every rank plus plan-level metadata.

    ``meta`` carries the compiling strategy's declarations — notably
    ``meta["conservation"]``, a ``{payload: total_bytes}`` mapping the
    bytes-conservation lint checks against the sum of op bytes tagged
    with that payload (catching, e.g., bucket-splitting bugs).
    """

    def __init__(self, name: str, world_size: int, ops,
                 meta: Optional[dict] = None):
        if world_size < 1:
            raise PlanError("world_size must be >= 1")
        self.name = name
        self.world_size = world_size
        self.ops: tuple = tuple(ops)
        self.meta: dict = dict(meta or {})
        #: Stamped True by ``assert_valid`` once the plan passes every
        #: lint, so repeated executions skip re-validation (monotone: a
        #: plan's ops are immutable after construction).
        self.validated = False
        self._by_uid = {}
        for op in self.ops:
            if op.uid in self._by_uid:
                raise PlanError(f"duplicate op uid {op.uid!r}")
            self._by_uid[op.uid] = op

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def op(self, uid: str) -> Op:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise PlanError(f"no op {uid!r} in plan {self.name!r}") from None

    def __contains__(self, uid: str) -> bool:
        return uid in self._by_uid

    def by_rank(self, rank: int) -> list:
        """This rank's ops in program (insertion) order."""
        return [op for op in self.ops if op.rank == rank]

    def topo_order(self) -> list:
        """Ops in a dependency-respecting order (raises on cycles)."""
        from .validate import topological_order
        return topological_order(self)

    def counts(self) -> dict:
        """``{op kind: count}`` over the whole plan."""
        out: dict = {}
        for op in self.ops:
            out[op.kind] = out.get(op.kind, 0) + 1
        return out

    def critical_path_bytes(self) -> float:
        """Total bytes annotated across the plan (all ranks)."""
        return sum(op.bytes for op in self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StepPlan {self.name!r} world={self.world_size} "
                f"ops={len(self.ops)}>")


class PlanBuilder:
    """Accumulates ops with auto-generated uids, then builds a StepPlan.

    Uids are ``r{rank}:{name}`` (suffixed ``@n`` on repeats), so plans
    compiled twice from the same strategy get identical uids — which is
    what makes :func:`repro.plan.diff_plans` line up ops across plans.
    """

    def __init__(self, name: str, world_size: int,
                 meta: Optional[dict] = None):
        self.name = name
        self.world_size = world_size
        self.meta = dict(meta or {})
        self._ops: list = []
        self._uid_counts: dict = {}

    def _uid(self, rank: int, name: str) -> str:
        base = f"r{rank}:{name}"
        n = self._uid_counts.get(base, 0)
        self._uid_counts[base] = n + 1
        return base if n == 0 else f"{base}@{n}"

    def _add(self, cls, rank: int, name: str, deps=(), **kw) -> str:
        if not 0 <= rank < self.world_size:
            raise PlanError(f"rank {rank} out of range "
                            f"[0, {self.world_size})")
        uid = self._uid(rank, name)
        deps = tuple(d for d in deps if d is not None)
        self._ops.append(cls(uid=uid, rank=rank, name=name, deps=deps,
                             **kw))
        return uid

    # -- typed helpers (each returns the new op's uid) ---------------------
    def compute(self, rank: int, name: str, *, flops: float,
                hbm_bytes: float, precision: Precision,
                efficiency: float, deps=(), jittered: bool = False,
                traced: bool = True) -> str:
        return self._add(Compute, rank, name, deps, flops=flops,
                         hbm_bytes=hbm_bytes, precision=precision,
                         efficiency=efficiency, jittered=jittered,
                         traced=traced)

    def collective(self, rank: int, name: str, comm: str, nbytes: float,
                   *, root: Optional[int] = None, deps=(),
                   payload: Optional[str] = None,
                   category: Category = Category.COMM,
                   group: Optional[tuple] = None,
                   traced: bool = True) -> str:
        if comm not in COLLECTIVE_KINDS:
            raise PlanError(f"unknown collective kind {comm!r}")
        if group is not None:
            group = tuple(group)
            if list(group) != sorted(set(group)):
                raise PlanError(f"group {group} must be sorted and unique")
            if any(not 0 <= g < self.world_size for g in group):
                raise PlanError(f"group {group} has out-of-range ranks")
            if rank not in group:
                raise PlanError(f"rank {rank} not in its group {group}")
            if root is not None and root not in group:
                raise PlanError(f"root {root} not in group {group}")
        return self._add(Collective, rank, name, deps, comm=comm,
                         bytes=nbytes, root=root, payload=payload,
                         category=category, group=group, traced=traced)

    def barrier(self, rank: int, name: str = "barrier", *, deps=(),
                traced: bool = True) -> str:
        return self._add(Barrier, rank, name, deps, traced=traced)

    def delay(self, rank: int, name: str, *, seconds: float = 0.0,
              elapsed_fraction: float = 0.0, deps=(),
              category: Category = Category.COMPUTE,
              traced: bool = True) -> str:
        return self._add(Delay, rank, name, deps, seconds=seconds,
                         elapsed_fraction=elapsed_fraction,
                         category=category, traced=traced)

    def h2d(self, rank: int, name: str, nbytes: float, *, deps=(),
            label: str = "h2d", payload: Optional[str] = None,
            category: Category = Category.DATA,
            traced: bool = True) -> str:
        return self._add(H2DCopy, rank, name, deps, bytes=nbytes,
                         label=label, payload=payload, category=category,
                         traced=traced)

    def d2h(self, rank: int, name: str, nbytes: float, *, deps=(),
            label: str = "d2h", payload: Optional[str] = None,
            category: Category = Category.CHECKPOINT,
            traced: bool = True) -> str:
        return self._add(D2HCopy, rank, name, deps, bytes=nbytes,
                         label=label, payload=payload, category=category,
                         traced=traced)

    def p2p(self, rank: int, name: str, dst_rank: int, nbytes: float, *,
            deps=(), label: str = "p2p", payload: Optional[str] = None,
            traced: bool = True) -> str:
        if not 0 <= dst_rank < self.world_size:
            raise PlanError(f"dst_rank {dst_rank} out of range")
        if dst_rank == rank:
            raise PlanError("p2p copy to the sending rank itself")
        return self._add(P2PCopy, rank, name, deps, dst_rank=dst_rank,
                         bytes=nbytes, label=label, payload=payload,
                         traced=traced)

    def storage_read(self, rank: int, name: str, nbytes: float, *,
                     deps=(), payload: Optional[str] = None,
                     category: Category = Category.STORAGE,
                     traced: bool = True) -> str:
        return self._add(StorageRead, rank, name, deps, bytes=nbytes,
                         payload=payload, category=category,
                         traced=traced)

    def storage_write(self, rank: int, name: str, nbytes: float, *,
                      deps=(), payload: Optional[str] = None,
                      category: Category = Category.STORAGE,
                      traced: bool = True) -> str:
        return self._add(StorageWrite, rank, name, deps, bytes=nbytes,
                         payload=payload, category=category,
                         traced=traced)

    def declare_conservation(self, payload: str, total_bytes: float) -> None:
        """Declare the expected plan-wide byte total for a payload tag."""
        self.meta.setdefault("conservation", {})[payload] = total_bytes

    def build(self) -> StepPlan:
        plan = StepPlan(self.name, self.world_size, self._ops, self.meta)
        for op in plan:
            for dep in op.deps:
                if dep not in plan:
                    raise PlanError(
                        f"op {op.uid!r} depends on unknown op {dep!r}")
        return plan


def format_plan(plan: StepPlan, ranks: Optional[list] = None) -> str:
    """Human-readable program listing, one section per rank."""
    lines = [f"plan {plan.name}  world={plan.world_size}  "
             f"ops={len(plan)}"]
    counts = " ".join(f"{k}={v}" for k, v in sorted(plan.counts().items()))
    lines.append(f"  kinds: {counts}")
    for key, value in sorted(plan.meta.items()):
        if key == "conservation":
            decl = " ".join(f"{p}={b / 1e6:.2f}MB"
                            for p, b in sorted(value.items()))
            lines.append(f"  conservation: {decl}")
        else:
            lines.append(f"  {key}: {value}")
    show = range(plan.world_size) if ranks is None else ranks
    for rank in show:
        lines.append(f"rank {rank}:")
        for op in plan.by_rank(rank):
            lines.append(f"  {op.describe()}")
    return "\n".join(lines)
