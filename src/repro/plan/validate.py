"""Static validation passes over a :class:`~repro.plan.ir.StepPlan`.

Three families of checks:

1. **Graph well-formedness** — dangling dependencies, duplicate uids
   (already rejected at construction), rank ranges, negative costs, and
   cycle detection via Kahn's algorithm.
2. **Rank symmetry** — every rank must issue the *same ordered sequence*
   of collectives/barriers with matching kind, bytes, root, and staging
   chunk size.  This is
   the static mirror of the communicator's runtime rendezvous (which
   matches ops by per-rank sequence number and raises
   ``CollectiveError`` on divergence); a plan that fails this pass would
   deadlock or crash a real NCCL job.
3. **Bytes conservation** — for every payload the plan declares under
   ``meta["conservation"]`` (``{payload: expected_total_bytes}``), the
   bytes of ops tagged with that payload must sum to the declaration.
   This is a lint against compiler bucketing/sharding bugs: however a
   strategy splits gradients into buckets or shards, the total on the
   wire must equal what the model produces.
"""

from __future__ import annotations

from .ir import Barrier, Collective, Compute, Delay, Op, StepPlan

__all__ = ["PlanValidationError", "validate_plan", "assert_valid",
           "topological_order"]

#: Relative slack for byte-conservation comparisons (float accumulation).
_CONSERVATION_RTOL = 1e-6


class PlanValidationError(Exception):
    """A plan failed validation; ``problems`` lists every finding."""

    def __init__(self, plan_name: str, problems: list):
        super().__init__(
            f"plan {plan_name!r} failed validation with "
            f"{len(problems)} problem(s):\n  " + "\n  ".join(problems))
        self.problems = list(problems)


def topological_order(plan: StepPlan) -> list:
    """Kahn's algorithm; raises :class:`PlanValidationError` on a cycle."""
    indegree = {op.uid: 0 for op in plan}
    dependents: dict = {op.uid: [] for op in plan}
    for op in plan:
        for dep in op.deps:
            if dep in indegree:
                indegree[op.uid] += 1
                dependents[dep].append(op.uid)
    ready = [op.uid for op in plan if indegree[op.uid] == 0]
    order = []
    while ready:
        uid = ready.pop()
        order.append(plan.op(uid))
        for nxt in dependents[uid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(plan):
        stuck = sorted(uid for uid, deg in indegree.items() if deg > 0)
        raise PlanValidationError(
            plan.name, [f"dependency cycle involving: {', '.join(stuck)}"])
    return order


def validate_plan(plan: StepPlan) -> list:
    """Run every pass; return the list of problems (empty = valid)."""
    problems: list = []
    problems += _check_structure(plan)
    # Cycle detection only makes sense on a structurally sound graph.
    if not problems:
        problems += _check_acyclic(plan)
    problems += _check_rank_symmetry(plan)
    problems += _check_conservation(plan)
    return problems


def assert_valid(plan: StepPlan) -> StepPlan:
    """Raise :class:`PlanValidationError` unless the plan is clean.

    Stamps ``plan.validated`` on success so executors can skip
    re-validating the same (immutable) plan on every step.
    """
    problems = validate_plan(plan)
    if problems:
        raise PlanValidationError(plan.name, problems)
    plan.validated = True
    return plan


# -- passes ----------------------------------------------------------------

def _check_structure(plan: StepPlan) -> list:
    problems = []
    for op in plan:
        if not 0 <= op.rank < plan.world_size:
            problems.append(f"{op.uid}: rank {op.rank} out of range "
                            f"[0, {plan.world_size})")
        for dep in op.deps:
            if dep not in plan:
                problems.append(f"{op.uid}: dangling dep {dep!r}")
            elif dep == op.uid:
                problems.append(f"{op.uid}: depends on itself")
        if op.bytes < 0:
            problems.append(f"{op.uid}: negative bytes {op.bytes}")
        if op.fused < 0:
            problems.append(f"{op.uid}: negative fused count {op.fused}")
        if isinstance(op, Compute):
            if op.flops < 0 or op.hbm_bytes < 0:
                problems.append(f"{op.uid}: negative compute cost")
            if not 0 < op.efficiency <= 1.5:
                problems.append(
                    f"{op.uid}: implausible efficiency {op.efficiency}")
        if isinstance(op, Delay):
            if op.seconds < 0 or op.elapsed_fraction < 0:
                problems.append(f"{op.uid}: negative delay")
        if isinstance(op, Collective):
            if op.root is not None \
                    and not 0 <= op.root < plan.world_size:
                problems.append(f"{op.uid}: root {op.root} out of range")
            if op.chunk_bytes is not None and op.chunk_bytes <= 0:
                problems.append(
                    f"{op.uid}: non-positive chunk_bytes {op.chunk_bytes}")
            if op.group is not None:
                group = op.group
                if list(group) != sorted(set(group)):
                    problems.append(
                        f"{op.uid}: group {group} not sorted/unique")
                elif any(not 0 <= g < plan.world_size for g in group):
                    problems.append(
                        f"{op.uid}: group {group} has out-of-range ranks")
                elif op.rank not in group:
                    problems.append(
                        f"{op.uid}: rank {op.rank} outside its group "
                        f"{group}")
                elif op.root is not None and op.root not in group:
                    problems.append(
                        f"{op.uid}: root {op.root} outside group {group}")
    return problems


def _check_acyclic(plan: StepPlan) -> list:
    try:
        topological_order(plan)
    except PlanValidationError as exc:
        return list(exc.problems)
    return []


def _sync_signature(op: Op):
    """What must match across ranks for one rendezvous slot."""
    if isinstance(op, Collective):
        return ("collective", op.comm, op.bytes, op.root, op.chunk_bytes)
    if isinstance(op, Barrier):
        return ("barrier",)
    return None


def _comm_key(op: Op):
    """Which communicator an op rendezvouses on (``None`` = world)."""
    if isinstance(op, Collective):
        return op.group
    return None  # barriers synchronize the world communicator


def sync_sequences(plan: StepPlan) -> dict:
    """``{communicator key: {rank: [signatures]}}`` in program order.

    The communicator key is a group tuple (``None`` = the world
    communicator, which barriers and ungrouped collectives share).
    Every member of a communicator gets an entry, even with zero ops.
    """
    out: dict = {}
    for rank in range(plan.world_size):
        for op in plan.by_rank(rank):
            sig = _sync_signature(op)
            if sig is None:
                continue
            key = _comm_key(op)
            out.setdefault(key, {}).setdefault(rank, []).append(sig)
    for key, by_rank in out.items():
        members = range(plan.world_size) if key is None else key
        for rank in members:
            by_rank.setdefault(rank, [])
    return out


def _check_rank_symmetry(plan: StepPlan) -> list:
    """Each communicator's members must issue identical ordered runs.

    World-wide ops (barriers, ungrouped collectives) must match across
    every rank; grouped collectives must match across exactly their
    group's members — the static mirror of per-sub-communicator
    rendezvous sequence numbers.
    """
    problems = []
    for key, by_rank in sorted(sync_sequences(plan).items(),
                               key=lambda kv: (kv[0] is not None, kv[0])):
        members = list(range(plan.world_size)) if key is None \
            else [g for g in key if 0 <= g < plan.world_size]
        if not members:
            continue
        label = "world" if key is None else f"group {key}"
        strays = sorted(set(by_rank) - set(members))
        for rank in strays:
            if by_rank[rank]:
                problems.append(
                    f"rank-symmetry: rank {rank} issues ops on {label} "
                    "without being a member")
        lead = members[0]
        reference = by_rank.get(lead, [])
        for rank in members[1:]:
            seq = by_rank.get(rank, [])
            if len(seq) != len(reference):
                problems.append(
                    f"rank-symmetry[{label}]: rank {rank} issues "
                    f"{len(seq)} collective/barrier ops, rank {lead} "
                    f"issues {len(reference)}")
                continue
            for slot, (a, b) in enumerate(zip(reference, seq)):
                if a != b:
                    problems.append(
                        f"rank-symmetry[{label}]: slot {slot} diverges — "
                        f"rank {lead} {a!r} vs rank {rank} {b!r}")
                    break
    return problems


def _check_conservation(plan: StepPlan) -> list:
    declared = plan.meta.get("conservation", {})
    if not declared:
        return []
    totals: dict = {}
    for op in plan:
        if op.payload is not None:
            totals[op.payload] = totals.get(op.payload, 0.0) + op.bytes
    problems = []
    for payload, expected in sorted(declared.items()):
        actual = totals.get(payload, 0.0)
        tolerance = _CONSERVATION_RTOL * max(abs(expected), 1.0)
        if abs(actual - expected) > tolerance:
            problems.append(
                f"bytes-conservation: payload {payload!r} sums to "
                f"{actual:.6g} B but the plan declares {expected:.6g} B")
    for payload in sorted(set(totals) - set(declared)):
        problems.append(
            f"bytes-conservation: payload {payload!r} is tagged on ops "
            "but has no declared total in meta['conservation']")
    return problems
