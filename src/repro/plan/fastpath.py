"""Fast-path plan evaluation: plan timing without the event loop.

:func:`fastpath_schedule` computes the exact per-op ``(start, end)``
times :class:`~repro.plan.executor.PlanExecution` would record for a
compiled :class:`~repro.plan.ir.StepPlan`, without spinning up
``Environment`` processes, generators, or callback chains.  It is a
specialized discrete-event engine with exactly three event kinds — op
readiness, flow arrival, and the fluid-timeline timer — instead of the
kernel's generic process machinery, so evaluating a plan touches an
order of magnitude fewer Python frames per op.

Bit-identity, not approximation
-------------------------------
The engine does **not** re-derive timing from a simplified cost model;
it replays the identical arithmetic the executor's device models apply,
in the identical order:

- compute kernels call the real ``GPU.kernel_time`` roofline and
  serialize on a per-rank stream cursor (the DES ``Resource`` FIFO);
- collectives mirror the communicator's rendezvous (per-rank arrival
  order assigns the op id), its ring/star phase schedules, and the real
  ``Communicator._transport_factor`` byte inflation per route;
- every transfer pays ``transfer_overhead + route.latency`` and then
  streams through a single global fluid timeline that calls the real
  ``FlowScheduler._assign_rates`` water-filling solver, advancing
  deliveries with the same ``min(remaining, rate * dt)`` updates at the
  same recompute points (every flow arrival, every completion horizon);
- storage I/O mirrors the queue-depth admission, fixed latency, and
  write-bandwidth byte inflation of ``StorageDevice``.

Because the recompute points and the arithmetic are the same floats in
the same order, the computed timeline *is* the event-loop timeline — not
merely close to it.  Where the engine cannot reconstruct the kernel's
tie-breaking order (two same-rank ops hitting one FIFO at the same
instant, a watchdog racing a completion), it refuses with
:class:`FastPathUnsupported` instead of guessing, and
:func:`evaluate_plan`'s ``auto`` mode falls back to the real executor.

The fast path is *pure*: it reads device specs, routes, and penalty
tables but mutates no device state, link counter, or communicator
sequence number, so it can be invoked any number of times on a live
system without perturbing it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Optional

from ..fabric.flows import _EPSILON_BYTES as _EPS_BYTES
from ..fabric.flows import _EPSILON_SECONDS as _EPS_SECONDS
from ..fabric.maxmin import MaxMinSolver
from .executor import ExecutionContext, PlanExecution
from .ir import (
    Barrier,
    Collective,
    Compute,
    D2HCopy,
    Delay,
    H2DCopy,
    P2PCopy,
    PlanError,
    StepPlan,
    StorageRead,
    StorageWrite,
)

__all__ = [
    "FastPathUnsupported",
    "PlanTiming",
    "fastpath_support",
    "fastpath_schedule",
    "evaluate_plan",
]

#: Relative tolerance for ``assert_equivalence`` comparisons.
EQUIVALENCE_RTOL = 1e-9
#: Absolute floor for comparisons of times at/near zero.
EQUIVALENCE_ATOL = 1e-12

#: Collective kind -> (schedule family, phase count fn of world size).
_RING = {
    "allreduce": lambda n: 2 * (n - 1),
    "reduce_scatter": lambda n: n - 1,
    "allgather": lambda n: n - 1,
}
#: Plan-IR collective names -> communicator kind strings.
_COMM_KIND = {
    "allreduce": "allreduce",
    "reduce_scatter": "reduce_scatter",
    "all_gather": "allgather",
    "broadcast": "broadcast",
    "reduce": "reduce",
}


class FastPathUnsupported(Exception):
    """The fast path cannot guarantee executor-identical timing here."""


@dataclass
class PlanTiming:
    """Per-op timing of one plan evaluation, relative to its start."""

    #: ``"fastpath"`` or ``"executor"``.
    mode: str
    #: uid -> (start, end), in seconds from evaluation start.
    op_times: dict = field(default_factory=dict)
    #: Completion time of the last op.
    makespan: float = 0.0

    def rank_end(self, plan: StepPlan, rank: int) -> float:
        """Finish time of ``rank``'s program."""
        ends = [self.op_times[op.uid][1] for op in plan.by_rank(rank)
                if op.uid in self.op_times]
        return max(ends) if ends else 0.0


def _jitter_is_deterministic(jitter: Callable[[], float]) -> bool:
    """Whether the context's jitter sampler always returns exactly 1.0.

    True for the :class:`ExecutionContext` default and for
    ``StepCosts.jitter_factor`` with jitter disabled (``rng is None``) —
    detected without calling the sampler, so an active RNG's stream is
    never perturbed by eligibility probing.
    """
    owner = getattr(jitter, "__self__", None)
    if owner is not None and hasattr(owner, "rng"):
        return owner.rng is None
    default = ExecutionContext.__dataclass_fields__["jitter"].default
    return jitter is default


def fastpath_support(plan: StepPlan, ctx: ExecutionContext
                     ) -> Optional[str]:
    """Static eligibility check; returns a reason string or ``None``.

    ``None`` means the fast path *may* run (dynamic ambiguities can
    still surface mid-evaluation and raise
    :class:`FastPathUnsupported`).
    """
    if ctx.tracer is not None and getattr(ctx.tracer, "enabled", False):
        return "a tracing collector is attached (spans need the executor)"
    if getattr(ctx.topology, "tracer", None) is not None:
        return "the topology is traced (fabric spans need the executor)"
    has_rendezvous = any(isinstance(op, (Collective, Barrier))
                         for op in plan)
    if has_rendezvous and ctx.comm is None:
        return "plan has collectives but the context has no communicator"
    if any(isinstance(op, (StorageRead, StorageWrite)) for op in plan) \
            and ctx.storage is None:
        return "plan has storage ops but the context has no storage device"
    if any(isinstance(op, Compute) and op.jittered for op in plan) \
            and not _jitter_is_deterministic(ctx.jitter):
        return "kernel jitter is stochastic (per-sample RNG draws)"
    return None


# -- the engine --------------------------------------------------------------

class _Flow:
    """Duck-typed flow fed to the real ``FlowScheduler._assign_rates``."""

    __slots__ = ("segments", "remaining", "rate", "on_done")

    def __init__(self, segments, nbytes: float, on_done):
        self.segments = segments
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.on_done = on_done


class _Group:
    """One rendezvoused collective/barrier across its communicator."""

    __slots__ = ("kind", "nbytes", "root", "chunk", "arrived", "uids",
                 "phase", "total_phases", "inflight", "nodes")

    def __init__(self, kind, nbytes, root, chunk, nodes):
        self.kind = kind
        self.nbytes = nbytes
        #: Communicator-local root index (grouped ops translate).
        self.root = root
        self.chunk = chunk
        #: Participating topology node names, in communicator order.
        self.nodes = nodes
        self.arrived = {}       # world rank -> join time
        self.uids = {}          # world rank -> op uid
        self.phase = 0
        self.total_phases = 0
        self.inflight = 0


class _Engine:
    """Specialized scheduler replaying a plan's exact DES timeline."""

    def __init__(self, plan: StepPlan, ctx: ExecutionContext):
        self.plan = plan
        self.ctx = ctx
        self._heap: list = []
        self._seq = 0
        self.times: dict = {}
        self._start: dict = {}
        # Dependency bookkeeping.
        self._indegree: dict = {}
        self._dependents: dict = {}
        # Per-rank GPU stream cursor (DES Resource capacity-1 FIFO).
        self._stream_free: dict = {}
        self._last_compute_ready: dict = {}
        # Rendezvous state mirroring Communicator._join.
        self._op_seq: dict = {}
        self._groups: dict = {}
        self._last_join: dict = {}
        # Storage queue-depth admission.
        self._io_active = 0
        self._io_queue: list = []
        self._last_io_ready: Optional[float] = None
        # Global fluid timeline (insertion-ordered, like FlowScheduler),
        # rated by the same incremental component solver.
        self._flows: dict = {}
        self._flow_ids = 0
        self._solver = MaxMinSolver()
        self._last_update = 0.0
        self._generation = 0

    # -- event plumbing ---------------------------------------------------
    def _schedule(self, time: float, fn) -> None:
        self._seq += 1
        heappush(self._heap, (time, self._seq, fn))

    def run(self) -> PlanTiming:
        plan, ctx = self.plan, self.ctx
        for op in plan:
            self._indegree[op.uid] = 0
            self._dependents.setdefault(op.uid, [])
        for op in plan:
            for dep in op.deps:
                if dep not in self._indegree:
                    raise FastPathUnsupported(
                        f"op {op.uid!r} depends on {dep!r} outside the plan")
                self._indegree[op.uid] += 1
                self._dependents[dep].append(op)
        # Seed roots in the executor's spawn order: run_rank(0..n-1),
        # each spawning its ops in program order, so same-instant root
        # ties resolve exactly as the kernel's FIFO would.
        for rank in range(plan.world_size):
            for op in plan.by_rank(rank):
                if self._indegree[op.uid] == 0:
                    self._schedule(0.0, self._ready_fn(op))
        while self._heap:
            time, _seq, fn = heappop(self._heap)
            fn(time)
        if len(self.times) != len(plan.ops):
            missing = [op.uid for op in plan if op.uid not in self.times]
            raise FastPathUnsupported(
                f"plan stalled; {len(missing)} op(s) never completed "
                f"(first: {missing[0]!r})")
        makespan = max((end for _s, end in self.times.values()),
                       default=0.0)
        return PlanTiming(mode="fastpath", op_times=dict(self.times),
                          makespan=makespan)

    def _ready_fn(self, op):
        return lambda t: self._op_ready(op, t)

    # -- op lifecycle ------------------------------------------------------
    def _op_ready(self, op, t: float) -> None:
        self._start[op.uid] = t
        if isinstance(op, Compute):
            self._run_compute(op, t)
        elif isinstance(op, (Collective, Barrier)):
            self._join_group(op, t)
        elif isinstance(op, Delay):
            elapsed = t - 0.0
            self._finish_at(
                op, t + (op.seconds + op.elapsed_fraction * elapsed))
        elif isinstance(op, (H2DCopy, D2HCopy, P2PCopy)):
            self._run_transfer(op, t)
        elif isinstance(op, (StorageRead, StorageWrite)):
            self._enqueue_io(op, t)
        else:  # pragma: no cover - taxonomy is closed
            raise PlanError(f"fast path cannot run op kind {op.kind!r}")

    def _finish_at(self, op, end: float) -> None:
        self._schedule(end, lambda t: self._op_done(op, t))

    def _op_done(self, op, t: float) -> None:
        self.times[op.uid] = (self._start[op.uid], t)
        for dependent in self._dependents[op.uid]:
            self._indegree[dependent.uid] -= 1
            if self._indegree[dependent.uid] == 0:
                self._schedule(t, self._ready_fn(dependent))

    # -- compute -----------------------------------------------------------
    def _run_compute(self, op, t: float) -> None:
        rank = op.rank
        if self._last_compute_ready.get(rank) == t:
            raise FastPathUnsupported(
                f"two computes ready on rank {rank} at t={t}: "
                "stream FIFO order is ambiguous")
        self._last_compute_ready[rank] = t
        factor = self.ctx.jitter() if op.jittered else 1.0
        duration = self.ctx.gpus[rank].kernel_time(
            op.flops * factor, op.hbm_bytes, op.precision, op.efficiency)
        begin = max(t, self._stream_free.get(rank, 0.0))
        end = begin + duration
        self._stream_free[rank] = end
        self._finish_at(op, end)

    # -- rendezvous (Communicator._join mirror) ----------------------------
    def _join_group(self, op, t: float) -> None:
        comm = self.ctx.comm
        rank = op.rank
        # Grouped collectives rendezvous on their own sub-communicator:
        # state is keyed by the group tuple (None = world), mirroring
        # Communicator.subgroup's per-child sequence numbers.
        gkey = getattr(op, "group", None)
        if self._last_join.get((rank, gkey)) == t:
            raise FastPathUnsupported(
                f"rank {rank} joins two collectives at t={t}: "
                "rendezvous order is ambiguous")
        self._last_join[(rank, gkey)] = t
        members = list(range(self.plan.world_size)) if gkey is None \
            else list(gkey)
        nodes = [comm.ranks[i] for i in members]
        if isinstance(op, Barrier):
            spec = ("barrier", 0.0, None, None)
        else:
            kind = _COMM_KIND.get(op.comm)
            if kind is None:
                raise FastPathUnsupported(
                    f"unknown collective kind {op.comm!r}")
            if kind in ("broadcast", "reduce"):
                # Communicator-local root index, like the executor's
                # subgroup translation.
                root = members.index(op.root) if op.root is not None else 0
            else:
                root = None
            spec = (kind, op.bytes, root, op.chunk_bytes)
        opid = self._op_seq.get((gkey, rank), 0)
        self._op_seq[(gkey, rank)] = opid + 1
        group = self._groups.get((gkey, opid))
        if group is None:
            group = self._groups[(gkey, opid)] = _Group(*spec, nodes)
        elif (group.kind, group.nbytes, group.root, group.chunk) != spec:
            raise FastPathUnsupported(
                f"collective mismatch at op {opid}: rank {rank} called "
                f"{spec} but op is {(group.kind, group.nbytes, group.root, group.chunk)}")
        group.arrived[rank] = t
        group.uids[rank] = op.uid
        if len(group.arrived) == len(members):
            del self._groups[(gkey, opid)]
            self._execute_group(group, t)

    def _execute_group(self, group: _Group, t: float) -> None:
        world = len(group.nodes)
        if world == 1 or group.kind == "barrier" or group.nbytes == 0:
            self._schedule(t, lambda now: self._group_done(group, now))
            return
        phases = _RING.get(group.kind)
        group.total_phases = phases(world) if phases else 1
        group.phase = 0
        self._spawn_phase(group, t)

    def _spawn_phase(self, group: _Group, t: float) -> None:
        comm = self.ctx.comm
        ranks = group.nodes
        n = len(ranks)
        if group.kind in _RING:
            per_transfer = group.nbytes / n
            pairs = [(ranks[i], ranks[(i + 1) % n]) for i in range(n)]
        else:
            per_transfer = group.nbytes
            root = group.root
            others = [i for i in range(n) if i != root]
            if group.kind == "broadcast":
                pairs = [(ranks[root], ranks[i]) for i in others]
            else:  # reduce
                pairs = [(ranks[i], ranks[root]) for i in others]
        group.inflight = len(pairs)

        def flow_done(now, group=group):
            group.inflight -= 1
            if group.inflight:
                return
            group.phase += 1
            if group.phase >= group.total_phases:
                self._group_done(group, now)
            else:
                self._spawn_phase(group, now)

        topo = comm.topology
        for src, dst in pairs:
            route = topo.route(src, dst)
            factor = comm._transport_factor(route, group.chunk)
            self._launch_transfer(t, route, per_transfer * factor,
                                  flow_done)

    def _group_done(self, group: _Group, t: float) -> None:
        watchdog = getattr(self.ctx.comm, "watchdog", None)
        for rank, uid in group.uids.items():
            arrival = group.arrived[rank]
            if watchdog is not None and t - arrival >= watchdog:
                raise FastPathUnsupported(
                    "collective completion races the watchdog timeout")
            op = self.plan.op(uid)
            self._start[uid] = arrival
            self._op_done(op, t)

    # -- transfers (Topology.transfer mirror) ------------------------------
    def _launch_transfer(self, t: float, route, nbytes: float,
                         on_done) -> None:
        """Mirror ``Topology._transfer``: fixed latency, then the flow."""
        topo = self.ctx.topology
        arrival = t + (topo.transfer_overhead + route.latency)
        segments = route.segments
        if nbytes > 0 and segments:
            self._schedule(
                arrival,
                lambda now: self._flow_arrives(segments, nbytes, on_done,
                                               now))
        else:
            self._schedule(arrival, on_done)

    def _run_transfer(self, op, t: float) -> None:
        ctx = self.ctx
        gpus = ctx.gpus
        if isinstance(op, H2DCopy):
            src, dst = ctx.host_node, gpus[op.rank].name
        elif isinstance(op, D2HCopy):
            src, dst = gpus[op.rank].name, ctx.host_node
        else:
            src, dst = gpus[op.rank].name, gpus[op.dst_rank].name
        route = ctx.topology.route(src, dst)
        self._launch_transfer(t, route, op.bytes,
                              lambda now: self._op_done(op, now))

    # -- storage I/O (StorageDevice._io mirror) ----------------------------
    def _enqueue_io(self, op, t: float) -> None:
        if self._io_active < self.ctx.storage.spec.queue_depth:
            self._io_active += 1
            self._admit_io(op, t)
        else:
            if self._last_io_ready == t:
                raise FastPathUnsupported(
                    f"two storage commands queue at t={t}: "
                    "admission order is ambiguous")
            self._last_io_ready = t
            self._io_queue.append(op)

    def _admit_io(self, op, t: float) -> None:
        storage = self.ctx.storage
        spec = storage.spec
        if isinstance(op, StorageRead):
            src, dst = storage.media_node, self.ctx.host_node
            nbytes, latency = op.bytes, spec.read_latency
        else:
            inflation = spec.read_bandwidth / spec.write_bandwidth
            src, dst = self.ctx.host_node, storage.media_node
            nbytes, latency = op.bytes * inflation, spec.write_latency
        route = self.ctx.topology.route(src, dst)

        def done(now):
            self._io_active -= 1
            if self._io_queue:
                self._io_active += 1
                self._admit_io(self._io_queue.pop(0), now)
            self._op_done(op, now)

        self._launch_transfer(t + latency, route, nbytes, done)

    # -- the global fluid timeline (FlowScheduler mirror) ------------------
    def _flow_arrives(self, segments, nbytes: float, on_done,
                      now: float) -> None:
        """Mirror ``start_flow``: advance, add, recompute."""
        if nbytes <= _EPS_BYTES or not segments:
            self._schedule(now, on_done)
            return
        flow = _Flow(segments, nbytes, on_done)
        self._advance(now)
        self._flow_ids += 1
        self._flows[self._flow_ids] = flow
        self._solver.add(flow)
        self._recompute(now)

    def _advance(self, now: float) -> None:
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for flow in self._flows.values():
            delivered = min(flow.remaining, flow.rate * dt)
            if delivered > 0:
                flow.remaining -= delivered

    def _recompute(self, now: float) -> None:
        # Complete drained flows under the *current* rates, then
        # water-fill the affected components — the FlowScheduler update
        # order, with the same incremental solver.
        drained = [fid for fid, f in self._flows.items()
                   if self._is_drained(f)]
        for fid in drained:
            flow = self._flows.pop(fid)
            self._solver.remove(flow)
            self._schedule(now, flow.on_done)
        self._solver.solve()
        self._arm_timer(now)

    @staticmethod
    def _is_drained(flow: _Flow) -> bool:
        if flow.remaining <= _EPS_BYTES:
            return True
        return flow.rate > 0 \
            and flow.remaining / flow.rate <= _EPS_SECONDS

    def _arm_timer(self, now: float) -> None:
        self._generation += 1
        if not self._flows:
            return
        gen = self._generation
        horizon = min(f.remaining / f.rate for f in self._flows.values()
                      if f.rate > 0)
        self._schedule(now + horizon,
                       lambda t: self._on_timer(t, gen))

    def _on_timer(self, now: float, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later recompute
        self._advance(now)
        self._recompute(now)


def fastpath_schedule(plan: StepPlan, ctx: ExecutionContext) -> PlanTiming:
    """Evaluate ``plan`` on the fast path; raises
    :class:`FastPathUnsupported` when equivalence cannot be guaranteed.
    """
    reason = fastpath_support(plan, ctx)
    if reason is not None:
        raise FastPathUnsupported(reason)
    return _Engine(plan, ctx).run()


def _executor_timing(plan: StepPlan, ctx: ExecutionContext) -> PlanTiming:
    """Run the plan through the real executor and normalize its times.

    This advances ``ctx.env`` and mutates device state — callers own a
    throwaway system (or accept the side effects).
    """
    env = ctx.env
    base = env.now
    execution = PlanExecution(plan, ctx)
    procs = [env.process(execution.run_rank(rank))
             for rank in range(plan.world_size)]
    env.run(env.all_of(procs))
    times = {uid: (start - base, end - base)
             for uid, (start, end) in execution._times.items()}
    makespan = max((end for _s, end in times.values()), default=0.0)
    return PlanTiming(mode="executor", op_times=times, makespan=makespan)


def _assert_equal(fast: PlanTiming, slow: PlanTiming) -> None:
    if set(fast.op_times) != set(slow.op_times):
        only_fast = set(fast.op_times) - set(slow.op_times)
        only_slow = set(slow.op_times) - set(fast.op_times)
        raise AssertionError(
            f"op coverage differs: fastpath-only={sorted(only_fast)[:5]} "
            f"executor-only={sorted(only_slow)[:5]}")
    for uid, (f0, f1) in fast.op_times.items():
        s0, s1 = slow.op_times[uid]
        for label, a, b in (("start", f0, s0), ("end", f1, s1)):
            if not math.isclose(a, b, rel_tol=EQUIVALENCE_RTOL,
                                abs_tol=EQUIVALENCE_ATOL):
                raise AssertionError(
                    f"op {uid!r} {label} diverges: fastpath={a!r} "
                    f"executor={b!r}")
    if not math.isclose(fast.makespan, slow.makespan,
                        rel_tol=EQUIVALENCE_RTOL,
                        abs_tol=EQUIVALENCE_ATOL):
        raise AssertionError(
            f"makespan diverges: fastpath={fast.makespan!r} "
            f"executor={slow.makespan!r}")


def evaluate_plan(plan: StepPlan, ctx: ExecutionContext,
                  mode: str = "auto",
                  assert_equivalence: bool = False) -> PlanTiming:
    """Compute a plan's timing, choosing the engine automatically.

    Parameters
    ----------
    mode:
        ``"auto"`` (fast path when eligible, executor otherwise),
        ``"fastpath"`` (raise :class:`FastPathUnsupported` if not
        eligible), or ``"executor"``.
    assert_equivalence:
        Debug mode: run *both* engines and compare every op's start/end
        and the makespan at ``1e-9`` relative tolerance, raising
        ``AssertionError`` on any drift.  Returns the fast-path timing.
        The executor leg advances ``ctx.env`` and device state, so use a
        throwaway system.
    """
    if mode not in ("auto", "fastpath", "executor"):
        raise ValueError(f"unknown mode {mode!r}")
    if assert_equivalence:
        fast = fastpath_schedule(plan, ctx)
        slow = _executor_timing(plan, ctx)
        _assert_equal(fast, slow)
        return fast
    if mode == "executor":
        return _executor_timing(plan, ctx)
    if mode == "fastpath":
        return fastpath_schedule(plan, ctx)
    try:
        return fastpath_schedule(plan, ctx)
    except FastPathUnsupported:
        return _executor_timing(plan, ctx)
