"""Vectorized grid evaluation: many structurally-identical plans at once.

Sweep grids (Fig. 16 cells, autotune knob sweeps, what-if fans) are
dominated by *structurally identical* plans: the same op DAG, the same
rendezvous shape, the same storage queue — only the numeric costs
(FLOPs, bytes, chunk factors, latencies) differ.  The scalar fast path
(:mod:`repro.plan.fastpath`) still pays per-op Python for every cell.
This module pays it **once per structure**:

1. **Record.**  One *reference lane* of each structure group runs
   through :class:`_TapeEngine` — a clone of the scalar fast-path engine
   that, alongside the reference floats, emits a linear *tape*: one
   register per event time, one instruction per arithmetic step
   (``end = max(ready, stream) + dur``, fluid-epoch byte advances,
   drain horizons), and one *guard* per control decision the schedule
   took (stream FIFO order, rendezvous join order, storage admission
   order, fluid event order, drain membership, watchdog margins).
   Numeric inputs are recorded *symbolically* as column specs
   ("compute duration of op ``uid``", "transport-inflated flow bytes of
   pair *(i, j)*") rather than as the reference's values.

2. **Resolve.**  Every lane resolves the column specs against its own
   plan and context — real ``GPU.kernel_time`` calls, real
   ``Communicator._transport_factor`` inflation, real route latencies —
   producing a ``(n_columns, n_lanes)`` matrix.  Resolution also checks
   the *rate-invariance preconditions*: each lane's routes must be
   segment-isomorphic to the reference's with exactly equal link
   capacities, so the max-min water-fill assigns the same rates to
   every lane.  Lanes that fail any precondition are evaluated scalar.

3. **Replay.**  The tape executes once with numpy ``(n_lanes,)``
   registers — identical float arithmetic in identical order, so lanes
   whose guards all hold get **bit-identical** results to their own
   scalar fast-path run.  Guards evaluate as boolean masks; any lane
   whose control flow would have diverged (an order flip, a tie the
   scalar engine refuses, a watchdog race, a flow draining early) is
   flagged and transparently re-evaluated scalar.

Equivalence is therefore exact-by-construction for batched lanes and
delegated to :func:`~repro.plan.fastpath.evaluate_plan` semantics for
fallback lanes; ``assert_equivalence=True`` cross-checks every batched
lane against its scalar run at 1e-9 (the debug mode the tests run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Optional, Sequence

import numpy as np

from ..fabric.flows import _EPSILON_BYTES as _EPS_BYTES
from ..fabric.flows import _EPSILON_SECONDS as _EPS_SECONDS
from ..fabric.maxmin import MaxMinSolver
from .executor import ExecutionContext
from .fastpath import (
    _COMM_KIND,
    _RING,
    FastPathUnsupported,
    PlanTiming,
    _assert_equal,
    _executor_timing,
    fastpath_schedule,
    fastpath_support,
)
from .ir import (
    Barrier,
    Collective,
    Compute,
    D2HCopy,
    Delay,
    H2DCopy,
    P2PCopy,
    PlanError,
    StepPlan,
    StorageRead,
    StorageWrite,
)

__all__ = [
    "BatchResult",
    "LaneIncompatible",
    "evaluate_batch",
    "plan_structure_key",
]


class LaneIncompatible(Exception):
    """A lane cannot share the group's tape (falls back to scalar)."""


# -- structure keys ----------------------------------------------------------

def _op_structure(op) -> tuple:
    """The control-flow-relevant shape of one op (numeric costs elided).

    Two ops with equal structure take the same branches through the
    scalar engine *statically*; dynamic decisions (orderings, drains)
    are covered by replay guards instead.  ``bytes`` participates only
    through its zero/epsilon classification — zero-byte transfers and
    collectives short-circuit the fluid timeline entirely.
    """
    base = (type(op).__name__, op.uid, op.rank, op.deps,
            op.bytes > 0.0, op.bytes > _EPS_BYTES)
    if isinstance(op, Compute):
        return base + (op.jittered,)
    if isinstance(op, Collective):
        return base + (op.comm, op.root, op.group)
    if isinstance(op, P2PCopy):
        return base + (op.dst_rank,)
    return base


def _ctx_structure(ctx: ExecutionContext) -> tuple:
    """The control-flow-relevant shape of an execution context."""
    comm = ctx.comm
    storage = ctx.storage
    return (
        tuple(g.name for g in ctx.gpus),
        ctx.host_node,
        tuple(comm.ranks) if comm is not None else None,
        getattr(comm, "watchdog", None) if comm is not None else None,
        (storage.spec.queue_depth, storage.media_node)
        if storage is not None else None,
    )


def plan_structure_key(plan: StepPlan, ctx: ExecutionContext) -> tuple:
    """Hashable grouping key: lanes with equal keys may share one tape.

    Captures everything that steers the scalar engine's *static*
    control flow — op kinds, the dependency DAG, rendezvous groups,
    zero-byte short-circuits, communicator membership, the storage
    queue shape — while excluding all purely numeric costs.
    """
    return (plan.world_size,
            tuple(_op_structure(op) for op in plan.ops),
            _ctx_structure(ctx))


# -- tape representation -----------------------------------------------------

# Instruction opcodes.  The tape is a flat list of tuples; replay
# dispatches on the leading int.  Registers hold (n_lanes,) float64
# arrays of event times; REM holds per-flow remaining-bytes arrays.
_CONST = 0    # (out, value)
_MAX = 1      # (out, (regs...))
_COMPUTE = 2  # (out, ready_reg, stream_reg_or_-1, dur_col)
_ADD = 3      # (out, in_reg, col)
_DELAY = 4    # (out, in_reg, seconds_col, fraction_col)
_ORDER = 5    # (a, b, strict)           guard: T[a] < T[b]  (<= if lax)
_FLOW = 6     # (fidx, size_col)         REM[f] = C[size]
_BOUND = 7    # (arr_reg, base_reg, ((fidx, rate), ...))
              # guard: T[arr] <= T[base] + REM[f]/rate for each survivor
_TIMER = 8    # (out, base_reg, fmin, rate_min, ((fidx, rate), ...))
              # T[out] = T[base] + REM[fmin]/rate_min;
              # guard: that horizon is minimal among the active flows
_RECOMP = 9   # (last_reg, now_reg, ((fidx, rate), ...), (drained fidxs),
              #  ((survivor fidx, rate), ...))
              # advance all active flows by dt, then check the drain
              # membership the reference observed
_WATCHDOG = 10  # (end_reg, arr_reg, watchdog_seconds)

# Column spec tags (resolved per lane by _resolve_columns).
_C_COMPUTE = "compute"      # (tag, uid)
_C_DELAY_S = "delay_s"      # (tag, uid)
_C_DELAY_F = "delay_f"      # (tag, uid)
_C_FIXED = "fixed"          # (tag, src_spec, dst_spec)  overhead + latency
_C_OP_BYTES = "op_bytes"    # (tag, uid, streamed)
_C_IO_BYTES = "io_bytes"    # (tag, uid, streamed)
_C_IO_LAT = "io_latency"    # (tag, uid)
_C_COLL = "coll_flow"       # (tag, uid, n_members, src_spec, dst_spec,
                            #  streamed)

# Endpoint specs: ("gpu", rank) / ("host",) / ("media",) / ("comm", i)
# where i indexes Communicator.ranks (a topology node list).


@dataclass
class _Tape:
    """One structure group's recorded schedule, ready to replay."""

    instrs: list = field(default_factory=list)
    columns: list = field(default_factory=list)
    #: uid -> (start_reg, end_reg)
    op_regs: dict = field(default_factory=dict)
    #: (flow_index, route_use_index) pairs for rate-invariance checks.
    flow_routes: list = field(default_factory=list)
    #: route_use_index -> (src_spec, dst_spec, ref_seg_keys, ref_caps)
    route_uses: list = field(default_factory=list)
    #: Rendezvous member uid tuples (per group) whose (bytes, chunk)
    #: must match lane-wise, mirroring the engine's spec check.
    group_members: list = field(default_factory=list)
    n_regs: int = 0
    n_flows: int = 0
    #: Lazily-built index-array form of ``instrs`` (see :func:`_compile`).
    compiled: Optional[list] = None


# -- the recording engine ----------------------------------------------------

class _TapeEngine:
    """The scalar fast-path engine, instrumented to emit a tape.

    This mirrors :class:`repro.plan.fastpath._Engine` method-for-method;
    every scheduled event carries a *register* alongside its reference
    float, and every arithmetic step appends the instruction that
    reproduces it lane-wide.  The reference floats drive the event order
    (identical to the scalar engine's); the instructions and guards let
    the replay decide, per lane, whether that order still holds.

    Consistency with ``_Engine`` is enforced by the equivalence tests
    (and ``assert_equivalence``), which compare replayed lanes against
    their own scalar runs bit-for-bit at 1e-9.
    """

    def __init__(self, plan: StepPlan, ctx: ExecutionContext):
        self.plan = plan
        self.ctx = ctx
        self.tape = _Tape()
        self._heap: list = []
        self._seq = 0
        self.times: dict = {}
        self._start: dict = {}          # uid -> (time, reg)
        self._indegree: dict = {}
        self._dependents: dict = {}
        self._dep_end_regs: dict = {}   # uid -> [end regs of deps]
        self._stream_free: dict = {}    # rank -> (time, reg)
        self._last_compute_ready: dict = {}  # rank -> (time, reg)
        self._op_seq: dict = {}
        self._groups: dict = {}
        self._last_join: dict = {}      # (rank, gkey) -> (time, reg)
        self._io_active = 0
        self._io_queue: list = []
        self._last_io_event: Optional[int] = None
        self._last_io_enqueue: Optional[int] = None
        self._flows: dict = {}
        self._flow_ids = 0
        self._solver = MaxMinSolver()
        self._last_update = 0.0
        self._last_update_reg = 0
        self._generation = 0
        self._columns: dict = {}        # spec -> column index
        self._route_uses: dict = {}     # (src_spec, dst_spec) -> index
        self._zero_reg = 0

    # -- tape emission ----------------------------------------------------
    def _reg(self) -> int:
        r = self.tape.n_regs
        self.tape.n_regs += 1
        return r

    def _emit(self, *instr) -> None:
        self.tape.instrs.append(instr)

    def _col(self, *spec) -> int:
        idx = self._columns.get(spec)
        if idx is None:
            idx = self._columns[spec] = len(self.tape.columns)
            self.tape.columns.append(spec)
        return idx

    def _route_use(self, src_spec, dst_spec, route) -> int:
        key = (src_spec, dst_spec)
        idx = self._route_uses.get(key)
        if idx is None:
            idx = self._route_uses[key] = len(self.tape.route_uses)
            self.tape.route_uses.append(
                (src_spec, dst_spec,
                 tuple(seg.key for seg in route.segments),
                 tuple(seg.capacity for seg in route.segments)))
        return idx

    # -- event plumbing ---------------------------------------------------
    def _schedule(self, time: float, reg: int, fn) -> None:
        self._seq += 1
        heappush(self._heap, (time, self._seq, reg, fn))

    def run(self) -> _Tape:
        plan = self.plan
        zero = self._reg()
        self._zero_reg = zero
        self._last_update_reg = zero
        self._emit(_CONST, zero, 0.0)
        for op in plan:
            self._indegree[op.uid] = 0
            self._dependents.setdefault(op.uid, [])
            self._dep_end_regs[op.uid] = []
        for op in plan:
            for dep in op.deps:
                if dep not in self._indegree:
                    raise FastPathUnsupported(
                        f"op {op.uid!r} depends on {dep!r} outside the plan")
                self._indegree[op.uid] += 1
                self._dependents[dep].append(op)
        for rank in range(plan.world_size):
            for op in plan.by_rank(rank):
                if self._indegree[op.uid] == 0:
                    self._schedule(0.0, zero, self._ready_fn(op))
        while self._heap:
            time, _seq, reg, fn = heappop(self._heap)
            fn(time, reg)
        if len(self.times) != len(plan.ops):
            missing = [op.uid for op in plan if op.uid not in self.times]
            raise FastPathUnsupported(
                f"plan stalled; {len(missing)} op(s) never completed "
                f"(first: {missing[0]!r})")
        return self.tape

    def _ready_fn(self, op):
        return lambda t, reg: self._op_arrival(op, t, reg)

    def _op_arrival(self, op, t: float, event_reg: int) -> None:
        # Readiness is the max over dependency ends — commutative, so
        # no ordering guard is needed; the reference's triggering event
        # time equals that max by construction.
        dep_regs = self._dep_end_regs[op.uid]
        if not dep_regs:
            reg = self._zero_reg
        elif len(set(dep_regs)) == 1:
            reg = dep_regs[0]
        else:
            reg = self._reg()
            self._emit(_MAX, reg, tuple(dict.fromkeys(dep_regs)))
        self._op_ready(op, t, reg)

    def _op_ready(self, op, t: float, reg: int) -> None:
        self._start[op.uid] = (t, reg)
        if isinstance(op, Compute):
            self._run_compute(op, t, reg)
        elif isinstance(op, (Collective, Barrier)):
            self._join_group(op, t, reg)
        elif isinstance(op, Delay):
            elapsed = t - 0.0
            end = t + (op.seconds + op.elapsed_fraction * elapsed)
            out = self._reg()
            self._emit(_DELAY, out, reg,
                       self._col(_C_DELAY_S, op.uid),
                       self._col(_C_DELAY_F, op.uid))
            self._finish_at(op, end, out)
        elif isinstance(op, (H2DCopy, D2HCopy, P2PCopy)):
            self._run_transfer(op, t, reg)
        elif isinstance(op, (StorageRead, StorageWrite)):
            self._enqueue_io(op, t, reg)
        else:  # pragma: no cover - taxonomy is closed
            raise PlanError(f"fast path cannot run op kind {op.kind!r}")

    def _finish_at(self, op, end: float, reg: int) -> None:
        self._schedule(end, reg, lambda t, r: self._op_done(op, t, r))

    def _op_done(self, op, t: float, reg: int) -> None:
        start_t, start_reg = self._start[op.uid]
        self.times[op.uid] = (start_t, t)
        self.tape.op_regs[op.uid] = (start_reg, reg)
        for dependent in self._dependents[op.uid]:
            self._dep_end_regs[dependent.uid].append(reg)
            self._indegree[dependent.uid] -= 1
            if self._indegree[dependent.uid] == 0:
                self._schedule(t, reg, self._ready_fn(dependent))

    # -- compute -----------------------------------------------------------
    def _run_compute(self, op, t: float, reg: int) -> None:
        rank = op.rank
        last = self._last_compute_ready.get(rank)
        if last is not None:
            if last[0] == t:
                raise FastPathUnsupported(
                    f"two computes ready on rank {rank} at t={t}: "
                    "stream FIFO order is ambiguous")
            # Guard: the lane's FIFO admits this rank's computes in the
            # reference order, with no tie (the scalar engine refuses
            # ties, so a tying lane must fall back too — hence strict).
            self._emit(_ORDER, last[1], reg, True)
        self._last_compute_ready[rank] = (t, reg)
        factor = self.ctx.jitter() if op.jittered else 1.0
        duration = self.ctx.gpus[rank].kernel_time(
            op.flops * factor, op.hbm_bytes, op.precision, op.efficiency)
        stream = self._stream_free.get(rank)
        begin = max(t, stream[0]) if stream is not None else max(t, 0.0)
        end = begin + duration
        out = self._reg()
        self._emit(_COMPUTE, out, reg,
                   stream[1] if stream is not None else -1,
                   self._col(_C_COMPUTE, op.uid))
        self._stream_free[rank] = (end, out)
        self._finish_at(op, end, out)

    # -- rendezvous --------------------------------------------------------
    def _join_group(self, op, t: float, reg: int) -> None:
        comm = self.ctx.comm
        rank = op.rank
        gkey = getattr(op, "group", None)
        last = self._last_join.get((rank, gkey))
        if last is not None:
            if last[0] == t:
                raise FastPathUnsupported(
                    f"rank {rank} joins two collectives at t={t}: "
                    "rendezvous order is ambiguous")
            self._emit(_ORDER, last[1], reg, True)
        self._last_join[(rank, gkey)] = (t, reg)
        members = list(range(self.plan.world_size)) if gkey is None \
            else list(gkey)
        nodes = [comm.ranks[i] for i in members]
        if isinstance(op, Barrier):
            spec = ("barrier", 0.0, None, None)
        else:
            kind = _COMM_KIND.get(op.comm)
            if kind is None:
                raise FastPathUnsupported(
                    f"unknown collective kind {op.comm!r}")
            if kind in ("broadcast", "reduce"):
                root = members.index(op.root) if op.root is not None else 0
            else:
                root = None
            spec = (kind, op.bytes, root, op.chunk_bytes)
        opid = self._op_seq.get((gkey, rank), 0)
        self._op_seq[(gkey, rank)] = opid + 1
        group = self._groups.get((gkey, opid))
        if group is None:
            group = self._groups[(gkey, opid)] = _TapeGroup(
                spec[0], spec[1], spec[2], spec[3], nodes, members)
        elif (group.kind, group.nbytes, group.root, group.chunk) != spec:
            raise FastPathUnsupported(
                f"collective mismatch at op {opid}: rank {rank} called "
                f"{spec} but op is "
                f"{(group.kind, group.nbytes, group.root, group.chunk)}")
        group.arrived[rank] = (t, reg)
        group.uids[rank] = op.uid
        if len(group.arrived) == len(members):
            del self._groups[(gkey, opid)]
            # Lane-wise the engine's spec check demands every member op
            # carry the same (bytes, chunk); record the membership so
            # column resolution can verify it per lane.
            self.tape.group_members.append(tuple(group.uids.values()))
            self._execute_group(group, t)

    def _execute_group(self, group: "_TapeGroup", t: float) -> None:
        world = len(group.nodes)
        live = self._reg()
        self._emit(_MAX, live,
                   tuple(dict.fromkeys(r for _t, r in
                                       group.arrived.values())))
        if world == 1 or group.kind == "barrier" or group.nbytes == 0:
            self._schedule(
                t, live, lambda now, r: self._group_done(group, now, r))
            return
        phases = _RING.get(group.kind)
        group.total_phases = phases(world) if phases else 1
        group.phase = 0
        self._spawn_phase(group, t, live)

    def _spawn_phase(self, group: "_TapeGroup", t: float,
                     reg: int) -> None:
        comm = self.ctx.comm
        ranks = group.nodes
        n = len(ranks)
        if group.kind in _RING:
            pairs = [(i, (i + 1) % n) for i in range(n)]
            per_transfer = group.nbytes / n
        else:
            root = group.root
            others = [i for i in range(n) if i != root]
            if group.kind == "broadcast":
                pairs = [(root, i) for i in others]
            else:  # reduce
                pairs = [(i, root) for i in others]
            per_transfer = group.nbytes
        group.inflight = len(pairs)
        group.done_regs = []
        uid = next(iter(group.uids.values()))

        def flow_done(now, done_reg, group=group):
            group.done_regs.append(done_reg)
            group.inflight -= 1
            if group.inflight:
                return
            # Lane-wise the slowest pair may differ; the phase ends at
            # the max over every pair's completion (commutative).
            end = self._reg()
            self._emit(_MAX, end, tuple(dict.fromkeys(group.done_regs)))
            group.phase += 1
            if group.phase >= group.total_phases:
                self._group_done(group, now, end)
            else:
                self._spawn_phase(group, now, end)

        topo = comm.topology
        for i, j in pairs:
            src, dst = ranks[i], ranks[j]
            src_spec = ("comm", group.members[i])
            dst_spec = ("comm", group.members[j])
            route = topo.route(src, dst)
            factor = comm._transport_factor(route, group.chunk)
            nbytes = per_transfer * factor
            streamed = nbytes > _EPS_BYTES and bool(route.segments)
            col = self._col(_C_COLL, uid, n, src_spec, dst_spec, streamed)
            self._launch_transfer(t, reg, route, nbytes, col,
                                  (src_spec, dst_spec), flow_done)

    def _group_done(self, group: "_TapeGroup", t: float,
                    reg: int) -> None:
        watchdog = getattr(self.ctx.comm, "watchdog", None)
        for rank, uid in group.uids.items():
            arrival_t, arrival_reg = group.arrived[rank]
            if watchdog is not None:
                if t - arrival_t >= watchdog:
                    raise FastPathUnsupported(
                        "collective completion races the watchdog timeout")
                self._emit(_WATCHDOG, reg, arrival_reg, watchdog)
            op = self.plan.op(uid)
            self._start[uid] = (arrival_t, arrival_reg)
            self._op_done(op, t, reg)

    # -- transfers ---------------------------------------------------------
    def _launch_transfer(self, t: float, reg: int, route, nbytes: float,
                         size_col: Optional[int], endpoints,
                         on_done) -> None:
        topo = self.ctx.topology
        fixed = topo.transfer_overhead + route.latency
        arrival = t + fixed
        arr = self._reg()
        self._emit(_ADD, arr, reg, self._col(_C_FIXED, *endpoints))
        segments = route.segments
        if nbytes > 0 and segments:
            use = self._route_use(endpoints[0], endpoints[1], route)
            self._schedule(
                arrival, arr,
                lambda now, r: self._flow_arrives(
                    segments, nbytes, size_col, use, on_done, now, r))
        else:
            self._schedule(arrival, arr, on_done)

    def _run_transfer(self, op, t: float, reg: int) -> None:
        ctx = self.ctx
        gpus = ctx.gpus
        if isinstance(op, H2DCopy):
            src, dst = ctx.host_node, gpus[op.rank].name
            spec = (("host",), ("gpu", op.rank))
        elif isinstance(op, D2HCopy):
            src, dst = gpus[op.rank].name, ctx.host_node
            spec = (("gpu", op.rank), ("host",))
        else:
            src, dst = gpus[op.rank].name, gpus[op.dst_rank].name
            spec = (("gpu", op.rank), ("gpu", op.dst_rank))
        route = ctx.topology.route(src, dst)
        streamed = op.bytes > _EPS_BYTES and bool(route.segments)
        col = self._col(_C_OP_BYTES, op.uid, streamed)
        self._launch_transfer(
            t, reg, route, op.bytes, col, spec,
            lambda now, r: self._op_done(op, now, r))

    # -- storage I/O -------------------------------------------------------
    def _io_event(self, reg: int, enqueue: bool) -> None:
        # Admission control is order-driven: guard the whole interleaved
        # sequence of storage events non-strictly (a completion landing
        # on an enqueue's instant commutes — the op is admitted at that
        # instant either way), and additionally keep consecutive
        # *enqueues* strictly ordered: two commands racing for the same
        # queue slot is exactly the ambiguity the scalar engine refuses.
        last = self._last_io_event
        if last is not None and last != reg:
            self._emit(_ORDER, last, reg, False)
        self._last_io_event = reg
        if enqueue:
            prev = self._last_io_enqueue
            if prev is not None:
                self._emit(_ORDER, prev, reg, True)
            self._last_io_enqueue = reg

    def _enqueue_io(self, op, t: float, reg: int) -> None:
        self._io_event(reg, True)
        if self._io_active < self.ctx.storage.spec.queue_depth:
            self._io_active += 1
            self._admit_io(op, t, reg)
        else:
            self._io_queue.append(op)

    def _admit_io(self, op, t: float, reg: int) -> None:
        storage = self.ctx.storage
        spec = storage.spec
        if isinstance(op, StorageRead):
            src, dst = storage.media_node, self.ctx.host_node
            endpoints = (("media",), ("host",))
            nbytes, latency = op.bytes, spec.read_latency
        else:
            inflation = spec.read_bandwidth / spec.write_bandwidth
            src, dst = self.ctx.host_node, storage.media_node
            endpoints = (("host",), ("media",))
            nbytes, latency = op.bytes * inflation, spec.write_latency
        route = self.ctx.topology.route(src, dst)
        streamed = nbytes > _EPS_BYTES and bool(route.segments)
        size_col = self._col(_C_IO_BYTES, op.uid, streamed)
        launched = self._reg()
        self._emit(_ADD, launched, reg, self._col(_C_IO_LAT, op.uid))

        def done(now, done_reg):
            self._io_event(done_reg, False)
            self._io_active -= 1
            if self._io_queue:
                self._io_active += 1
                self._admit_io(self._io_queue.pop(0), now, done_reg)
            self._op_done(op, now, done_reg)

        self._launch_transfer(t + latency, launched, route, nbytes,
                              size_col, endpoints, done)

    # -- the global fluid timeline ----------------------------------------
    def _flow_arrives(self, segments, nbytes: float, size_col: int,
                      route_use: int, on_done, now: float,
                      reg: int) -> None:
        if nbytes <= _EPS_BYTES or not segments:
            self._schedule(now, reg, on_done)
            return
        # The arrival must land inside the current fluid epoch: after
        # the previous fluid event, and before any active flow would
        # have drained (otherwise the lane's rate history differs).
        self._emit(_ORDER, self._last_update_reg, reg, False)
        if self._flows:
            self._emit(_BOUND, reg, self._last_update_reg,
                       tuple((fid, f.rate)
                             for fid, f in self._flows.items()))
        flow = _TapeFlow(segments, nbytes, on_done)
        self._advance_and_recompute(now, reg, add=flow,
                                    size_col=size_col,
                                    route_use=route_use)

    def _advance_and_recompute(self, now: float, reg: int, add=None,
                               size_col: Optional[int] = None,
                               route_use: Optional[int] = None) -> None:
        """Mirror ``_advance`` + ``_recompute`` and emit one _RECOMP."""
        active = tuple((fid, f.rate) for fid, f in self._flows.items())
        # advance (the scalar engine skips dt <= 0; the instruction
        # handles per-lane dt uniformly, including dt == 0)
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows.values():
                delivered = min(f.remaining, f.rate * dt)
                if delivered > 0:
                    f.remaining -= delivered
        if add is not None:
            self._flow_ids += 1
            fid = self._flow_ids
            self.tape.n_flows = self._flow_ids
            add.fid = fid
            self._flows[fid] = add
            self._solver.add(add)
            self.tape.flow_routes.append((fid, route_use))
            self._emit(_FLOW, fid, size_col)
        drained = [fid for fid, f in self._flows.items()
                   if _is_drained(f)]
        survivors = tuple((fid, f.rate) for fid, f in self._flows.items()
                          if fid not in drained)
        self._emit(_RECOMP, self._last_update_reg, reg, active,
                   tuple(drained), survivors)
        self._last_update = now
        self._last_update_reg = reg
        for fid in drained:
            flow = self._flows.pop(fid)
            self._solver.remove(flow)
            self._schedule(now, reg, flow.on_done)
        self._solver.solve()
        self._arm_timer(now, reg)

    def _arm_timer(self, now: float, reg: int) -> None:
        self._generation += 1
        if not self._flows:
            return
        gen = self._generation
        horizon = min(f.remaining / f.rate for f in self._flows.values()
                      if f.rate > 0)
        self._schedule(now + horizon, reg,
                       lambda t, r, gen=gen: self._on_timer(t, gen))

    def _on_timer(self, now: float, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later recompute; never on the tape
        # A fired timer directly follows the fluid event that armed it
        # (anything in between would have bumped the generation), so
        # the flow state here *is* the arming state: the horizon to
        # replay is the argmin flow's remaining/rate, guarded minimal
        # against every other active flow's horizon lane-wise.
        out = self._reg()
        fmin, rmin, best = None, 0.0, None
        others = []
        for fid, f in self._flows.items():
            if f.rate <= 0:
                continue
            h = f.remaining / f.rate
            if best is None or h < best:
                if fmin is not None:
                    others.append((fmin, rmin))
                fmin, rmin, best = fid, f.rate, h
            else:
                others.append((fid, f.rate))
        self._emit(_TIMER, out, self._last_update_reg, fmin, rmin,
                   tuple(others))
        self._advance_and_recompute(now, out)


class _TapeFlow:
    """Duck-typed flow for the solver, plus its tape identity."""

    __slots__ = ("segments", "remaining", "rate", "on_done", "fid")

    def __init__(self, segments, nbytes: float, on_done):
        self.segments = segments
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.on_done = on_done
        self.fid = -1


def _is_drained(flow) -> bool:
    if flow.remaining <= _EPS_BYTES:
        return True
    return flow.rate > 0 and flow.remaining / flow.rate <= _EPS_SECONDS


class _TapeGroup:
    """Rendezvous state for the recorder (mirror of fastpath._Group)."""

    __slots__ = ("kind", "nbytes", "root", "chunk", "nodes", "members",
                 "arrived", "uids", "phase", "total_phases", "inflight",
                 "done_regs")

    def __init__(self, kind, nbytes, root, chunk, nodes, members):
        self.kind = kind
        self.nbytes = nbytes
        self.root = root
        self.chunk = chunk
        self.nodes = nodes
        #: World-rank indices, in communicator order (endpoint specs).
        self.members = members
        self.arrived = {}
        self.uids = {}
        self.phase = 0
        self.total_phases = 0
        self.inflight = 0
        self.done_regs = []


# -- column resolution -------------------------------------------------------

def _resolve_node(spec, plan: StepPlan, ctx: ExecutionContext) -> str:
    if spec[0] == "gpu":
        return ctx.gpus[spec[1]].name
    if spec[0] == "host":
        return ctx.host_node
    if spec[0] == "media":
        return ctx.storage.media_node
    if spec[0] == "comm":
        return ctx.comm.ranks[spec[1]]
    raise LaneIncompatible(f"unknown endpoint spec {spec!r}")


class _LaneResolver:
    """Resolves one lane's column values and rate preconditions."""

    def __init__(self, tape: _Tape, plan: StepPlan,
                 ctx: ExecutionContext):
        self.tape = tape
        self.plan = plan
        self.ctx = ctx
        self._routes: dict = {}
        self._factors: dict = {}

    def _route(self, src_spec, dst_spec):
        key = (src_spec, dst_spec)
        route = self._routes.get(key)
        if route is None:
            src = _resolve_node(src_spec, self.plan, self.ctx)
            dst = _resolve_node(dst_spec, self.plan, self.ctx)
            route = self._routes[key] = self.ctx.topology.route(src, dst)
        return route

    def _factor(self, src_spec, dst_spec, chunk) -> float:
        key = (src_spec, dst_spec, chunk)
        factor = self._factors.get(key)
        if factor is None:
            route = self._route(src_spec, dst_spec)
            factor = self._factors[key] = \
                self.ctx.comm._transport_factor(route, chunk)
        return factor

    def _streamed(self, nbytes: float, route, recorded: bool,
                  what: str) -> None:
        lane = nbytes > _EPS_BYTES and bool(route.segments)
        if lane != recorded:
            raise LaneIncompatible(
                f"{what}: lane {'streams' if lane else 'short-circuits'} "
                "where the reference does the opposite")

    def column(self, spec) -> float:
        tag = spec[0]
        plan, ctx = self.plan, self.ctx
        if tag == _C_COMPUTE:
            op = plan.op(spec[1])
            return ctx.gpus[op.rank].kernel_time(
                op.flops, op.hbm_bytes, op.precision, op.efficiency)
        if tag == _C_DELAY_S:
            return plan.op(spec[1]).seconds
        if tag == _C_DELAY_F:
            return plan.op(spec[1]).elapsed_fraction
        if tag == _C_FIXED:
            route = self._route(spec[1], spec[2])
            return ctx.topology.transfer_overhead + route.latency
        if tag == _C_OP_BYTES:
            op = plan.op(spec[1])
            route = self._lane_route_for_op(op)
            self._streamed(op.bytes, route, spec[2], op.uid)
            return op.bytes
        if tag == _C_IO_BYTES:
            op = plan.op(spec[1])
            storage_spec = ctx.storage.spec
            if isinstance(op, StorageWrite):
                nbytes = op.bytes * (storage_spec.read_bandwidth
                                     / storage_spec.write_bandwidth)
                route = self._route(("host",), ("media",))
            else:
                nbytes = op.bytes
                route = self._route(("media",), ("host",))
            self._streamed(nbytes, route, spec[2], op.uid)
            return nbytes
        if tag == _C_IO_LAT:
            op = plan.op(spec[1])
            storage_spec = ctx.storage.spec
            return (storage_spec.write_latency
                    if isinstance(op, StorageWrite)
                    else storage_spec.read_latency)
        if tag == _C_COLL:
            _tag, uid, n, src_spec, dst_spec, streamed = spec
            op = plan.op(uid)
            if op.comm in ("allreduce", "reduce_scatter", "all_gather"):
                per_transfer = op.bytes / n
            else:
                per_transfer = op.bytes
            factor = self._factor(src_spec, dst_spec, op.chunk_bytes)
            nbytes = per_transfer * factor
            route = self._route(src_spec, dst_spec)
            self._streamed(nbytes, route, streamed, uid)
            return nbytes
        raise LaneIncompatible(f"unknown column spec {spec!r}")

    def _lane_route_for_op(self, op):
        if isinstance(op, H2DCopy):
            return self._route(("host",), ("gpu", op.rank))
        if isinstance(op, D2HCopy):
            return self._route(("gpu", op.rank), ("host",))
        return self._route(("gpu", op.rank), ("gpu", op.dst_rank))

    def check_rates(self) -> None:
        """Verify the max-min rate history is lane-invariant.

        The replay reuses the reference's solved rates verbatim, which
        is valid iff the lane's contention problem is isomorphic: each
        flow crosses the same-shaped segment sequence, the segment-key
        correspondence is one consistent bijection, and every mapped
        capacity is exactly equal.  Anything else (a different backend
        topology, a degraded link) changes the water-fill and the lane
        must run scalar.
        """
        ref_to_lane: dict = {}
        lane_to_ref: dict = {}
        for _fid, use in self.tape.flow_routes:
            src_spec, dst_spec, ref_keys, ref_caps = \
                self.tape.route_uses[use]
            route = self._route(src_spec, dst_spec)
            segs = route.segments
            if len(segs) != len(ref_keys):
                raise LaneIncompatible(
                    f"route {src_spec}->{dst_spec}: hop count differs "
                    "from the reference lane")
            for seg, ref_key, ref_cap in zip(segs, ref_keys, ref_caps):
                mapped = ref_to_lane.setdefault(ref_key, seg.key)
                if mapped != seg.key:
                    raise LaneIncompatible(
                        "segment correspondence is inconsistent "
                        f"({ref_key} -> {mapped} vs {seg.key})")
                back = lane_to_ref.setdefault(seg.key, ref_key)
                if back != ref_key:
                    raise LaneIncompatible(
                        "two reference segments map onto one lane "
                        f"segment ({seg.key})")
                if seg.capacity != ref_cap:
                    raise LaneIncompatible(
                        f"capacity of {seg.key} is {seg.capacity!r}, "
                        f"reference has {ref_cap!r}")

    def check_groups(self) -> None:
        """Lane-wise mirror of the engine's rendezvous spec check."""
        for members in self.tape.group_members:
            first = self.plan.op(members[0])
            for uid in members[1:]:
                op = self.plan.op(uid)
                if (op.bytes != first.bytes
                        or getattr(op, "chunk_bytes", None)
                        != getattr(first, "chunk_bytes", None)):
                    raise LaneIncompatible(
                        f"collective members {members[0]}/{uid} disagree "
                        "on payload (the engine would refuse)")

    def resolve(self) -> np.ndarray:
        self.check_rates()
        self.check_groups()
        return np.array([self.column(spec)
                         for spec in self.tape.columns])


# -- replay ------------------------------------------------------------------

def _flow_index(flows) -> Optional[tuple]:
    """Split ``((fid, rate), ...)`` into rate-class index/rate arrays.

    Returns ``(pos_idx, pos_rates, zero_idx)`` where ``pos_idx`` gathers
    the flows the scalar code would divide by (rate > 0, including
    ``inf`` — ``rem / inf == 0`` reproduces the scalar branch) and
    ``zero_idx`` the rate-0 flows it would test by bytes alone.  Rate
    arrays are ``(k, 1)`` so they broadcast against ``(k, n)`` REM rows.
    """
    pos = [(fid, rate) for fid, rate in flows if rate > 0]
    zero = [fid for fid, rate in flows if rate <= 0]
    pos_idx = np.array([f for f, _ in pos], dtype=np.intp) if pos else None
    pos_rates = (np.array([r for _, r in pos])[:, None] if pos else None)
    zero_idx = np.array(zero, dtype=np.intp) if zero else None
    if pos_idx is None and zero_idx is None:
        return None
    return pos_idx, pos_rates, zero_idx


def _compile(tape: _Tape) -> list:
    """Pre-resolve per-instruction flow lists into numpy index arrays.

    The recorded tape stores fluid state as ``(fid, rate)`` tuples; a
    naive replay loops over them with one tiny numpy op per flow, which
    dominates runtime on communication-heavy plans (thousands of flows
    per recompute epoch).  Compilation turns each _RECOMP/_BOUND/_TIMER
    into gather/scatter index arrays so replay touches the whole epoch
    with a handful of matrix ops.  Rates are reference scalars — the
    rate-invariance precondition (see :class:`_LaneResolver`) is what
    lets them be baked in per instruction rather than kept per lane.
    """
    out = []
    for instr in tape.instrs:
        opcode = instr[0]
        if opcode == _RECOMP:
            _o, last, now, active, drained, survivors = instr
            fin = [(fid, rate) for fid, rate in active
                   if 0.0 < rate < np.inf]
            inf = [fid for fid, rate in active if rate == np.inf]
            fin_idx = (np.array([f for f, _ in fin], dtype=np.intp)
                       if fin else None)
            fin_rates = (np.array([r for _, r in fin])[:, None]
                         if fin else None)
            inf_idx = np.array(inf, dtype=np.intp) if inf else None
            rate_of = dict(active)
            dr = _flow_index(tuple((fid, rate_of.get(fid, 0.0))
                                   for fid in drained))
            sv = _flow_index(survivors)
            out.append((_RECOMP, last, now, fin_idx, fin_rates, inf_idx,
                        dr, sv))
        elif opcode == _BOUND:
            _o, arr, base, flows = instr
            pos = [(fid, rate) for fid, rate in flows if rate > 0]
            if not pos:
                continue
            out.append((_BOUND, arr, base,
                        np.array([f for f, _ in pos], dtype=np.intp),
                        np.array([r for _, r in pos])[:, None]))
        elif opcode == _TIMER:
            _o, out_reg, base, fmin, rmin, others = instr
            pos = [(fid, rate) for fid, rate in others if rate > 0]
            o_idx = (np.array([f for f, _ in pos], dtype=np.intp)
                     if pos else None)
            o_rates = (np.array([r for _, r in pos])[:, None]
                       if pos else None)
            out.append((_TIMER, out_reg, base, fmin, rmin, o_idx,
                        o_rates))
        else:
            out.append(instr)
    return out


def _membership(REM: np.ndarray, spec: Optional[tuple],
                want_gone: bool) -> Optional[np.ndarray]:
    """Per-lane drain-membership check for one flow set.

    Mirrors the scalar ``_is_drained``: a flow is gone when its bytes
    are within epsilon, or its horizon ``rem / rate`` is (rate > 0).
    Returns the per-lane mask where the set matches the reference
    (all gone for drained sets, none gone for survivor sets).
    """
    if spec is None:
        return None
    pos_idx, pos_rates, zero_idx = spec
    good = None
    if pos_idx is not None:
        rem = REM[pos_idx]
        gone = (rem <= _EPS_BYTES) | (rem / pos_rates <= _EPS_SECONDS)
        good = gone.all(axis=0) if want_gone else ~gone.any(axis=0)
    if zero_idx is not None:
        gone = REM[zero_idx] <= _EPS_BYTES
        g = gone.all(axis=0) if want_gone else ~gone.any(axis=0)
        good = g if good is None else good & g
    return good


def _replay(tape: _Tape, cols: np.ndarray, n: int):
    """Execute the tape over ``(n_cols, n_lanes)`` columns.

    Returns ``(T, ok)``: the register file (event-time arrays) and the
    per-lane guard mask.  Lanes where ``ok`` is False took a control
    path the reference did not record; their register values are
    unspecified and they must be re-evaluated scalar.
    """
    if tape.compiled is None:
        tape.compiled = _compile(tape)
    T: list = [None] * tape.n_regs
    # Remaining bytes per flow (fids are 1-based), dense so _RECOMP can
    # gather/scatter whole epochs; rows are written by _FLOW before any
    # instruction reads them.
    REM = np.zeros((tape.n_flows + 1, n))
    ok = np.ones(n, dtype=bool)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        for instr in tape.compiled:
            opcode = instr[0]
            if opcode == _COMPUTE:
                _o, out, ready, stream, col = instr
                t = T[ready]
                if stream >= 0:
                    t = np.maximum(t, T[stream])
                else:
                    t = np.maximum(t, 0.0)
                T[out] = t + cols[col]
            elif opcode == _ADD:
                _o, out, a, col = instr
                T[out] = T[a] + cols[col]
            elif opcode == _MAX:
                _o, out, regs = instr
                T[out] = np.maximum.reduce([T[r] for r in regs])
            elif opcode == _ORDER:
                _o, a, b, strict = instr
                if strict:
                    ok &= T[a] < T[b]
                else:
                    ok &= T[a] <= T[b]
            elif opcode == _RECOMP:
                (_o, last, now, fin_idx, fin_rates, inf_idx, drained,
                 survivors) = instr
                dt = T[now] - T[last]
                if fin_idx is not None:
                    rem = REM[fin_idx]
                    x = fin_rates * dt[None, :]
                    REM[fin_idx] = np.where(x < rem, rem - x, 0.0)
                if inf_idx is not None:
                    REM[inf_idx] = np.where(dt[None, :] > 0, 0.0,
                                            REM[inf_idx])
                good = _membership(REM, survivors, want_gone=False)
                if good is not None:
                    ok &= good
                good = _membership(REM, drained, want_gone=True)
                if good is not None:
                    ok &= good
            elif opcode == _FLOW:
                _o, fid, col = instr
                REM[fid] = cols[col]
            elif opcode == _TIMER:
                _o, out, base, fmin, rmin, o_idx, o_rates = instr
                h = REM[fmin] / rmin
                T[out] = T[base] + h
                if o_idx is not None:
                    ok &= (h[None, :] <= REM[o_idx] / o_rates).all(axis=0)
            elif opcode == _BOUND:
                _o, arr, base, idx, rates = instr
                bound = T[base][None, :] + REM[idx] / rates
                ok &= (T[arr][None, :] <= bound).all(axis=0)
            elif opcode == _DELAY:
                _o, out, a, scol, fcol = instr
                t = T[a]
                T[out] = t + (cols[scol] + cols[fcol] * t)
            elif opcode == _WATCHDOG:
                _o, end, arr, watchdog = instr
                ok &= (T[end] - T[arr]) < watchdog
            elif opcode == _CONST:
                _o, out, value = instr
                T[out] = np.full(n, value)
            else:  # pragma: no cover - opcode set is closed
                raise AssertionError(f"unknown opcode {opcode}")
    return T, ok


# -- public API --------------------------------------------------------------

@dataclass
class BatchResult:
    """Outcome of one :func:`evaluate_batch` call."""

    #: Per-lane timings, in input order.
    timings: list
    #: Number of structure groups the lanes partitioned into.
    groups: int
    #: Lanes whose results came from a vectorized tape replay.
    batched_lanes: int
    #: Lanes evaluated scalar (singleton group, precondition failure,
    #: recording refusal, or guard divergence).
    fallback_lanes: int
    #: Input indices whose guards fired during replay.
    diverged: list = field(default_factory=list)


def _fallback(plan: StepPlan, ctx: ExecutionContext,
              mode: str) -> PlanTiming:
    if mode == "fastpath":
        return fastpath_schedule(plan, ctx)
    if mode == "executor":
        return _executor_timing(plan, ctx)
    if mode == "auto":
        try:
            return fastpath_schedule(plan, ctx)
        except FastPathUnsupported:
            return _executor_timing(plan, ctx)
    raise ValueError(f"unknown fallback mode {mode!r}")


def _lane_timing(tape: _Tape, T, lane: int) -> PlanTiming:
    op_times = {}
    makespan = 0.0
    for uid, (sreg, ereg) in tape.op_regs.items():
        start = float(T[sreg][lane])
        end = float(T[ereg][lane])
        op_times[uid] = (start, end)
        if end > makespan:
            makespan = end
    return PlanTiming(mode="batched", op_times=op_times,
                      makespan=makespan)


def evaluate_batch(lanes: Sequence[tuple],
                   fallback: str = "fastpath",
                   assert_equivalence: bool = False) -> BatchResult:
    """Evaluate many ``(plan, ctx)`` lanes, vectorizing within groups.

    Lanes are grouped by :func:`plan_structure_key`; each multi-lane
    group records one reference tape (one scalar-engine run) and
    replays it as a numpy array program over every lane's resolved
    cost columns.  Lanes a group cannot carry — rate preconditions
    violated, control-flow guards fired, recording refused — are
    evaluated with the scalar engine instead, so the result for every
    lane equals what that lane's own scalar evaluation produces.

    Parameters
    ----------
    fallback:
        Engine for scalar re-evaluation: ``"fastpath"`` (default; pure,
        raises :class:`FastPathUnsupported` for ineligible lanes),
        ``"auto"`` or ``"executor"`` (the executor leg advances the
        lane's ``ctx.env`` and device state — throwaway systems only).
    assert_equivalence:
        Debug mode: additionally run every *batched* lane through the
        scalar fast path and compare all op times and the makespan at
        1e-9 relative tolerance, raising ``AssertionError`` on drift.

    Returns a :class:`BatchResult` with per-lane
    :class:`~repro.plan.fastpath.PlanTiming` values in input order
    (batched lanes report ``mode="batched"``).
    """
    lanes = list(lanes)
    timings: list = [None] * len(lanes)
    groups: dict = {}
    fallback_idx: list = []
    diverged: list = []
    for idx, (plan, ctx) in enumerate(lanes):
        if fastpath_support(plan, ctx) is not None:
            fallback_idx.append(idx)
            continue
        key = plan_structure_key(plan, ctx)
        groups.setdefault(key, []).append(idx)

    batched = 0
    for members in groups.values():
        if len(members) == 1:
            fallback_idx.extend(members)
            continue
        ref_idx = members[0]
        ref_plan, ref_ctx = lanes[ref_idx]
        try:
            tape = _TapeEngine(ref_plan, ref_ctx).run()
        except FastPathUnsupported:
            # The reference schedule itself is ambiguous; every lane
            # takes the scalar path (which applies its own refusals).
            fallback_idx.extend(members)
            continue
        cols = []
        replayable = []
        for idx in members:
            plan, ctx = lanes[idx]
            try:
                cols.append(_LaneResolver(tape, plan, ctx).resolve())
            except LaneIncompatible:
                fallback_idx.append(idx)
            else:
                replayable.append(idx)
        if not replayable:
            continue
        matrix = np.stack(cols, axis=1) if tape.columns \
            else np.zeros((0, len(replayable)))
        T, ok = _replay(tape, matrix, len(replayable))
        for lane, idx in enumerate(replayable):
            if not ok[lane]:
                diverged.append(idx)
                fallback_idx.append(idx)
                continue
            timing = _lane_timing(tape, T, lane)
            if assert_equivalence:
                plan, ctx = lanes[idx]
                _assert_equal(timing, fastpath_schedule(plan, ctx))
            timings[idx] = timing
            batched += 1

    for idx in fallback_idx:
        plan, ctx = lanes[idx]
        timings[idx] = _fallback(plan, ctx, fallback)
    return BatchResult(timings=timings, groups=len(groups),
                       batched_lanes=batched,
                       fallback_lanes=len(fallback_idx),
                       diverged=sorted(diverged))
