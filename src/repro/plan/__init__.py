"""Backend-agnostic step-program IR (the compiler/executor split).

A training step is expressed as a :class:`StepPlan` — a typed DAG of ops
(compute kernels, host/device copies, collectives, storage I/O, barriers,
delays) with per-op cost/byte annotations and declared dependencies.
Parallel strategies *compile* plans; one generic executor replays them on
the DES :class:`~repro.sim.Environment`, driving the same GPU, fabric,
collective, and storage models the hand-written schedules used to call
directly.  Telemetry spans are derived mechanically from op identities.

The package is deliberately backend-agnostic: it imports only the sim
kernel, the devices/fabric/storage models it drives, and the tracer — it
never imports ``repro.training`` (strategies import *us*).
"""

from .ir import (
    Barrier,
    Collective,
    Compute,
    D2HCopy,
    Delay,
    H2DCopy,
    Op,
    P2PCopy,
    PlanBuilder,
    PlanError,
    StepPlan,
    StorageRead,
    StorageWrite,
    format_plan,
)
from .validate import PlanValidationError, assert_valid, validate_plan
from .diff import PlanDiff, diff_plans, format_diff
from .executor import ExecutionContext, PlanExecution
from .fastpath import (
    FastPathUnsupported,
    PlanTiming,
    evaluate_plan,
    fastpath_schedule,
    fastpath_support,
)
from .batched import (
    BatchResult,
    LaneIncompatible,
    evaluate_batch,
    plan_structure_key,
)
from .passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    PassContext,
    PassError,
    PassManager,
    PassReport,
    PlanPass,
    resolve_passes,
)
from .reshard import compile_reshard, splice_plans

__all__ = [
    "Op",
    "Compute",
    "H2DCopy",
    "D2HCopy",
    "P2PCopy",
    "Collective",
    "StorageRead",
    "StorageWrite",
    "Barrier",
    "Delay",
    "StepPlan",
    "PlanBuilder",
    "PlanError",
    "format_plan",
    "PlanValidationError",
    "validate_plan",
    "assert_valid",
    "PlanDiff",
    "diff_plans",
    "format_diff",
    "ExecutionContext",
    "PlanExecution",
    "FastPathUnsupported",
    "PlanTiming",
    "fastpath_support",
    "fastpath_schedule",
    "evaluate_plan",
    "BatchResult",
    "LaneIncompatible",
    "evaluate_batch",
    "plan_structure_key",
    "PlanPass",
    "PassContext",
    "PassError",
    "PassManager",
    "PassReport",
    "PASS_REGISTRY",
    "DEFAULT_PIPELINE",
    "resolve_passes",
    "compile_reshard",
    "splice_plans",
]
