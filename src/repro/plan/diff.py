"""Structural diff between two step plans.

Ops are matched by uid (the builder's deterministic ``r{rank}:{name}``
scheme makes uids stable across compilations), then compared field by
field.  The differ answers "what did this strategy/knob change about the
program?" — e.g. DDP vs sharded swaps every ``grad-bucket`` collective
from ``allreduce`` to ``reduce_scatter`` and appends an all-gather.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .ir import StepPlan

__all__ = ["FieldChange", "PlanDiff", "diff_plans", "format_diff"]


@dataclass(frozen=True)
class FieldChange:
    """One differing field on an op present in both plans."""

    uid: str
    field: str
    a: object
    b: object


@dataclass
class PlanDiff:
    """Outcome of :func:`diff_plans` (``a`` = old, ``b`` = new)."""

    added: list = field(default_factory=list)      # uids only in b
    removed: list = field(default_factory=list)    # uids only in a
    changed: list = field(default_factory=list)    # FieldChange entries
    meta_changed: dict = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not (self.added or self.removed or self.changed
                    or self.meta_changed)


def _op_fields(op) -> dict:
    out = {f.name: getattr(op, f.name) for f in fields(op)}
    out["kind"] = op.kind
    return out


def diff_plans(a: StepPlan, b: StepPlan) -> PlanDiff:
    """Compare two plans op by op (matched on uid)."""
    diff = PlanDiff()
    uids_a = {op.uid for op in a}
    uids_b = {op.uid for op in b}
    diff.removed = sorted(uids_a - uids_b)
    diff.added = sorted(uids_b - uids_a)
    for uid in sorted(uids_a & uids_b):
        fa, fb = _op_fields(a.op(uid)), _op_fields(b.op(uid))
        for name in sorted(set(fa) | set(fb)):
            va, vb = fa.get(name), fb.get(name)
            if va != vb:
                diff.changed.append(FieldChange(uid, name, va, vb))
    for key in sorted(set(a.meta) | set(b.meta)):
        va, vb = a.meta.get(key), b.meta.get(key)
        if va != vb:
            diff.meta_changed[key] = (va, vb)
    return diff


def format_diff(diff: PlanDiff, a: StepPlan, b: StepPlan,
                limit: int = 40) -> str:
    """Readable summary of a diff (truncated to ``limit`` lines/section)."""
    if diff.identical:
        return f"plans {a.name!r} and {b.name!r} are identical"
    lines = [f"diff {a.name!r} ({len(a)} ops) -> {b.name!r} "
             f"({len(b)} ops): +{len(diff.added)} -{len(diff.removed)} "
             f"~{len({c.uid for c in diff.changed})}"]

    def clipped(items, render):
        for item in items[:limit]:
            lines.append(render(item))
        if len(items) > limit:
            lines.append(f"  ... {len(items) - limit} more")

    clipped(diff.removed, lambda uid: f"  - {a.op(uid).describe()}")
    clipped(diff.added, lambda uid: f"  + {b.op(uid).describe()}")
    clipped(diff.changed,
            lambda c: f"  ~ {c.uid}: {c.field} {c.a!r} -> {c.b!r}")
    for key, (va, vb) in diff.meta_changed.items():
        lines.append(f"  ~ meta[{key!r}]: {va!r} -> {vb!r}")
    return "\n".join(lines)
