"""State-redistribution plans for elastic resize (grow/shrink/swap).

When a training ring changes membership mid-run, the new ring cannot
simply start computing: every member needs a full parameter replica, and
sharded optimizers need their partitions re-cut for the new world size.
:func:`compile_reshard` expresses that redistribution as a regular
:class:`~repro.plan.ir.StepPlan` — P2P replica restores from surviving
ranks to joining ranks, plus (for sharded state) an all-gather that
re-partitions optimizer shards — so the traffic runs over the *real*
modelled fabric through the same executor (or fast path) as any training
step, and the same validation passes lint it.

The two recovery moves PR 1 hard-coded are degenerate cases of this one
plan: a hot-spare swap is a reshard with exactly one joining rank, and
an N-1 ring shrink is a reshard with no joining ranks (pure rendezvous —
survivors already hold full replicas; only the exit barrier remains).

:func:`splice_plans` concatenates a reshard plan in front of a freshly
compiled step plan so the resumed job's first optimizer step *is* the
recomposition: state redistribution and the new ring's first step are one
op DAG on the executor's timeline, with cross-rank barrier semantics
guaranteeing no step op starts before every rank's state landed.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from .ir import Barrier, Collective, PlanBuilder, PlanError, StepPlan
from .validate import assert_valid

__all__ = ["compile_reshard", "splice_plans"]

#: meta key carrying each rank's final (exit-barrier) uid, used by
#: :func:`splice_plans` to anchor the second plan's roots.
_EXIT_UIDS = "reshard_exit_uids"


def compile_reshard(new_names: Sequence[str], old_names: Sequence[str],
                    replica_bytes: float, shard_bytes: float = 0.0,
                    name: str = "reshard") -> StepPlan:
    """Compile the state-redistribution plan for one ring resize.

    Parameters
    ----------
    new_names:
        GPU node names of the ring *after* the resize, in ring order;
        the plan's rank ``i`` runs on ``new_names[i]``.
    old_names:
        Membership before the resize.  Ranks whose node appears here are
        *survivors* (they hold a full replica); the rest are *joining*
        and receive one over P2P from a survivor (round-robin, so
        several joiners draw from different donors and the restores
        overlap on disjoint fabric paths).
    replica_bytes:
        Serialized per-rank training state a joiner must receive
        (FP32 master weights + optimizer moments, checkpoint-sized).
    shard_bytes:
        Per-rank optimizer-shard payload for sharded (ZeRO) strategies:
        after replicas land, every rank all-gathers this much to re-cut
        the partition at the new world size.  ``0`` for replicated
        strategies (DDP/DP) — survivors already agree on full state.
    """
    world = len(new_names)
    if world < 1:
        raise PlanError("reshard needs a non-empty new ring")
    if len(set(new_names)) != world:
        raise PlanError("duplicate nodes in the new ring")
    old = set(old_names)
    survivors = [r for r, n in enumerate(new_names) if n in old]
    joining = [r for r, n in enumerate(new_names) if n not in old]
    if not survivors:
        raise PlanError(
            "reshard needs at least one surviving rank to source state "
            "from; restore from checkpoint instead")

    b = PlanBuilder(name, world, meta={
        "strategy": "reshard",
        "joined": [new_names[r] for r in joining],
        "departed": sorted(old - set(new_names)),
    })
    # Replica restores: donor ranks stream full state to joiners.  The
    # plan needs no entry barrier — the splice (or the job start) only
    # releases these roots once the previous program drained; the *exit*
    # barrier is what carries correctness (no downstream op starts
    # before every rank's state landed).
    last: dict = {}
    for i, dst in enumerate(joining):
        donor = survivors[i % len(survivors)]
        copy = b.p2p(donor, f"restore-{new_names[dst]}", dst,
                     replica_bytes, deps=[last.get(donor)],
                     label="reshard", payload="replica-state")
        last[donor] = copy
        last[dst] = copy  # the joiner's exit waits on its incoming copy
    if joining:
        b.declare_conservation("replica-state",
                               len(joining) * replica_bytes)
    # Sharded optimizers re-cut their partition at the new world size.
    if shard_bytes > 0 and world > 1:
        for r in range(world):
            last[r] = b.collective(r, "repartition", "all_gather",
                                   shard_bytes, deps=[last.get(r)],
                                   payload="shard-state")
        b.declare_conservation("shard-state", world * shard_bytes)
    exits = {r: b.barrier(r, "reshard-exit", deps=[last.get(r)],
                          traced=False)
             for r in range(world)}
    plan = b.build()
    plan.meta[_EXIT_UIDS] = dict(exits)
    return assert_valid(plan)


def splice_plans(first: StepPlan, second: StepPlan,
                 name: Optional[str] = None) -> StepPlan:
    """Concatenate two plans into one: ``second`` starts after ``first``.

    Every root op of ``second`` (an op with no deps of its own) gains a
    dependency on its rank's final op in ``first``, so each rank drains
    the first program before entering the second.  Uids from ``second``
    that collide with ``first`` are suffixed ``+s`` (deps remapped);
    conservation declarations merge by payload (summing totals shared by
    both halves).
    """
    if first.world_size != second.world_size:
        raise PlanError(
            f"cannot splice plans of world {first.world_size} and "
            f"{second.world_size}")
    taken = {op.uid for op in first}
    rename = {op.uid: (op.uid if op.uid not in taken else op.uid + "+s")
              for op in second}
    tails = first.meta.get(_EXIT_UIDS) or {
        rank: first.by_rank(rank)[-1].uid
        for rank in range(first.world_size)
        if first.by_rank(rank)}
    ops = list(first)
    for op in second:
        deps = tuple(rename[d] for d in op.deps)
        if not deps and op.rank in tails:
            deps = (tails[op.rank],)
        ops.append(dataclasses.replace(op, uid=rename[op.uid], deps=deps))
    conservation: dict = {}
    for plan in (first, second):
        for payload, total in plan.meta.get("conservation", {}).items():
            conservation[payload] = conservation.get(payload, 0.0) + total
    meta = {"strategy": f"splice({first.name},{second.name})",
            "spliced": [first.name, second.name]}
    if conservation:
        meta["conservation"] = conservation
    return assert_valid(StepPlan(
        name or f"{first.name}+{second.name}",
        first.world_size, ops, meta))


def is_rendezvous_only(plan: StepPlan) -> bool:
    """True when a reshard moves no bytes (pure barrier quiesce)."""
    return all(isinstance(op, Barrier)
               or (isinstance(op, Collective) and op.bytes == 0)
               for op in plan)
