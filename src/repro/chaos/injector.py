"""Deterministic fault injection against a live simulated system.

The :class:`FaultInjector` runs a :class:`~repro.chaos.scenario.
FaultScenario` as a simulation process: it sleeps to each event's time,
resolves the target to concrete fabric objects, applies the fault, and
records what it did in three places —

- an in-memory **trace** (``(time, action, target)`` tuples) that tests
  compare across seeded runs for determinism,
- the management **event log** (``fault_injected`` records) so recovery
  activity and its trigger appear in one audit stream,
- the chassis **BMC link-health counters** (a degraded link accumulates
  correctable errors, a pulled cable an uncorrectable one), mirroring
  how a real operator would first notice the fault.

Targets are resolved lazily at fire time, so a scenario can reference a
port or device by name before the experiment constructs it.
"""

from __future__ import annotations

from typing import Optional

from ..fabric.falcon import Falcon4016
from ..fabric.link import Link
from ..fabric.topology import DeviceFailure, Topology
from ..management.bmc import BMC
from ..management.events import EventLog
from ..sim import Environment
from .scenario import FaultEvent, FaultScenario

__all__ = ["FaultInjector", "InjectionError"]


class InjectionError(Exception):
    """A scenario event could not be resolved or applied."""


class FaultInjector:
    """Executes fault scenarios against topology + chassis + BMC."""

    def __init__(self, env: Environment, topology: Topology,
                 falcon: Optional[Falcon4016] = None,
                 event_log: Optional[EventLog] = None,
                 bmc: Optional[BMC] = None):
        self.env = env
        self.topology = topology
        self.falcon = falcon
        self.event_log = event_log
        self.bmc = bmc
        #: (time, action, target) tuples, in execution order.
        self.trace: list[tuple[float, str, str]] = []
        #: Links pulled per target, for reseat (node targets may pull
        #: several links at once).
        self._pulled: dict[str, list[Link]] = {}

    # -- scheduling --------------------------------------------------------
    def start(self, scenario: FaultScenario):
        """Launch the scenario as a background process (returns it)."""
        return self.env.process(self._run(scenario))

    def _run(self, scenario: FaultScenario):
        for event in scenario:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.apply(event)

    # -- execution ---------------------------------------------------------
    def apply(self, event: FaultEvent) -> None:
        """Apply one fault event immediately."""
        handler = getattr(self, f"_do_{event.action}", None)
        if handler is None:  # pragma: no cover - ACTIONS is validated
            raise InjectionError(f"unhandled action {event.action!r}")
        handler(event)
        self.trace.append((self.env.now, event.action, event.target))
        if self.event_log is not None:
            self.event_log.record(self.env.now, "fault_injected",
                                  "chaos", action=event.action,
                                  target=event.target,
                                  **dict(event.params))

    # -- actions -----------------------------------------------------------
    def _do_degrade_link(self, event: FaultEvent) -> None:
        lanes = int(event.params.get("lanes", 8))
        for link in self._target_links(event.target):
            if link.failed:  # can't retrain a pulled cable
                continue
            self.topology.degrade_link(link, lanes)
            self._bmc_error(link, correctable=True)

    def _do_restore_link(self, event: FaultEvent) -> None:
        for link in self._pulled.pop(event.target, []):
            self.topology.restore_link(link)
        for link in self._target_links(event.target, allow_missing=True):
            if link.spec is not link.original_spec:
                self.topology.restore_link(link)

    def _do_reseat_cable(self, event: FaultEvent) -> None:
        self._do_restore_link(event)

    def _do_pull_cable(self, event: FaultEvent) -> None:
        # Pulling an already-pulled cable is a no-op, so overlapping
        # random events (pull during a flap's down window) stay legal.
        links = [l for l in self._target_links(event.target)
                 if not l.failed]
        for link in links:
            self.topology.fail_link(link)
            self._bmc_error(link, correctable=False)
        self._pulled.setdefault(event.target, []).extend(links)

    def _do_port_flap(self, event: FaultEvent) -> None:
        down = float(event.params.get("down", 1.0))
        self._do_pull_cable(event)
        self.env.process(self._flap_restore(event, down))

    def _flap_restore(self, event: FaultEvent, down: float):
        yield self.env.timeout(down)
        restore = FaultEvent(self.env.now, "restore_link", event.target)
        self.apply(restore)

    def _do_gpu_drop(self, event: FaultEvent) -> None:
        node = self._node_of(event.target)
        cause = DeviceFailure(node)
        links = self.topology.links_of(node)
        if not links:
            if event.target in self._pulled:  # already isolated
                return
            raise InjectionError(f"{node!r} has no links to fail")
        for link in links:
            self.topology.fail_link(link, cause=cause)
            self._bmc_error(link, correctable=False)
        self._pulled.setdefault(event.target, []).extend(links)

    def _do_nvme_fail(self, event: FaultEvent) -> None:
        self._do_gpu_drop(event)

    # -- target resolution ----------------------------------------------------
    def _target_links(self, target: str,
                      allow_missing: bool = False) -> list[Link]:
        kind, _, name = target.partition(":")
        if kind == "port":
            return [self._port_link(name)]
        if kind == "node":
            links = self.topology.links_of(name)
            if not links and not allow_missing:
                raise InjectionError(f"node {name!r} has no links")
            return links
        raise InjectionError(
            f"unknown target kind {kind!r} in {target!r}")

    def _node_of(self, target: str) -> str:
        kind, _, name = target.partition(":")
        if kind != "node":
            raise InjectionError(
                f"action needs a node: target, got {target!r}")
        if not self.topology.has_node(name):
            raise InjectionError(f"unknown node {name!r}")
        return name

    def _port_link(self, port: str) -> Link:
        if self.falcon is None:
            raise InjectionError(
                "port targets need a Falcon chassis wired in")
        mapping = self.falcon.port_map.get(port)
        if mapping is None:
            raise InjectionError(f"port {port!r} is not cabled")
        host_id, drawer_index = mapping
        drawer = self.falcon.drawers[drawer_index]
        for entry_port, link, _partition in drawer.hosts.get(host_id, []):
            if entry_port == port:
                return link
        raise InjectionError(  # pragma: no cover - port_map kept in sync
            f"port {port!r} has no link record")

    # -- BMC wiring ---------------------------------------------------------
    def _bmc_error(self, link: Link, correctable: bool) -> None:
        if self.bmc is None:
            return
        if link.name not in self.bmc.links:
            self.bmc.track_link(link.name)
        self.bmc.record_link_error(link.name, correctable=correctable)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultInjector events={len(self.trace)}>"
