"""Chaos engineering for the composable test bed.

Deterministic, seedable fault injection against the simulated fabric:
:class:`FaultScenario` describes *what* goes wrong and *when* (scripted
by hand, loaded from plain dicts, or randomized from a seed), and
:class:`FaultInjector` executes a scenario against a live system —
pulling cables, dropping GPUs, flapping host ports, degrading links —
while recording an event trace that is bit-identical across runs with
the same seed.
"""

from .injector import FaultInjector, InjectionError
from .scenario import FaultEvent, FaultScenario, ScenarioError

__all__ = [
    "FaultEvent",
    "FaultScenario",
    "ScenarioError",
    "FaultInjector",
    "InjectionError",
]
