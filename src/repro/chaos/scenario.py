"""Fault scenario description format.

A scenario is an ordered list of :class:`FaultEvent` records — *when*
(simulated seconds), *what* (action name), *where* (a target string) and
action parameters.  The same format serves scripted experiment
scenarios, test fixtures, and seeded random scenarios; round-tripping
through :meth:`FaultScenario.to_dict` / :meth:`FaultScenario.from_dict`
makes scenarios portable as plain JSON-able data.

Target syntax
-------------
``port:H1``
    A Falcon host port (the CDFP cable + adapter).
``node:<topology node>``
    Any fabric endpoint, e.g. ``node:falcon0/gpu3`` or
    ``node:falcon0/nvme``.

Actions
-------
``degrade_link``
    Retrain the target's link at reduced width (``lanes`` param).
``restore_link``
    Heal the target's link (reverses both degradation and a pull).
``pull_cable``
    Hard-fail the target's link; in-flight transfers abort.
``reseat_cable``
    Re-seat a pulled link (alias of ``restore_link``).
``port_flap``
    ``pull_cable`` now, automatic ``restore_link`` after ``down``
    seconds — the transient fault a backoff-retry policy rides out.
``gpu_drop``
    Fail *every* link of the target node with a
    :class:`~repro.fabric.topology.DeviceFailure` (device fell off the
    fabric).
``nvme_fail``
    Same as ``gpu_drop``, for storage targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["FaultEvent", "FaultScenario", "ScenarioError", "ACTIONS"]

#: Recognized fault actions.
ACTIONS = (
    "degrade_link",
    "restore_link",
    "pull_cable",
    "reseat_cable",
    "port_flap",
    "gpu_drop",
    "nvme_fail",
)


class ScenarioError(Exception):
    """Malformed scenario or event description."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: time, action, target, parameters."""

    at: float
    action: str
    target: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ScenarioError(f"event time must be >= 0, got {self.at}")
        if self.action not in ACTIONS:
            raise ScenarioError(
                f"unknown action {self.action!r}; known: {ACTIONS}")
        if ":" not in self.target:
            raise ScenarioError(
                f"target {self.target!r} must be 'kind:name' "
                "(e.g. 'port:H1', 'node:falcon0/gpu3')")

    def to_dict(self) -> dict:
        return {"at": self.at, "action": self.action,
                "target": self.target, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        try:
            return cls(at=float(data["at"]), action=data["action"],
                       target=data["target"],
                       params=dict(data.get("params", {})))
        except KeyError as exc:
            raise ScenarioError(f"event missing field {exc}") from exc


class FaultScenario:
    """A named, ordered fault schedule."""

    def __init__(self, name: str, events: Iterable[FaultEvent],
                 seed: Optional[int] = None):
        self.name = name
        self.events = sorted(events, key=lambda e: e.at)
        #: The seed a randomized scenario was drawn from (provenance).
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration(self) -> float:
        return self.events[-1].at if self.events else 0.0

    def shifted(self, offset: float) -> "FaultScenario":
        """The same scenario, every event delayed by ``offset``."""
        return FaultScenario(
            self.name,
            [FaultEvent(e.at + offset, e.action, e.target, dict(e.params))
             for e in self.events],
            seed=self.seed)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        out = {"name": self.name,
               "events": [e.to_dict() for e in self.events]}
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultScenario":
        try:
            name = data["name"]
        except KeyError as exc:
            raise ScenarioError("scenario missing 'name'") from exc
        events = [FaultEvent.from_dict(e) for e in data.get("events", [])]
        return cls(name, events, seed=data.get("seed"))

    # -- randomized scenarios ------------------------------------------------
    @classmethod
    def random(cls, seed: int, duration: float,
               targets: Sequence[str],
               count: int = 3,
               actions: Sequence[str] = ("degrade_link", "port_flap",
                                         "pull_cable"),
               name: Optional[str] = None) -> "FaultScenario":
        """A seeded random scenario: identical for identical arguments.

        Times are drawn uniformly over ``[0.1, 0.9] * duration``; every
        ``pull_cable`` is paired with a ``reseat_cable`` before the end
        so random scenarios stay survivable; ``degrade_link`` draws
        lanes from {8, 4}; ``port_flap`` downtime is 2-10% of duration.
        """
        if not targets:
            raise ScenarioError("random scenario needs at least one target")
        if duration <= 0:
            raise ScenarioError("duration must be positive")
        for action in actions:
            if action not in ACTIONS:
                raise ScenarioError(f"unknown action {action!r}")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for _ in range(count):
            at = float(rng.uniform(0.1, 0.9)) * duration
            action = str(rng.choice(list(actions)))
            target = str(rng.choice(list(targets)))
            params: dict = {}
            if action == "degrade_link":
                params["lanes"] = int(rng.choice([8, 4]))
            elif action == "port_flap":
                params["down"] = float(rng.uniform(0.02, 0.10)) * duration
            events.append(FaultEvent(at, action, target, params))
            if action == "pull_cable":
                heal = at + float(rng.uniform(0.02, 0.10)) * duration
                events.append(FaultEvent(heal, "reseat_cable", target))
        return cls(name or f"random-{seed}", events, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultScenario {self.name!r} events={len(self.events)} "
                f"duration={self.duration:.3g}s>")
