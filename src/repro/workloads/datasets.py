"""Synthetic dataset descriptors and preprocessing cost models.

The paper trains on ImageNet, COCO, and SQuAD v1.1.  The actual bits are
irrelevant to system behaviour; what matters is *how many bytes* move
from storage to host memory to GPU, and *how much CPU time* the
per-sample preprocessing (JPEG decode, random crop/resize/normalize,
mosaic augmentation, tokenized-feature collation) costs — that CPU cost is
exactly why the vision benchmarks exercise the host CPUs more than the
NLP ones (paper Fig. 13).

A :class:`DatasetSpec` captures those quantities per sample; cost-model
constants are calibrated against published per-image pipelines on
Skylake-class cores.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetSpec", "IMAGENET", "COCO", "SQUAD_V11"]

KB = 1e3
MB = 1e6


@dataclass(frozen=True)
class DatasetSpec:
    """Per-sample data-movement and preprocessing costs of a dataset."""

    name: str
    domain: str
    num_samples: int
    #: Average stored (compressed / serialized) bytes per sample.
    disk_bytes_per_sample: float
    #: Bytes copied host->device per sample (decoded, collated tensor).
    h2d_bytes_per_sample: float
    #: CPU preprocessing cost per sample, core-seconds.
    preprocess_core_seconds: float

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError(f"{self.name}: num_samples must be positive")
        if min(self.disk_bytes_per_sample, self.h2d_bytes_per_sample,
               self.preprocess_core_seconds) < 0:
            raise ValueError(f"{self.name}: costs must be non-negative")

    def epoch_disk_bytes(self) -> float:
        """Bytes read from storage per epoch."""
        return self.num_samples * self.disk_bytes_per_sample

    def steps_per_epoch(self, global_batch: int) -> int:
        """Optimizer steps per epoch at the given global batch size."""
        if global_batch <= 0:
            raise ValueError("global_batch must be positive")
        return max(1, self.num_samples // global_batch)


#: ImageNet-1k train split: JPEG on disk, 224x224x3 float32 on the wire
#: after decode + random-resized-crop + normalize (~5 ms/core/image).
IMAGENET = DatasetSpec(
    name="ImageNet",
    domain="vision",
    num_samples=1_281_167,
    disk_bytes_per_sample=110 * KB,
    h2d_bytes_per_sample=224 * 224 * 3 * 4,
    preprocess_core_seconds=5.0e-3,
)

#: COCO train2017 at 640x640 for YOLOv5 (decode + letterbox + mosaic
#: augmentation is markedly more expensive than classification pipelines).
COCO = DatasetSpec(
    name="COCO",
    domain="vision",
    num_samples=118_287,
    disk_bytes_per_sample=165 * KB,
    h2d_bytes_per_sample=640 * 640 * 3 * 4,
    preprocess_core_seconds=14.0e-3,
)

#: SQuAD v1.1 train set, pre-tokenized to max_seq_len 384: three int64
#: feature tensors per example, near-zero CPU collation cost.
SQUAD_V11 = DatasetSpec(
    name="SQuAD v1.1",
    domain="nlp",
    num_samples=87_599,
    disk_bytes_per_sample=3 * 384 * 8,
    h2d_bytes_per_sample=3 * 384 * 8,
    preprocess_core_seconds=0.15e-3,
)
