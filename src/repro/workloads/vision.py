"""Computer-vision model builders: ResNet-50, MobileNetV2, YOLOv5-L.

Each builder constructs a :class:`~repro.workloads.layers.ModelGraph`
layer by layer from the published architecture, so parameter counts,
per-sample FLOPs, and activation footprints are *derived*, not hardcoded —
they land on the paper's Table II values (ResNet-50 25.6M / depth 50,
MobileNetV2 3.4M / depth 53, YOLOv5-L 47M) because the architectures do.

Conventions:

- depth counts weighted layers only; projection/downsample shortcuts are
  excluded per the standard "ResNet-50 has 50 layers" convention;
- FLOPs are 2 x MACs at the input resolution used by the paper's runs
  (224 for ImageNet models, 640 for YOLOv5 on COCO).
"""

from __future__ import annotations

from dataclasses import replace

from .layers import (
    Layer,
    ModelGraph,
    activation,
    batchnorm2d,
    conv2d,
    depthwise_conv2d,
    linear,
    pooling,
)

__all__ = ["resnet50", "mobilenet_v2", "yolov5l"]


def _unweighted(layer: Layer) -> Layer:
    """Exclude a layer from the depth count (e.g. projection shortcuts)."""
    return replace(layer, weighted=False)


def _conv_bn(graph: ModelGraph, name: str, in_ch: int, out_ch: int,
             kernel: int, hw: tuple[int, int], groups: int = 1,
             weighted: bool = True) -> None:
    conv = conv2d(name, in_ch, out_ch, kernel, hw, groups=groups)
    graph.add(conv if weighted else _unweighted(conv))
    graph.add(batchnorm2d(f"{name}.bn", out_ch, hw))
    graph.add(activation(f"{name}.act", out_ch * hw[0] * hw[1]))


# ---------------------------------------------------------------------------
# ResNet-50
# ---------------------------------------------------------------------------

def resnet50(num_classes: int = 1000,
             input_hw: tuple[int, int] = (224, 224)) -> ModelGraph:
    """ResNet-50 v1 for ImageNet classification (He et al., 2016)."""
    g = ModelGraph("ResNet-50", family="cnn")
    h, w = input_hw
    h, w = h // 2, w // 2                      # stem stride 2
    _conv_bn(g, "stem.conv", 3, 64, 7, (h, w))
    h, w = h // 2, w // 2                      # maxpool stride 2
    g.add(pooling("stem.maxpool", 64, (h, w)))

    in_ch = 64
    stages = [  # (bottleneck width, blocks, stride)
        (64, 3, 1),
        (128, 4, 2),
        (256, 6, 2),
        (512, 3, 2),
    ]
    for s, (width, blocks, stride) in enumerate(stages):
        out_ch = width * 4
        for b in range(blocks):
            if b == 0 and stride == 2:
                h, w = h // 2, w // 2
            name = f"layer{s + 1}.{b}"
            _conv_bn(g, f"{name}.conv1", in_ch, width, 1, (h, w))
            _conv_bn(g, f"{name}.conv2", width, width, 3, (h, w))
            # conv3 has BN but its ReLU comes after the residual add.
            g.add(conv2d(f"{name}.conv3", width, out_ch, 1, (h, w)))
            g.add(batchnorm2d(f"{name}.conv3.bn", out_ch, (h, w)))
            if b == 0:
                # Projection shortcut: real conv, not counted in depth.
                g.add(_unweighted(
                    conv2d(f"{name}.downsample", in_ch, out_ch, 1, (h, w))))
                g.add(batchnorm2d(f"{name}.downsample.bn", out_ch, (h, w)))
            g.add(activation(f"{name}.relu", out_ch * h * w))
            in_ch = out_ch

    g.add(pooling("avgpool", in_ch, (1, 1)))
    g.add(linear("fc", in_ch, num_classes))
    return g


# ---------------------------------------------------------------------------
# MobileNetV2
# ---------------------------------------------------------------------------

#: (expansion t, output channels c, repeats n, first stride s)
_MBV2_CONFIG = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def mobilenet_v2(num_classes: int = 1000,
                 input_hw: tuple[int, int] = (224, 224)) -> ModelGraph:
    """MobileNetV2 (Sandler et al., 2018): inverted residuals + linear
    bottlenecks."""
    g = ModelGraph("MobileNetV2", family="cnn")
    h, w = input_hw
    h, w = h // 2, w // 2
    _conv_bn(g, "stem", 3, 32, 3, (h, w))

    in_ch = 32
    for stage, (t, c, n, s) in enumerate(_MBV2_CONFIG):
        for b in range(n):
            stride = s if b == 0 else 1
            if stride == 2:
                h, w = h // 2, w // 2
            name = f"block{stage}.{b}"
            hidden = in_ch * t
            if t != 1:
                _conv_bn(g, f"{name}.expand", in_ch, hidden, 1, (h, w))
            _conv_bn(g, f"{name}.dw", hidden, hidden, 3, (h, w),
                     groups=hidden)
            # Linear bottleneck: conv + BN, no activation.
            g.add(conv2d(f"{name}.project", hidden, c, 1, (h, w)))
            g.add(batchnorm2d(f"{name}.project.bn", c, (h, w)))
            in_ch = c

    _conv_bn(g, "head.conv", in_ch, 1280, 1, (h, w))
    g.add(pooling("head.avgpool", 1280, (1, 1)))
    g.add(linear("classifier", 1280, num_classes))
    return g


# ---------------------------------------------------------------------------
# YOLOv5-L
# ---------------------------------------------------------------------------

def _c3(g: ModelGraph, name: str, in_ch: int, out_ch: int, n: int,
        hw: tuple[int, int]) -> None:
    """CSP bottleneck with 3 convolutions (Ultralytics C3 module)."""
    hidden = out_ch // 2
    _conv_bn(g, f"{name}.cv1", in_ch, hidden, 1, hw)
    _conv_bn(g, f"{name}.cv2", in_ch, hidden, 1, hw)
    for i in range(n):
        _conv_bn(g, f"{name}.m{i}.cv1", hidden, hidden, 1, hw)
        _conv_bn(g, f"{name}.m{i}.cv2", hidden, hidden, 3, hw)
    _conv_bn(g, f"{name}.cv3", 2 * hidden, out_ch, 1, hw)


def _sppf(g: ModelGraph, name: str, channels: int,
          hw: tuple[int, int]) -> None:
    """Spatial pyramid pooling - fast."""
    hidden = channels // 2
    _conv_bn(g, f"{name}.cv1", channels, hidden, 1, hw)
    for i in range(3):
        g.add(pooling(f"{name}.pool{i}", hidden, hw))
    _conv_bn(g, f"{name}.cv2", 4 * hidden, channels, 1, hw)


def yolov5l(num_classes: int = 80,
            input_hw: tuple[int, int] = (640, 640)) -> ModelGraph:
    """YOLOv5-L (Ultralytics, depth/width multiple 1.0) on COCO."""
    g = ModelGraph("YOLOv5-L", family="detector")
    h, w = input_hw

    # Backbone (CSPDarknet).
    p1 = (h // 2, w // 2)
    _conv_bn(g, "b0.conv", 3, 64, 6, p1)            # P1/2
    p2 = (h // 4, w // 4)
    _conv_bn(g, "b1.conv", 64, 128, 3, p2)          # P2/4
    _c3(g, "b2.c3", 128, 128, 3, p2)
    p3 = (h // 8, w // 8)
    _conv_bn(g, "b3.conv", 128, 256, 3, p3)         # P3/8
    _c3(g, "b4.c3", 256, 256, 6, p3)
    p4 = (h // 16, w // 16)
    _conv_bn(g, "b5.conv", 256, 512, 3, p4)         # P4/16
    _c3(g, "b6.c3", 512, 512, 9, p4)
    p5 = (h // 32, w // 32)
    _conv_bn(g, "b7.conv", 512, 1024, 3, p5)        # P5/32
    _c3(g, "b8.c3", 1024, 1024, 3, p5)
    _sppf(g, "b9.sppf", 1024, p5)

    # Head (PANet).
    _conv_bn(g, "h10.conv", 1024, 512, 1, p5)
    _c3(g, "h13.c3", 1024, 512, 3, p4)              # after upsample+concat
    _conv_bn(g, "h14.conv", 512, 256, 1, p4)
    _c3(g, "h17.c3", 512, 256, 3, p3)
    _conv_bn(g, "h18.conv", 256, 256, 3, p4)        # downsample P3->P4
    _c3(g, "h20.c3", 512, 512, 3, p4)
    _conv_bn(g, "h21.conv", 512, 512, 3, p5)        # downsample P4->P5
    _c3(g, "h23.c3", 1024, 1024, 3, p5)

    # Detect: 1x1 convs to 3 anchors x (classes + 5) per scale.
    out = 3 * (num_classes + 5)
    g.add(conv2d("detect.p3", 256, out, 1, p3, bias=True))
    g.add(conv2d("detect.p4", 512, out, 1, p4, bias=True))
    g.add(conv2d("detect.p5", 1024, out, 1, p5, bias=True))
    return g
