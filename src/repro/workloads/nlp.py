"""NLP model builders: BERT-base and BERT-large for SQuAD fine-tuning.

Transformer encoders built layer by layer (Devlin et al., 2019): WordPiece
/ position / segment embeddings, ``L`` encoder blocks of multi-head
self-attention plus a 4x feed-forward network, and the span-prediction QA
head used for SQuAD.  Parameter counts are derived from the layer math and
land on Table II's 110M (base) and ~340M (large).

The paper fine-tunes with max sequence length 384; attention FLOPs scale
with the square of this, which is what makes the BERT benchmarks GPU-
compute and GPU-memory bound (paper §V-C.2).
"""

from __future__ import annotations

from .layers import (
    ModelGraph,
    activation,
    embedding,
    layernorm,
    linear,
    multihead_attention,
)

__all__ = ["bert", "bert_base", "bert_large", "BERT_VOCAB_SIZE"]

#: WordPiece vocabulary of the original BERT release.
BERT_VOCAB_SIZE = 30522
#: Maximum position embeddings.
BERT_MAX_POSITIONS = 512
#: Token type (segment) vocabulary.
BERT_TYPE_VOCAB = 2


def bert(name: str, hidden: int, num_layers: int, heads: int,
         seq_len: int = 384, vocab: int = BERT_VOCAB_SIZE,
         qa_head: bool = True) -> ModelGraph:
    """A BERT-style transformer encoder with optional SQuAD QA head."""
    if seq_len <= 0 or seq_len > BERT_MAX_POSITIONS:
        raise ValueError(
            f"seq_len must be in (0, {BERT_MAX_POSITIONS}], got {seq_len}")
    g = ModelGraph(name, family="transformer")
    intermediate = 4 * hidden

    # Embeddings.
    g.add(embedding("embeddings.word", vocab, hidden, seq_len))
    g.add(embedding("embeddings.position", BERT_MAX_POSITIONS, hidden,
                    seq_len))
    g.add(embedding("embeddings.token_type", BERT_TYPE_VOCAB, hidden,
                    seq_len))
    g.add(layernorm("embeddings.ln", hidden, seq_len))

    # Encoder blocks.
    for i in range(num_layers):
        prefix = f"encoder.layer{i}"
        g.add(multihead_attention(f"{prefix}.attention", hidden, heads,
                                  seq_len))
        g.add(layernorm(f"{prefix}.attention.ln", hidden, seq_len))
        g.add(linear(f"{prefix}.ffn.intermediate", hidden, intermediate,
                     tokens=seq_len))
        g.add(activation(f"{prefix}.ffn.gelu", intermediate * seq_len))
        g.add(linear(f"{prefix}.ffn.output", intermediate, hidden,
                     tokens=seq_len))
        g.add(layernorm(f"{prefix}.ffn.ln", hidden, seq_len))

    # Pooler (part of the pretrained checkpoint).
    g.add(linear("pooler", hidden, hidden, tokens=1))
    if qa_head:
        # SQuAD span classifier: start/end logits per token.
        g.add(linear("qa_outputs", hidden, 2, tokens=seq_len))
    return g


def bert_base(seq_len: int = 384) -> ModelGraph:
    """BERT-base: 12 layers, hidden 768, 12 heads (~110M params)."""
    return bert("BERT-base", hidden=768, num_layers=12, heads=12,
                seq_len=seq_len)


def bert_large(seq_len: int = 384) -> ModelGraph:
    """BERT-large: 24 layers, hidden 1024, 16 heads (~340M params)."""
    return bert("BERT-large", hidden=1024, num_layers=24, heads=16,
                seq_len=seq_len)
