"""DL workload models: layer math, architectures, datasets, registry.

Architectures are built layer by layer so parameter counts and FLOPs are
derived from the published designs (they reproduce the paper's Table II);
datasets are synthetic descriptors carrying per-sample byte and CPU
preprocessing costs.
"""

from .datasets import COCO, IMAGENET, SQUAD_V11, DatasetSpec
from .layers import (
    Layer,
    ModelGraph,
    activation,
    batchnorm2d,
    conv2d,
    depthwise_conv2d,
    embedding,
    layernorm,
    linear,
    multihead_attention,
    pooling,
)
from .nlp import BERT_VOCAB_SIZE, bert, bert_base, bert_large
from .registry import BENCHMARKS, Benchmark, benchmark_names, get_benchmark
from .vision import mobilenet_v2, resnet50, yolov5l

__all__ = [
    "Layer",
    "ModelGraph",
    "conv2d",
    "depthwise_conv2d",
    "batchnorm2d",
    "linear",
    "layernorm",
    "embedding",
    "multihead_attention",
    "pooling",
    "activation",
    "resnet50",
    "mobilenet_v2",
    "yolov5l",
    "bert",
    "bert_base",
    "bert_large",
    "BERT_VOCAB_SIZE",
    "DatasetSpec",
    "IMAGENET",
    "COCO",
    "SQUAD_V11",
    "Benchmark",
    "BENCHMARKS",
    "get_benchmark",
    "benchmark_names",
]
