"""Benchmark registry: the paper's five DL benchmarks (Table II).

Bundles a model builder, a dataset, the paper's run parameters (batch
size, epochs, sequence length), and calibrated sustained-efficiency
figures for V100-class GPUs.  Efficiencies are the fraction of *peak*
FLOP/s a training step sustains; conv nets reach a small fraction of the
FP16 tensor-core peak (memory-bound depthwise/pointwise kernels), while
transformer encoders with large GEMMs reach a much larger fraction —
this is what makes the NLP benchmarks "GPU compute and GPU memory bound"
(paper §V-C.2).

Calibration sanity anchors (published V100 throughputs, FP16 + DDP):
ResNet-50 ~400 img/s/GPU, MobileNetV2 ~1500 img/s/GPU, YOLOv5-L ~40
img/s/GPU at 640px, BERT-base ~130 seq/s/GPU and BERT-large ~35 seq/s/GPU
at sequence length 384.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..devices.gpu import Precision
from .datasets import COCO, IMAGENET, SQUAD_V11, DatasetSpec
from .layers import ModelGraph
from .nlp import bert_base, bert_large
from .vision import mobilenet_v2, resnet50, yolov5l

__all__ = ["Benchmark", "BENCHMARKS", "get_benchmark", "benchmark_names"]


@dataclass(frozen=True)
class Benchmark:
    """One paper benchmark: model + dataset + run parameters."""

    key: str
    display_name: str
    domain: str
    model_builder: Callable[[], ModelGraph]
    dataset: DatasetSpec
    #: Effective global (all-GPU) batch size.  For the torchvision-style
    #: classification scripts the paper's Table gives the *per-process*
    #: batch flag (64 / 128), so the 8-GPU global batch is 8x; for the
    #: memory-bound YOLOv5 and BERT runs the reported figure is already
    #: the global batch (e.g. BERT-large 48 = 6 per 16 GB V100, the
    #: batch the sharded optimizer later lifts to 10 — paper §V-C.4).
    global_batch: int
    #: Batch-size figure exactly as reported in the paper's text.
    paper_batch_size: int
    epochs: int
    #: Sustained fraction of peak FLOP/s by precision.
    efficiency: dict[Precision, float]
    #: Depth figure as reported in the paper's Table II (its convention
    #: differs per family: ResNet counts weighted layers, BERT counts
    #: encoder blocks, YOLOv5 counts framework modules).
    paper_depth: int
    #: Parameter count reported in Table II (millions), for comparison.
    paper_params_m: float
    seq_len: int = 0
    #: Storage reads per logical sample (YOLOv5's mosaic augmentation
    #: composes each training image from four source images).
    disk_read_factor: float = 1.0

    def build(self) -> ModelGraph:
        """Construct the model graph."""
        return self.model_builder()

    @property
    def steps_per_epoch(self) -> int:
        return self.dataset.steps_per_epoch(self.global_batch)


BENCHMARKS: dict[str, Benchmark] = {
    "mobilenetv2": Benchmark(
        key="mobilenetv2",
        display_name="MobileNetV2",
        domain="vision",
        model_builder=mobilenet_v2,
        dataset=IMAGENET,
        global_batch=512,
        paper_batch_size=64,
        epochs=10,
        efficiency={Precision.FP16: 0.010, Precision.FP32: 0.055},
        paper_depth=53,
        paper_params_m=3.4,
    ),
    "resnet50": Benchmark(
        key="resnet50",
        display_name="ResNet-50",
        domain="vision",
        model_builder=resnet50,
        dataset=IMAGENET,
        global_batch=1024,
        paper_batch_size=128,
        epochs=20,
        efficiency={Precision.FP16: 0.080, Precision.FP32: 0.45},
        paper_depth=50,
        paper_params_m=25.6,
    ),
    "yolov5l": Benchmark(
        key="yolov5l",
        display_name="YOLOv5-L",
        domain="vision",
        model_builder=yolov5l,
        dataset=COCO,
        global_batch=88,
        paper_batch_size=88,
        epochs=20,
        efficiency={Precision.FP16: 0.105, Precision.FP32: 0.50},
        paper_depth=392,
        paper_params_m=47.0,
        disk_read_factor=4.0,
    ),
    "bert-base": Benchmark(
        key="bert-base",
        display_name="BERT",
        domain="nlp",
        model_builder=bert_base,
        dataset=SQUAD_V11,
        global_batch=96,
        paper_batch_size=96,
        epochs=2,
        efficiency={Precision.FP16: 0.220, Precision.FP32: 0.55},
        paper_depth=12,
        paper_params_m=110.0,
        seq_len=384,
    ),
    "bert-large": Benchmark(
        key="bert-large",
        display_name="BERT-L",
        domain="nlp",
        model_builder=bert_large,
        dataset=SQUAD_V11,
        global_batch=48,
        paper_batch_size=48,
        epochs=2,
        efficiency={Precision.FP16: 0.220, Precision.FP32: 0.55},
        paper_depth=24,
        paper_params_m=340.0,
        seq_len=384,
    ),
}


def get_benchmark(key: str) -> Benchmark:
    """Look up a benchmark by key (raises KeyError with suggestions)."""
    try:
        return BENCHMARKS[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {key!r}; available: "
            f"{', '.join(sorted(BENCHMARKS))}") from None


def benchmark_names() -> list[str]:
    """Benchmark keys in the paper's Table II order."""
    return ["mobilenetv2", "resnet50", "yolov5l", "bert-base", "bert-large"]
