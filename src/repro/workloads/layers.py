"""Layer primitives with exact parameter / FLOP / activation accounting.

Each :class:`Layer` records, per sample:

- ``params`` — trainable parameter count,
- ``forward_flops`` — forward-pass floating-point operations
  (2 x multiply-accumulates, the standard convention),
- ``activation_bytes`` — output activation footprint at FP32
  (halved automatically for FP16 by the model-level accessors),
- ``weighted`` — whether the layer counts toward the architecture
  "depth" reported in the paper's Table II (conv/linear layers, the
  convention used by e.g. ResNet-50 = 50).

A :class:`ModelGraph` is an ordered collection of layers with aggregate
accessors used by the training engine: step FLOPs (forward + backward),
gradient bytes for allreduce, weight and activation memory, and the
per-sample HBM traffic estimate that drives the roofline kernel model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..devices.gpu import Precision

__all__ = [
    "Layer",
    "ModelGraph",
    "conv2d",
    "depthwise_conv2d",
    "batchnorm2d",
    "linear",
    "layernorm",
    "embedding",
    "multihead_attention",
    "pooling",
    "activation",
]

#: Backward pass costs ~2x the forward pass (grad wrt inputs + weights).
BACKWARD_FLOP_MULTIPLIER = 2.0
#: Bytes per element at FP32.
FP32_BYTES = 4
FP16_BYTES = 2


@dataclass(frozen=True)
class Layer:
    """One layer's static cost model (per input sample)."""

    name: str
    params: int
    forward_flops: float
    activation_bytes: float
    weighted: bool = True

    def __post_init__(self) -> None:
        if self.params < 0 or self.forward_flops < 0 \
                or self.activation_bytes < 0:
            raise ValueError(f"layer {self.name!r} has negative costs")


# ---------------------------------------------------------------------------
# Layer constructors.  Spatial sizes are (H, W) of the *output* feature map
# unless noted.  FLOPs use the 2*MAC convention.
# ---------------------------------------------------------------------------

def conv2d(name: str, in_ch: int, out_ch: int, kernel: int,
           out_hw: tuple[int, int], groups: int = 1,
           bias: bool = False) -> Layer:
    """A 2-D convolution with ``kernel x kernel`` filters."""
    if in_ch % groups != 0:
        raise ValueError(f"{name}: in_ch {in_ch} not divisible by "
                         f"groups {groups}")
    h, w = out_hw
    weights = kernel * kernel * (in_ch // groups) * out_ch
    params = weights + (out_ch if bias else 0)
    macs = weights * h * w
    return Layer(
        name=name,
        params=params,
        forward_flops=2.0 * macs,
        activation_bytes=float(out_ch * h * w * FP32_BYTES),
    )


def depthwise_conv2d(name: str, channels: int, kernel: int,
                     out_hw: tuple[int, int]) -> Layer:
    """Depthwise convolution (groups == channels)."""
    return conv2d(name, channels, channels, kernel, out_hw, groups=channels)


def batchnorm2d(name: str, channels: int, out_hw: tuple[int, int]) -> Layer:
    """BatchNorm: scale+shift params, cheap elementwise math."""
    h, w = out_hw
    elements = channels * h * w
    return Layer(
        name=name,
        params=2 * channels,
        forward_flops=2.0 * elements,
        activation_bytes=float(elements * FP32_BYTES),
        weighted=False,
    )


def linear(name: str, in_features: int, out_features: int,
           tokens: int = 1, bias: bool = True) -> Layer:
    """A fully connected layer applied to ``tokens`` positions."""
    params = in_features * out_features + (out_features if bias else 0)
    macs = in_features * out_features * tokens
    return Layer(
        name=name,
        params=params,
        forward_flops=2.0 * macs,
        activation_bytes=float(out_features * tokens * FP32_BYTES),
    )


def layernorm(name: str, features: int, tokens: int = 1) -> Layer:
    elements = features * tokens
    return Layer(
        name=name,
        params=2 * features,
        forward_flops=5.0 * elements,  # mean, var, normalize, scale, shift
        activation_bytes=float(elements * FP32_BYTES),
        weighted=False,
    )


def embedding(name: str, vocab: int, features: int,
              tokens: int = 1) -> Layer:
    """Lookup table; negligible FLOPs, large parameter count."""
    return Layer(
        name=name,
        params=vocab * features,
        forward_flops=0.0,
        activation_bytes=float(features * tokens * FP32_BYTES),
        weighted=False,
    )


def multihead_attention(name: str, hidden: int, heads: int,
                        tokens: int) -> Layer:
    """Multi-head self-attention (QKV + output projections + scores).

    Parameters are the four hidden x hidden projections; FLOPs include the
    O(tokens^2 * hidden) score and context computations that dominate at
    long sequence lengths (the paper's BERT runs use 384).
    """
    if hidden % heads != 0:
        raise ValueError(f"{name}: hidden {hidden} not divisible by "
                         f"heads {heads}")
    proj_params = 4 * (hidden * hidden + hidden)
    proj_macs = 4 * hidden * hidden * tokens
    attn_macs = 2 * tokens * tokens * hidden   # QK^T and softmax(V)
    act_bytes = (tokens * hidden * 4            # Q, K, V, context
                 + heads * tokens * tokens      # attention probabilities
                 ) * FP32_BYTES
    return Layer(
        name=name,
        params=proj_params,
        forward_flops=2.0 * (proj_macs + attn_macs),
        activation_bytes=float(act_bytes),
    )


def pooling(name: str, channels: int, out_hw: tuple[int, int]) -> Layer:
    h, w = out_hw
    elements = channels * h * w
    return Layer(
        name=name,
        params=0,
        forward_flops=float(elements),
        activation_bytes=float(elements * FP32_BYTES),
        weighted=False,
    )


def activation(name: str, elements: float) -> Layer:
    """Elementwise nonlinearity (ReLU/ReLU6/SiLU/GELU)."""
    return Layer(
        name=name,
        params=0,
        forward_flops=float(elements),
        activation_bytes=float(elements * FP32_BYTES),
        weighted=False,
    )


class ModelGraph:
    """An ordered layer collection with aggregate cost accessors."""

    def __init__(self, name: str, layers: Optional[Iterable[Layer]] = None,
                 family: str = "generic"):
        self.name = name
        self.family = family
        self._layers: list[Layer] = list(layers or [])

    # -- construction ----------------------------------------------------
    def add(self, layer: Layer) -> "ModelGraph":
        self._layers.append(layer)
        return self

    def extend(self, layers: Iterable[Layer]) -> "ModelGraph":
        self._layers.extend(layers)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    @property
    def layers(self) -> tuple[Layer, ...]:
        return tuple(self._layers)

    # -- aggregates -------------------------------------------------------
    @property
    def params(self) -> int:
        """Total trainable parameters."""
        return sum(l.params for l in self._layers)

    @property
    def depth(self) -> int:
        """Number of weighted (conv/linear/attention) layers."""
        return sum(1 for l in self._layers if l.weighted)

    @property
    def forward_flops_per_sample(self) -> float:
        return sum(l.forward_flops for l in self._layers)

    @property
    def train_flops_per_sample(self) -> float:
        """Forward + backward FLOPs for one training sample."""
        return (1.0 + BACKWARD_FLOP_MULTIPLIER) \
            * self.forward_flops_per_sample

    def activation_bytes_per_sample(
            self, precision: Precision = Precision.FP32) -> float:
        scale = FP16_BYTES / FP32_BYTES \
            if precision is Precision.FP16 else 1.0
        return scale * sum(l.activation_bytes for l in self._layers)

    def weight_bytes(self, precision: Precision = Precision.FP32) -> float:
        per = FP16_BYTES if precision is Precision.FP16 else FP32_BYTES
        return float(self.params * per)

    def gradient_bytes(self, precision: Precision = Precision.FP32) -> float:
        """Bytes exchanged per replica per step by gradient allreduce."""
        per = FP16_BYTES if precision is Precision.FP16 else FP32_BYTES
        return float(self.params * per)

    def optimizer_state_bytes(self, sharded: bool = False,
                              world_size: int = 1) -> float:
        """Adam-style optimizer state (fp32 master + 2 moments).

        With ZeRO-style sharding the state is partitioned across replicas.
        """
        total = float(self.params * 3 * FP32_BYTES)
        if sharded and world_size > 1:
            return total / world_size
        return total

    def hbm_bytes_per_sample(self, precision: Precision = Precision.FP32
                             ) -> float:
        """Approximate HBM traffic per sample for the roofline model.

        Each layer reads its input activation, reads its weights, and
        writes its output ~= 2x activations + weights; the backward pass
        roughly doubles it again.
        """
        act = self.activation_bytes_per_sample(precision)
        weights = self.weight_bytes(precision)
        return 2.0 * (2.0 * act + weights)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "family": self.family,
            "layers": len(self._layers),
            "depth": self.depth,
            "params": self.params,
            "forward_gflops_per_sample":
                self.forward_flops_per_sample / 1e9,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ModelGraph {self.name} params={self.params / 1e6:.1f}M "
                f"depth={self.depth}>")
