"""Storage device models (NVMe SSDs and legacy local storage).

A storage device occupies *two* topology nodes: the PCIe/SATA endpoint
(``name``) and an internal media node (``name/media``) joined by a link
whose bandwidth equals the drive's sustained sequential throughput.  Reads
therefore stream ``media -> endpoint -> ... -> host DRAM`` through the
fluid-flow fabric, so the drive's media rate, its bus link, and any
switch/host-port contention (Falcon-attached NVMe, paper §V-C.3) all
bottleneck the transfer naturally.

The ``SSDPEDKX040T7`` constant models the paper's Intel DC P4500 4 TB
NVMe drive; ``LOCAL_SCRATCH`` models the baseline "local storage" of the
``localGPUs`` configuration (SATA-class scratch disk).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import CounterMonitor, Environment, Process, Resource
from ..fabric.link import GB, LinkSpec, Protocol, SATA3, US
from ..fabric.topology import Topology
from ..telemetry.trace import NULL_TRACER, Category

__all__ = ["StorageDevice", "StorageSpec", "SSDPEDKX040T7", "LOCAL_SCRATCH"]

#: One terabyte.
TB = 1e12


@dataclass(frozen=True)
class StorageSpec:
    """Static drive characteristics (sustained sequential figures)."""

    name: str
    capacity_bytes: float
    read_bandwidth: float       # bytes/s sustained sequential read
    write_bandwidth: float      # bytes/s sustained sequential write
    read_latency: float         # seconds per I/O
    write_latency: float        # seconds per I/O
    queue_depth: int = 32


#: Intel SSD DC P4500 4 TB (the paper's SSDPEDKX040T7).
SSDPEDKX040T7 = StorageSpec(
    name="Intel SSDPEDKX040T7 4TB NVMe",
    capacity_bytes=4 * TB,
    read_bandwidth=3.29 * GB,
    write_bandwidth=1.89 * GB,
    read_latency=85 * US,
    write_latency=20 * US,
)

#: Baseline "local storage" (SATA-class scratch volume).
LOCAL_SCRATCH = StorageSpec(
    name="Local SATA scratch",
    capacity_bytes=2 * TB,
    read_bandwidth=0.52 * GB,
    write_bandwidth=0.48 * GB,
    read_latency=180 * US,
    write_latency=60 * US,
    queue_depth=8,
)


class StorageDevice:
    """A simulated drive registered on the fabric.

    Use :meth:`read_to`/:meth:`write_from` for data that crosses the
    fabric (dataset batches, checkpoints); both return process events.
    """

    def __init__(self, env: Environment, topology: Topology, name: str,
                 spec: StorageSpec = SSDPEDKX040T7):
        self.env = env
        self.topology = topology
        self.name = name
        self.spec = spec
        self.media_node = f"{name}/media"
        # The endpoint must be transit-enabled so flows can pass from the
        # media node out to the fabric (and only there: the media node is
        # a leaf, so no foreign routes can cut through).
        topology.add_node(name, kind="storage", transit=True)
        topology.add_node(self.media_node, kind="storage-media")
        media_spec = LinkSpec(
            name=f"{spec.name} media channel",
            protocol=Protocol.MEMORY,
            lanes=1,
            # The media link carries reads and writes in opposite
            # directions; size each direction to its sustained rate.
            bandwidth=spec.read_bandwidth,
            latency=0.0,
        )
        self.media_link = topology.add_link(media_spec, self.media_node, name)
        #: Outstanding-command limit (queue depth).
        self.commands = Resource(env, capacity=spec.queue_depth)
        self.bytes_read = CounterMonitor(f"{name}:read")
        self.bytes_written = CounterMonitor(f"{name}:written")
        self._stored_bytes = 0.0

    @property
    def used_bytes(self) -> float:
        return self._stored_bytes

    def store(self, nbytes: float) -> None:
        """Account dataset/checkpoint residency (capacity bookkeeping)."""
        if self._stored_bytes + nbytes > self.spec.capacity_bytes:
            raise IOError(
                f"{self.name}: {nbytes / TB:.2f} TB does not fit "
                f"({self._stored_bytes / TB:.2f}/"
                f"{self.spec.capacity_bytes / TB:.2f} TB used)")
        self._stored_bytes += nbytes

    def evict(self, nbytes: float) -> None:
        self._stored_bytes = max(0.0, self._stored_bytes - nbytes)

    def read_to(self, destination: str, nbytes: float) -> Process:
        """Stream ``nbytes`` from the media to ``destination`` node."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.env.process(self._io(self.media_node, destination,
                                         nbytes, self.spec.read_latency,
                                         self.bytes_read, kind="read"))

    def write_from(self, source: str, nbytes: float) -> Process:
        """Stream ``nbytes`` from ``source`` node onto the media.

        Write bandwidth below read bandwidth is modelled by inflating the
        streamed bytes on the media link by the read/write ratio.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        inflation = self.spec.read_bandwidth / self.spec.write_bandwidth
        return self.env.process(self._io(source, self.media_node,
                                         nbytes * inflation,
                                         self.spec.write_latency,
                                         self.bytes_written,
                                         logical_bytes=nbytes,
                                         kind="write"))

    def _io(self, src: str, dst: str, nbytes: float, latency: float,
            counter: CounterMonitor, logical_bytes: float = -1.0,
            kind: str = "io"):
        tracer = self.topology.tracer or NULL_TRACER
        track = tracer.lane("storage", self.name)
        span = tracer.span(kind, Category.STORAGE, track, device=self.name,
                           bytes=logical_bytes if logical_bytes >= 0
                           else nbytes)
        try:
            with self.commands.request() as slot:
                queue_wait = tracer.span("queue-wait", Category.STALL,
                                         track)
                yield slot
                queue_wait.close()
                yield self.env.timeout(latency)
                yield self.topology.transfer(src, dst, nbytes)
                counter.add(self.env.now,
                            logical_bytes if logical_bytes >= 0 else nbytes)
        finally:
            span.close()
            tracer.release_lane(track)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StorageDevice {self.name} ({self.spec.name})>"
