"""Device models: GPUs, CPUs, storage, NICs, and whole host servers.

Each device registers itself as one or more nodes on a
:class:`~repro.fabric.Topology` and exposes analytic performance methods
(e.g. :meth:`GPU.compute`, :meth:`StorageDevice.read_to`) whose costs are
paid in simulated time.
"""

from .cpu import CPU, CPUSpec, XEON_GOLD_6148, XEON_GOLD_6148_DUAL
from .gpu import (
    GPU,
    GPUSpec,
    P100_PCIE_16GB,
    Precision,
    V100_PCIE_16GB,
    V100_SXM2_16GB,
)
from .host import (
    HostServer,
    HostSpec,
    PCIE_GEN3_X4_NVME,
    SUPERMICRO_4029GP_TVRT,
)
from .nic import NIC, NICSpec, X540_AT2
from .storage import LOCAL_SCRATCH, SSDPEDKX040T7, StorageDevice, StorageSpec

__all__ = [
    "GPU",
    "GPUSpec",
    "Precision",
    "V100_SXM2_16GB",
    "V100_PCIE_16GB",
    "P100_PCIE_16GB",
    "CPU",
    "CPUSpec",
    "XEON_GOLD_6148",
    "XEON_GOLD_6148_DUAL",
    "StorageDevice",
    "StorageSpec",
    "SSDPEDKX040T7",
    "LOCAL_SCRATCH",
    "NIC",
    "NICSpec",
    "X540_AT2",
    "HostServer",
    "HostSpec",
    "SUPERMICRO_4029GP_TVRT",
    "PCIE_GEN3_X4_NVME",
]
