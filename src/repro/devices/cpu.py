"""CPU device model.

Models the host's CPU complex as a pool of cores with busy-time
accounting.  DL training uses the CPU for data loading, image
preprocessing (random crop / resize / normalize), tokenization, and the
framework's Python-side bookkeeping — the paper's Fig. 13 shows the vision
benchmarks exercising the CPUs noticeably more than the NLP ones for
exactly this reason.

Work is expressed in *core-seconds*; a job running with ``parallelism``
worker threads finishes in ``core_seconds / parallelism`` wall seconds
while occupying that many cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import CounterMonitor, Environment, Resource

__all__ = ["CPU", "CPUSpec", "XEON_GOLD_6148", "XEON_GOLD_6148_DUAL"]


@dataclass(frozen=True)
class CPUSpec:
    """Static CPU-complex characteristics."""

    name: str
    sockets: int
    cores_per_socket: int
    base_clock_ghz: float
    #: Sustained per-core preprocessing throughput scale factor relative to
    #: a 2.4 GHz Skylake core (used by workload preprocessing cost models).
    core_perf: float = 1.0

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket


XEON_GOLD_6148 = CPUSpec(
    name="Intel Xeon Gold 6148",
    sockets=1,
    cores_per_socket=20,
    base_clock_ghz=2.4,
)

#: The Supermicro SYS-4029GP-TVRT host's dual-socket configuration.
XEON_GOLD_6148_DUAL = CPUSpec(
    name="2x Intel Xeon Gold 6148",
    sockets=2,
    cores_per_socket=20,
    base_clock_ghz=2.4,
)


class CPU:
    """A simulated CPU complex: core pool plus utilization accounting."""

    def __init__(self, env: Environment, name: str,
                 spec: CPUSpec = XEON_GOLD_6148_DUAL):
        self.env = env
        self.name = name
        self.spec = spec
        self.cores = Resource(env, capacity=spec.cores)
        #: Accumulated core-seconds of completed work.
        self.busy = CounterMonitor(f"{name}:busy", unit="core-s")

    def run(self, core_seconds: float, parallelism: int = 1):
        """Execute ``core_seconds`` of work on ``parallelism`` cores.

        Returns a process event that fires when the work completes.  The
        requested parallelism is capped at the core count.
        """
        if core_seconds < 0:
            raise ValueError("core_seconds must be >= 0")
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        workers = min(parallelism, self.spec.cores)
        return self.env.process(self._run(core_seconds, workers))

    def _run(self, core_seconds: float, workers: int):
        requests = [self.cores.request() for _ in range(workers)]
        for req in requests:
            yield req
        duration = core_seconds / workers if core_seconds > 0 else 0.0
        try:
            # Zero anchor at start: windowed utilization queries see the
            # core-seconds spread across the job's span (see GPU model).
            self.busy.add(self.env.now, 0.0)
            yield self.env.timeout(duration)
            self.busy.add(self.env.now, core_seconds)
        finally:
            for req in requests:
                self.cores.release(req)
        return duration

    def utilization(self, t0: float, t1: float) -> float:
        """Mean fraction of cores busy over [t0, t1]."""
        if t1 <= t0:
            return 0.0
        core_seconds = self.busy.total_between(t0, t1)
        return min(1.0, core_seconds / ((t1 - t0) * self.spec.cores))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CPU {self.name} ({self.spec.name})>"
