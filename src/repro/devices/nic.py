"""Network interface card model.

The hosts carry dual Intel X540-AT2 10 GbE NICs (paper §II-A).  NICs play
no role in the single-host DL experiments but are part of the composable
inventory — they can be installed in Falcon slots and attached to hosts —
so the model keeps them first-class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import CounterMonitor, Environment
from ..fabric.link import ETH_10G, GB, LinkSpec
from ..fabric.topology import Topology

__all__ = ["NIC", "NICSpec", "X540_AT2"]


@dataclass(frozen=True)
class NICSpec:
    """Static NIC characteristics."""

    name: str
    ports: int
    port_bandwidth: float    # bytes/s per port
    link_spec: LinkSpec = ETH_10G


X540_AT2 = NICSpec(
    name="Intel X540-AT2 10GbE",
    ports=2,
    port_bandwidth=1.15 * GB,
)


class NIC:
    """A simulated NIC registered on the fabric."""

    def __init__(self, env: Environment, topology: Topology, name: str,
                 spec: NICSpec = X540_AT2):
        self.env = env
        self.topology = topology
        self.name = name
        self.spec = spec
        topology.add_node(name, kind="nic", transit=False)
        self.bytes_sent = CounterMonitor(f"{name}:tx")
        self.bytes_received = CounterMonitor(f"{name}:rx")

    def send(self, nbytes: float):
        """Model an egress transmission (pure serialization time)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.env.process(self._send(nbytes))

    def _send(self, nbytes: float):
        yield self.env.timeout(nbytes / self.spec.port_bandwidth)
        self.bytes_sent.add(self.env.now, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NIC {self.name} ({self.spec.name})>"
