"""GPU device model.

An analytic V100-class GPU: kernels take
``max(flops / sustained_flops, bytes_touched / memory_bandwidth)`` seconds
(the roofline model), the kernel stream is serialized per GPU as in a
single CUDA stream, and busy time / memory-access time / memory occupancy
are accounted so the telemetry layer can reproduce the paper's GPU
utilization, GPU memory utilization, and "% time accessing GPU memory"
metrics (Figs. 9 and 10).

Specs for the paper's devices (Tesla V100 SXM2/PCIe 16 GB, Tesla P100) are
provided as constants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..sim import Container, CounterMonitor, Environment, Resource
from ..fabric.link import GB, GIB
from ..fabric.topology import Topology

__all__ = ["GPU", "GPUSpec", "Precision", "V100_SXM2_16GB", "V100_PCIE_16GB",
           "P100_PCIE_16GB"]

#: One teraFLOP/s.
TFLOPS = 1e12


class Precision(str, Enum):
    """Numeric precision of a kernel or training run."""

    FP32 = "fp32"
    FP16 = "fp16"      # tensor-core mixed precision

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GPUSpec:
    """Static characteristics of a GPU model.

    ``fp32_flops``/``fp16_flops`` are *peak* rates; sustained throughput is
    peak times the per-kernel ``efficiency`` passed to :meth:`GPU.compute`
    (conv nets and transformers achieve different fractions of peak).
    """

    name: str
    architecture: str
    memory_bytes: float
    memory_bandwidth: float       # bytes/s (HBM2)
    fp32_flops: float             # peak FLOP/s
    fp16_flops: float             # peak FLOP/s on tensor cores
    sm_count: int
    nvlink_ports: int             # 0 for PCIe-only cards
    max_power_w: float = 300.0

    def peak_flops(self, precision: Precision) -> float:
        if precision is Precision.FP16:
            return self.fp16_flops
        return self.fp32_flops


V100_SXM2_16GB = GPUSpec(
    name="Tesla V100-SXM2-16GB",
    architecture="Volta",
    memory_bytes=16 * GIB,
    memory_bandwidth=900 * GB,
    fp32_flops=15.7 * TFLOPS,
    fp16_flops=125.0 * TFLOPS,
    sm_count=80,
    nvlink_ports=6,
    max_power_w=300.0,
)

#: The Falcon-installed V100 PCIe cards.  Nominally the PCIe bin clocks
#: ~10% below SXM2, but the paper's vision results (<5% total overhead on
#: compute-bound ResNet) imply GPU-compute parity between the local and
#: Falcon pools — the study isolates the *interconnect*, so we model the
#: cards at SXM2-equivalent sustained rates and attribute all
#: configuration differences to the fabric.
V100_PCIE_16GB = GPUSpec(
    name="Tesla V100-PCIE-16GB",
    architecture="Volta",
    memory_bytes=16 * GIB,
    memory_bandwidth=900 * GB,
    fp32_flops=15.7 * TFLOPS,
    fp16_flops=125.0 * TFLOPS,
    sm_count=80,
    nvlink_ports=0,
    max_power_w=250.0,
)

P100_PCIE_16GB = GPUSpec(
    name="Tesla P100-PCIE-16GB",
    architecture="Pascal",
    memory_bytes=16 * GIB,
    memory_bandwidth=732 * GB,
    fp32_flops=9.3 * TFLOPS,
    fp16_flops=18.7 * TFLOPS,  # no tensor cores: 2x fp32 packed math
    sm_count=56,
    nvlink_ports=0,
    max_power_w=250.0,
)


_gpu_uids = itertools.count()


class GPU:
    """A simulated GPU registered as a topology node.

    Parameters
    ----------
    env, topology:
        Simulation environment and the fabric the GPU lives on.
    name:
        Unique node name, e.g. ``"host0/gpu3"`` or ``"falcon0/gpu1"``.
    spec:
        Hardware characteristics.
    """

    def __init__(self, env: Environment, topology: Topology, name: str,
                 spec: GPUSpec = V100_SXM2_16GB):
        self.env = env
        self.topology = topology
        self.name = name
        self.spec = spec
        self.uid = next(_gpu_uids)
        topology.add_node(name, kind="gpu", transit=False)
        #: Free-memory accounting (bytes allocated via alloc/free).
        self.memory = Container(env, capacity=spec.memory_bytes)
        #: Serialized kernel stream.
        self.stream = Resource(env, capacity=1)
        #: Accumulated busy seconds (kernel execution time).
        self.busy = CounterMonitor(f"{name}:busy", unit="s")
        #: Accumulated seconds spent limited by HBM2 bandwidth.
        self.mem_busy = CounterMonitor(f"{name}:mem_busy", unit="s")
        #: Completed kernel count.
        self.kernels_launched = 0

    # -- memory ------------------------------------------------------------
    @property
    def memory_used(self) -> float:
        return self.memory.level

    @property
    def memory_utilization(self) -> float:
        """Fraction of device memory currently allocated."""
        return self.memory.level / self.spec.memory_bytes

    def alloc(self, nbytes: float):
        """Reserve device memory (blocks if exhausted); yields an event."""
        if nbytes > self.spec.memory_bytes:
            raise MemoryError(
                f"{self.name}: allocation of {nbytes / GIB:.2f} GiB exceeds "
                f"device capacity {self.spec.memory_bytes / GIB:.2f} GiB")
        return self.memory.put(nbytes)

    def free(self, nbytes: float):
        """Release device memory; yields an event."""
        return self.memory.get(nbytes)

    # -- compute -------------------------------------------------------------
    def kernel_time(self, flops: float, bytes_touched: float = 0.0,
                    precision: Precision = Precision.FP32,
                    efficiency: float = 0.5) -> float:
        """Roofline execution time of one kernel, seconds."""
        if flops < 0 or bytes_touched < 0:
            raise ValueError("flops and bytes_touched must be >= 0")
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        compute_time = flops / (self.spec.peak_flops(precision) * efficiency)
        memory_time = bytes_touched / self.spec.memory_bandwidth
        return max(compute_time, memory_time)

    def compute(self, flops: float, bytes_touched: float = 0.0,
                precision: Precision = Precision.FP32,
                efficiency: float = 0.5):
        """Run one kernel on the GPU's stream; returns a process event.

        Busy time and memory-access time are accounted at completion,
        which is accurate for the seconds-scale sampling windows used by
        the telemetry layer (kernels are sub-millisecond to millisecond).
        """
        duration = self.kernel_time(flops, bytes_touched, precision,
                                    efficiency)
        memory_time = min(duration,
                          bytes_touched / self.spec.memory_bandwidth)
        return self.env.process(self._run_kernel(duration, memory_time))

    def _run_kernel(self, duration: float, memory_time: float):
        with self.stream.request() as req:
            yield req
            # Anchor a zero increment at kernel start so windowed queries
            # see the busy time spread linearly across the kernel's span
            # (a telemetry sample mid-kernel reads partial occupancy, as a
            # real sampling profiler would).
            self.busy.add(self.env.now, 0.0)
            self.mem_busy.add(self.env.now, 0.0)
            yield self.env.timeout(duration)
            now = self.env.now
            self.busy.add(now, duration)
            self.mem_busy.add(now, memory_time)
            self.kernels_launched += 1
        return duration

    def busy_fraction(self, t0: float, t1: float) -> float:
        """Mean utilization (busy seconds per second) over [t0, t1]."""
        if t1 <= t0:
            return 0.0
        return min(1.0, self.busy.total_between(t0, t1) / (t1 - t0))

    def mem_access_fraction(self, t0: float, t1: float) -> float:
        """Mean fraction of time spent memory-bound over [t0, t1]."""
        if t1 <= t0:
            return 0.0
        return min(1.0, self.mem_busy.total_between(t0, t1) / (t1 - t0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GPU {self.name} ({self.spec.name})>"
