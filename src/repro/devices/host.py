"""Host server model (Supermicro SYS-4029GP-TVRT preset).

A host contributes to the fabric:

- a PCIe root complex node (``{name}/rc``) — the point the Falcon's CDFP
  host adapters cable into,
- a DRAM node (``{name}/dram``) behind an aggregate DDR4 link, so every
  host-device DMA shares the memory subsystem's bandwidth,
- four PLX PCIe switches fronting pairs of local V100 SXM2 GPUs (the
  SYS-4029GP-TVRT's PCIe tree), with the GPUs additionally wired into the
  NVLink hybrid cube mesh (paper Fig. 7),
- dual 10 GbE NICs and a SATA-class scratch volume,
- optionally, a locally attached NVMe drive (the ``localNVMe``
  configuration).

System-memory occupancy is tracked via a container so the telemetry layer
can reproduce the paper's Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Container, Environment
from ..fabric.link import (
    DDR4_CHANNEL,
    GB,
    GIB,
    LinkSpec,
    PCIE_GEN3_X16,
    Protocol,
    SATA3,
    US,
)
from ..fabric.nvlink import build_hybrid_cube_mesh
from ..fabric.pcie import PCIeSwitch, RootComplex
from ..fabric.topology import Topology
from .cpu import CPU, CPUSpec, XEON_GOLD_6148_DUAL
from .gpu import GPU, GPUSpec, V100_SXM2_16GB
from .nic import NIC, NICSpec, X540_AT2
from .storage import LOCAL_SCRATCH, SSDPEDKX040T7, StorageDevice, StorageSpec

__all__ = ["HostServer", "HostSpec", "SUPERMICRO_4029GP_TVRT",
           "PCIE_GEN3_X4_NVME"]

#: NVMe U.2/HHHL attachment: PCIe 3.0 x4 tuned for long sequential DMA
#: (streamed reads see less protocol overhead than the generic x16 figure).
PCIE_GEN3_X4_NVME = LinkSpec(
    name="PCIe 3.0 x4 (NVMe)",
    protocol=Protocol.PCIE3,
    lanes=4,
    bandwidth=3.4 * GB,
    latency=0.9 * US,
)

#: Aggregate DDR4 memory link (per-socket channels combined).
DDR4_AGGREGATE = DDR4_CHANNEL.scaled(8)


@dataclass(frozen=True)
class HostSpec:
    """Bill of materials for a host server."""

    name: str
    cpu: CPUSpec = XEON_GOLD_6148_DUAL
    memory_bytes: float = 756 * GIB
    local_gpus: int = 8
    gpu_spec: GPUSpec = V100_SXM2_16GB
    nic_spec: NICSpec = X540_AT2
    nics: int = 2
    scratch_spec: StorageSpec = LOCAL_SCRATCH
    #: GPUs per PLX switch in the PCIe tree.
    gpus_per_switch: int = 2


SUPERMICRO_4029GP_TVRT = HostSpec(name="SuperServer SYS-4029GP-TVRT")


class HostServer:
    """A composable-system host: CPU, DRAM, local GPUs, NICs, storage."""

    def __init__(self, env: Environment, topology: Topology, name: str,
                 spec: HostSpec = SUPERMICRO_4029GP_TVRT):
        self.env = env
        self.topology = topology
        self.name = name
        self.spec = spec

        self.rc = RootComplex(topology, f"{name}/rc")
        self.dram_node = f"{name}/dram"
        topology.add_node(self.dram_node, kind="dram", transit=False)
        self.dram_link = topology.add_link(DDR4_AGGREGATE, self.rc.name,
                                           self.dram_node)

        self.cpu = CPU(env, f"{name}/cpu", spec.cpu)
        #: System-memory occupancy (bytes allocated).
        self.memory = Container(env, capacity=spec.memory_bytes)

        # Local GPU tree: PLX switches in pairs, plus the NVLink mesh.
        self.plx_switches: list[PCIeSwitch] = []
        self.gpus: list[GPU] = []
        n_switches = (spec.local_gpus + spec.gpus_per_switch - 1) \
            // spec.gpus_per_switch if spec.local_gpus else 0
        for s in range(n_switches):
            switch = PCIeSwitch(topology, f"{name}/plx{s}",
                                ports=spec.gpus_per_switch,
                                port_spec=PCIE_GEN3_X16)
            switch.connect_upstream(self.rc.name, PCIE_GEN3_X16)
            self.plx_switches.append(switch)
        for i in range(spec.local_gpus):
            gpu = GPU(env, topology, f"{name}/gpu{i}", spec.gpu_spec)
            self.plx_switches[i // spec.gpus_per_switch].attach(gpu.name)
            self.gpus.append(gpu)
        if spec.local_gpus == 8 and spec.gpu_spec.nvlink_ports >= 6:
            build_hybrid_cube_mesh(topology, [g.name for g in self.gpus])

        # NICs.
        self.nics: list[NIC] = []
        for i in range(spec.nics):
            nic = NIC(env, topology, f"{name}/nic{i}", spec.nic_spec)
            self.rc.attach(nic.name, spec.nic_spec.link_spec)
            self.nics.append(nic)

        # Baseline scratch volume ("local storage" in Table III).
        self.scratch = StorageDevice(env, topology, f"{name}/scratch",
                                     spec.scratch_spec)
        self.rc.attach(self.scratch.name, SATA3)

        #: Optional locally attached NVMe (installed via attach_nvme).
        self.nvme: Optional[StorageDevice] = None

    # -- identity ------------------------------------------------------------
    @property
    def rc_node(self) -> str:
        return self.rc.name

    @property
    def gpu_names(self) -> list[str]:
        return [g.name for g in self.gpus]

    def gpu(self, index: int) -> GPU:
        return self.gpus[index]

    # -- memory ---------------------------------------------------------------
    @property
    def memory_used(self) -> float:
        return self.memory.level

    @property
    def memory_utilization(self) -> float:
        return self.memory.level / self.spec.memory_bytes

    def alloc_memory(self, nbytes: float):
        """Reserve host DRAM; yields an event (blocks when exhausted)."""
        return self.memory.put(nbytes)

    def free_memory(self, nbytes: float):
        return self.memory.get(nbytes)

    # -- storage ---------------------------------------------------------------
    def attach_nvme(self, spec: StorageSpec = SSDPEDKX040T7,
                    name: Optional[str] = None) -> StorageDevice:
        """Install a local NVMe drive below the root complex."""
        if self.nvme is not None:
            raise ValueError(f"{self.name} already has a local NVMe")
        drive = StorageDevice(self.env, self.topology,
                              name or f"{self.name}/nvme", spec)
        self.rc.attach(drive.name, PCIE_GEN3_X4_NVME)
        self.nvme = drive
        return drive

    def detach_nvme(self) -> None:
        if self.nvme is None:
            raise ValueError(f"{self.name} has no local NVMe")
        self.rc.detach(self.nvme.name)
        self.topology.remove_node(self.nvme.media_node)
        self.topology.remove_node(self.nvme.name)
        self.nvme = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<HostServer {self.name} gpus={len(self.gpus)} "
                f"mem={self.spec.memory_bytes / GIB:.0f}GiB>")
