"""Elastic training: mid-run recomposition at invariant batch semantics.

:class:`ElasticTrainingJob` extends the fault-tolerant runtime with
*controlled* resizes: grow onto freed chassis GPUs (operator- or
autoscaler-initiated) and shrink away from preempted ones, both without
losing completed work.  The mechanism reuses the runtime's existing
teardown machinery as a **safe-point protocol**:

1. A resize request (:meth:`ElasticTrainingJob.request_resize`, or an
   :class:`~repro.elastic.autoscaler.AutoscalePolicy` verdict) is only
   *latched*; nothing observable happens while a step is in flight.
2. The job's step listener — which fires exactly at optimizer-step
   boundaries, after the step's collectives drained and before any
   checkpoint for that boundary starts — converts the latched request
   into a :class:`ResizeSignal` delivered through the job's failure
   event.  The orderly-teardown path quiesces every rank, so a resize
   can never interrupt an in-flight collective: deferral to the
   boundary is structural, not cooperative.
3. Recovery routes the signal to :meth:`_grow` / :meth:`_shrink`, which
   claim or release devices through the management inventory and call
   the shared :meth:`~repro.training.resilience.FaultTolerantTrainingJob.
   _recompose` path — the new membership's state-redistribution plan is
   spliced in front of the resumed job's first step.
4. The next attempt recompiles the step plan at the new world size with
   :class:`~repro.elastic.virtual.VirtualBatchSpec` overrides, so the
   effective global batch is identical before and after the resize.

Because the interrupted step had fully committed (the signal fires
*after* the optimizer step), resize resumes from the last **completed**
step, not the last checkpoint — the lost-work advantage over
checkpoint-restart that the elasticity study quantifies.  Plain faults
on replicated (non-sharded) strategies get the same treatment when at
least one ring member survives: some rank still holds the full model
state, so rolling back to a checkpoint would discard work the ring can
simply redistribute.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..management.inventory import InventoryError
from ..training.loop import TrainingInterrupted
from ..training.resilience import FaultTolerantTrainingJob
from .autoscaler import AutoscalePolicy
from .virtual import VirtualBatchSpec

__all__ = ["ResizeSignal", "ElasticTrainingJob"]

_RESIZE_KINDS = ("grow", "shrink")


class ResizeSignal(Exception):
    """A controlled resize request, delivered at a step boundary.

    Travels the same failure-event path as a fabric fault (so the
    teardown/recovery machinery is shared), but recovery treats it as a
    planned event: no checkpoint rollback, no restart-budget charge.
    """

    def __init__(self, kind: str, targets: Sequence[str] = (),
                 reason: str = ""):
        if kind not in _RESIZE_KINDS:
            raise ValueError(
                f"resize kind must be one of {_RESIZE_KINDS}, "
                f"got {kind!r}")
        self.kind = kind
        #: Device node names: spares to claim (grow) / members to drop
        #: (shrink).  Empty grow targets mean "any available spares".
        self.targets = tuple(targets)
        self.reason = reason
        label = f"{kind} {list(self.targets)}" if self.targets else kind
        super().__init__(
            f"resize requested: {label}" + (f" ({reason})" if reason
                                            else ""))


class ElasticTrainingJob(FaultTolerantTrainingJob):
    """Fault-tolerant training that also resizes on purpose."""

    def __init__(self, *args, virtual_batch: VirtualBatchSpec,
                 autoscaler: Optional[AutoscalePolicy] = None, **kwargs):
        super().__init__(*args, **kwargs)
        world = len(self.gpus)
        if virtual_batch.virtual_nodes % world != 0:
            raise ValueError(
                f"initial world {world} does not divide virtual_nodes "
                f"{virtual_batch.virtual_nodes}")
        if virtual_batch.global_batch \
                != self.config.resolved_global_batch():
            raise ValueError(
                f"virtual-batch global batch {virtual_batch.global_batch}"
                f" != config global batch "
                f"{self.config.resolved_global_batch()}")
        self.virtual_batch = virtual_batch
        self.autoscaler = autoscaler
        # Realize the spec at the starting world so even a fault-free
        # run uses virtual-node accumulation semantics.
        self.config = replace(self.config,
                              **virtual_batch.config_overrides(world))
        self._requested: Optional[ResizeSignal] = None
        #: (global step, world size, effective global batch) per step —
        #: the batch column is the invariant the acceptance test checks.
        self.step_ledger: list[tuple[int, int, int]] = []
        self._steps_before_attempt = 0
        self.on_attempt.append(self._install_elastic_hooks)

    # -- public control surface -------------------------------------------
    @property
    def effective_global_batch(self) -> int:
        """The batch every optimizer step trains, at any world size."""
        return self.virtual_batch.global_batch

    def request_resize(self, kind: str, targets: Sequence[str] = (),
                       reason: str = "") -> None:
        """Latch a resize; it takes effect at the next step boundary.

        Safe to call at any simulation time (e.g. from an operator
        process reacting to a preemption notice) — an in-flight step is
        never interrupted.
        """
        self._requested = ResizeSignal(kind, targets, reason)

    # -- safe-point protocol ----------------------------------------------
    def _install_elastic_hooks(self, job, attempt: int) -> None:
        def on_step(steps_completed: int, now: float) -> None:
            gstep = self._steps_before_attempt + steps_completed
            self.step_ledger.append(
                (gstep, len(self.gpus), job.global_batch))
            if steps_completed >= job.config.sim_steps:
                return  # attempt is finishing; nothing left to resize
            signal = self._poll_resize(now, gstep)
            if signal is not None:
                job._report_failure(signal)
        job.add_step_listener(on_step)

    def _poll_resize(self, now: float,
                     gstep: int) -> Optional[ResizeSignal]:
        if self._requested is not None:
            signal, self._requested = self._requested, None
            return signal
        if self.autoscaler is None:
            return None
        spares = len(self.inventory.spare_gpus()) \
            if self.inventory is not None else 0
        verdict = self.autoscaler.observe(now, gstep, len(self.gpus),
                                          spares)
        if verdict == "grow" \
                and len(self.gpus) < self.virtual_batch.virtual_nodes:
            return ResizeSignal(
                "grow", reason=f"autoscaler:{self.autoscaler.name}")
        return None

    # -- hook overrides ----------------------------------------------------
    def _attempt_config(self, remaining: int):
        self._steps_before_attempt = self.config.sim_steps - remaining
        return replace(
            self.config, sim_steps=remaining,
            **self.virtual_batch.config_overrides(len(self.gpus)))

    def _is_resize(self, exc: TrainingInterrupted) -> bool:
        return isinstance(exc.cause, ResizeSignal)

    def _durable_steps(self, exc: TrainingInterrupted) -> int:
        if isinstance(exc.cause, ResizeSignal):
            # The signal fires after the optimizer step committed: every
            # completed step is durable, no rollback.
            return exc.steps_completed
        if not self.config.strategy.sharded \
                and any(self._reachable(g) for g in self.gpus):
            # Replicated state: a surviving rank holds the full model,
            # so a fault costs the in-flight step, not a checkpoint
            # rollback — recomposition redistributes live state.
            self._record("live_state_recovered",
                         durable_steps=exc.steps_completed)
            return exc.steps_completed
        return super()._durable_steps(exc)

    def _admit_ring(self, gpus: list) -> tuple[list, list]:
        world = self.virtual_batch.feasible_world(len(gpus))
        return list(gpus[:world]), list(gpus[world:])

    def _release_parked(self, parked: list) -> None:
        for gpu in parked:
            if self.inventory is not None \
                    and self.inventory.manages(gpu.name):
                self.inventory.detach(gpu.name)  # idempotent
            self._record("gpu_parked", device=gpu.name,
                         reason="virtual-node divisibility")

    # -- resize recovery ---------------------------------------------------
    def _recover(self, cause: Optional[BaseException] = None) -> bool:
        if isinstance(cause, ResizeSignal):
            self._budget_note = None
            if cause.kind == "grow":
                return self._grow(cause)
            return self._shrink(cause)
        return super()._recover(cause)

    def _grow(self, signal: ResizeSignal) -> bool:
        targets = list(signal.targets)
        if not targets and self.inventory is not None:
            targets = [g.name for g in self.inventory.spare_gpus()]
        world = len(self.gpus)
        goal = self.virtual_batch.feasible_world(world + len(targets))
        if goal <= world:
            self._record("grow_abandoned",
                         reason="no feasible larger world",
                         world=world, candidates=targets)
            return True
        claimed = []
        for name in targets:
            if len(claimed) >= goal - world:
                break
            gpu = self._claim_spare(name)
            if gpu is not None:
                claimed.append(gpu)
        feasible = self.virtual_batch.feasible_world(world + len(claimed))
        if feasible <= world:
            for gpu in claimed:  # give back what we cannot use
                self.inventory.detach(gpu.name)
            self._record("grow_abandoned", reason="inventory contended",
                         world=world, candidates=targets)
            return True
        for gpu in claimed[feasible - world:]:
            self.inventory.detach(gpu.name)
        return self._recompose(
            list(self.gpus) + claimed[:feasible - world], kind="grow",
            detected_at=self._detected_at)

    def _claim_spare(self, name: str):
        """Attach one spare, backing off through contention; None on
        failure (the grow proceeds with whatever it did claim)."""
        if self.inventory is None or not self.inventory.manages(name):
            return None
        res = self.resilience
        backoff = res.backoff_initial
        for poll in range(max(1, res.reattach_attempts)):
            try:
                self.inventory.attach(name, self.host.name)
            except InventoryError as exc:
                self._record("inventory_contended", device=name,
                             poll=poll + 1, reason=str(exc))
                self._backoff_sleep(backoff)
                backoff = min(backoff * res.backoff_factor,
                              res.backoff_max)
                continue
            gpu = self.inventory.gpu(name)
            if not self._reachable(gpu):
                self.inventory.detach(name)
                self._record("hotplug_unavailable", device=name,
                             reason="spare unreachable")
                return None
            return gpu
        return None

    def _shrink(self, signal: ResizeSignal) -> bool:
        victims = set(signal.targets)
        survivors = [g for g in self.gpus if g.name not in victims]
        if not survivors:
            return self._give_up(
                "shrink would empty the ring",
                targets=sorted(victims))
        for gpu in self.gpus:
            if gpu.name in victims and self.inventory is not None \
                    and self.inventory.manages(gpu.name):
                self.inventory.detach(gpu.name)  # back to the spare pool
        return self._recompose(survivors, kind="shrink",
                               detected_at=self._detected_at)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ElasticTrainingJob world={len(self.gpus)} "
                f"V={self.virtual_batch.virtual_nodes} "
                f"G={self.virtual_batch.global_batch}>")
