"""Virtual-node batch semantics: world-size-invariant training batches.

Elastic training changes the ring size mid-run, but the *optimization
problem* must not change with it: learning-rate schedules, convergence
behaviour and epoch accounting are all calibrated to one effective
global batch.  The standard trick (VirtualFlow, Pollux-style elastic
trainers) is to fix a number of **virtual nodes** ``V`` and map them
onto however many physical GPUs are currently in the ring: at world size
``W`` each GPU hosts ``V / W`` virtual nodes and runs that many more
gradient-accumulation micro-steps, so

* the effective global batch ``G`` is invariant across resizes,
* the micro-batch ``G / (V * a)`` (the unit that determines activation
  memory and kernel shapes) is invariant too — recompiled plans reuse
  the same kernels at every world size,
* only the accumulation depth ``a * V / W`` varies.

The mapping is exact only when ``W`` divides ``V``, so elastic resizes
snap to the largest feasible world (:meth:`VirtualBatchSpec.
feasible_world`); leftover GPUs are *parked* (returned to the spare
pool) rather than admitted into a ring they would unbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VirtualBatchSpec"]


@dataclass(frozen=True)
class VirtualBatchSpec:
    """Fixed logical decomposition of one training batch.

    Parameters
    ----------
    virtual_nodes:
        Number of logical workers ``V`` the batch is cut into — an upper
        bound on the physical world size, fixed for the whole run.
    global_batch:
        Effective global batch ``G``; must be a multiple of ``V``.
    base_accumulation:
        Accumulation micro-steps per virtual node at full deployment
        (``W == V``); scales up as the ring shrinks.
    """

    virtual_nodes: int
    global_batch: int
    base_accumulation: int = 1

    def __post_init__(self):
        if self.virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}")
        if self.global_batch < 1 \
                or self.global_batch % self.virtual_nodes != 0:
            raise ValueError(
                f"global batch {self.global_batch} must be a positive "
                f"multiple of virtual_nodes {self.virtual_nodes}")
        if self.base_accumulation < 1:
            raise ValueError(
                f"base_accumulation must be >= 1, "
                f"got {self.base_accumulation}")
        if self.per_vnode_batch % self.base_accumulation != 0:
            raise ValueError(
                f"per-virtual-node batch {self.per_vnode_batch} not "
                f"divisible by accumulation {self.base_accumulation}")

    @property
    def per_vnode_batch(self) -> int:
        """Samples per virtual node per optimizer step (invariant)."""
        return self.global_batch // self.virtual_nodes

    @property
    def micro_batch(self) -> int:
        """Samples per micro-step — invariant across world sizes, so
        kernel shapes and activation memory never change on resize."""
        return self.per_vnode_batch // self.base_accumulation

    def feasible_world(self, available: int) -> int:
        """Largest world size ``<= available`` that divides ``V``.

        0 when no GPU is available.  Elastic resizes snap down to this;
        the remainder GPUs are parked.
        """
        if available < 1:
            return 0
        world = min(available, self.virtual_nodes)
        while self.virtual_nodes % world != 0:
            world -= 1
        return world

    def config_overrides(self, world: int) -> dict:
        """Training-config fields realizing this spec at ``world`` GPUs.

        Returns ``global_batch`` (constant) and ``accumulation_steps``
        (scaled so each GPU serves its ``V / world`` virtual nodes).
        """
        if world < 1 or self.virtual_nodes % world != 0:
            raise ValueError(
                f"world {world} does not divide virtual_nodes "
                f"{self.virtual_nodes}; snap with feasible_world() first")
        return {
            "global_batch": self.global_batch,
            "accumulation_steps":
                self.base_accumulation * (self.virtual_nodes // world),
        }

    @classmethod
    def for_config(cls, config, virtual_nodes: int,
                   base_accumulation: int = 1) -> "VirtualBatchSpec":
        """Spec matching a training config's resolved global batch."""
        return cls(virtual_nodes, config.resolved_global_batch(),
                   base_accumulation)
