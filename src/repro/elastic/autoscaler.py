"""Autoscaling policies: when should an elastic job claim free GPUs?

Policies observe the world at each step boundary (the elastic runtime's
safe points) and answer one question: *grow now?*  Shrinks are driven by
faults and preemptions, not policy, so the interface is deliberately
one-sided.

Two reference policies bracket the design space the elasticity study
compares:

* :class:`EagerGrowPolicy` grabs capacity the moment it appears.
  Maximum opportunism, but every grow attempt costs a teardown +
  recompose stall — when the free capacity is not actually admissible
  (it does not reach the next feasible world size, or another tenant
  wins the claim race) the stall bought nothing.
* :class:`HysteresisPolicy` requires capacity to stay free for ``hold``
  consecutive observations before acting, and enters a ``cooldown``
  refractory period after each attempt.  It forgoes some upside on
  genuinely free capacity but is robust to flapping spares and claim
  races.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AutoscalePolicy", "EagerGrowPolicy", "HysteresisPolicy"]


class AutoscalePolicy:
    """Interface: one observation per safe point, maybe a verdict."""

    name = "static"

    def observe(self, now: float, step: int, world: int,
                spare_count: int) -> Optional[str]:
        """Return ``"grow"`` to request a resize, or None to hold."""
        return None


class EagerGrowPolicy(AutoscalePolicy):
    """Grow whenever any spare is visible."""

    name = "eager"

    def observe(self, now: float, step: int, world: int,
                spare_count: int) -> Optional[str]:
        return "grow" if spare_count > 0 else None


class HysteresisPolicy(AutoscalePolicy):
    """Grow only after sustained free capacity; cool down between tries.

    ``hold`` consecutive observations with at least one spare are
    required before a grow fires; after firing (successful or not) the
    policy ignores ``cooldown`` observations so a single inadmissible
    spare cannot thrash the job with back-to-back teardowns.
    """

    name = "hysteresis"

    def __init__(self, hold: int = 3, cooldown: int = 4):
        if hold < 1 or cooldown < 0:
            raise ValueError("hold must be >= 1 and cooldown >= 0")
        self.hold = hold
        self.cooldown = cooldown
        self._streak = 0
        self._refractory = 0

    def observe(self, now: float, step: int, world: int,
                spare_count: int) -> Optional[str]:
        if self._refractory > 0:
            self._refractory -= 1
            self._streak = 0
            return None
        if spare_count <= 0:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak >= self.hold:
            self._streak = 0
            self._refractory = self.cooldown
            return "grow"
        return None
