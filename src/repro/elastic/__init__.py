"""Elastic training: mid-run recomposition on the composable system.

The composable system's hot-plug capability is not just a repair lever —
it lets a *running* job change size: grow onto GPUs another tenant
freed, shrink away from a preempted drawer, and keep training through
either.  This package supplies the three pieces the fault-tolerant
runtime needs to do that:

* :class:`~repro.elastic.virtual.VirtualBatchSpec` — virtual-node batch
  semantics keeping the effective global batch (and micro-batch shape)
  invariant across world sizes.
* :class:`~repro.elastic.job.ElasticTrainingJob` — the runtime subclass
  implementing the safe-point resize protocol (requests latch, step
  boundaries commit) over the shared recomposition path.
* :mod:`~repro.elastic.autoscaler` — grow policies (eager vs.
  hysteresis) the elasticity study compares.
"""

from .autoscaler import AutoscalePolicy, EagerGrowPolicy, HysteresisPolicy
from .job import ElasticTrainingJob, ResizeSignal
from .virtual import VirtualBatchSpec

__all__ = [
    "AutoscalePolicy",
    "EagerGrowPolicy",
    "HysteresisPolicy",
    "ElasticTrainingJob",
    "ResizeSignal",
    "VirtualBatchSpec",
]
