"""Traced training runs: span capture, attribution, and the Fig. 11 split.

:func:`traced_run` executes one short benchmark job with a fully wired
:class:`~repro.telemetry.Tracer` — training-loop phases, collective
lanes, fabric transfers, storage I/O, and the management/chaos event log
all land on one timeline — then reduces the spans to a per-step
compute/comm/stall/checkpoint attribution table.

:func:`overhead_split` runs the same benchmark on a local baseline and a
composed configuration and decomposes the *slowdown* per category: the
paper's Fig. 11 measured overhead by aggregate subtraction (falcon total
minus local total); here each extra second is attributed to the span
category it actually appeared in.

The attribution reconciles with the runner's own bookkeeping *by
construction*: step spans open and close at the exact instants
``TrainingJob`` samples ``_step_times``, and checkpoint spans match the
``_ckpt_times`` window, so ``reconstructed_total`` equals
``TrainingResult.total_time`` to float precision (the acceptance bound
is 1%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core import ComposableSystem
from ..telemetry import Tracer, Track
from ..telemetry.export import StepAttribution, step_attribution
from ..telemetry.export import checkpoint_spans as _checkpoint_spans
from ..training.loop import WARMUP_STEPS
from .runner import DEFAULT_SIM_STEPS, ExperimentRecord, run_configuration

__all__ = ["TracedRun", "OverheadSplit", "traced_run", "overhead_split"]

#: Attribution categories reported per step (order matters for tables).
CATEGORIES = ("compute", "comm", "stall", "checkpoint", "data")


@dataclass
class TracedRun:
    """One instrumented run: the record, the tracer, and the attribution."""

    record: ExperimentRecord
    tracer: Tracer
    system: ComposableSystem
    #: Rank 0's training track (host process, GPU thread).
    track: Track
    #: Per-step decomposition, warmup included (see ``steady_steps``).
    steps: list[StepAttribution]
    #: Seconds per checkpoint, from checkpoint spans.
    checkpoint_seconds: list[float]

    @property
    def steady_steps(self) -> list[StepAttribution]:
        """Steps entering the statistics (warmup excluded, as the runner
        does)."""
        steady = self.steps[WARMUP_STEPS:]
        return steady or list(self.steps)

    def mean_step_split(self) -> dict[str, float]:
        """Mean seconds per category over steady-state steps."""
        steady = self.steady_steps
        out = {}
        for category in CATEGORIES:
            out[category] = float(np.mean(
                [getattr(s, category) for s in steady])) if steady else 0.0
        return out

    @property
    def mean_step_seconds(self) -> float:
        steady = self.steady_steps
        return float(np.mean([s.wall for s in steady])) if steady else 0.0

    @property
    def mean_checkpoint_seconds(self) -> float:
        return float(np.mean(self.checkpoint_seconds)) \
            if self.checkpoint_seconds else 0.0

    @property
    def reconstructed_total(self) -> float:
        """Full-run wall time rebuilt from spans alone.

        Mirrors ``TrainingResult.total_time``'s extrapolation:
        ``epochs * (steps/epoch * step + ckpts/epoch * ckpt) + staging``,
        but with step and checkpoint means taken from span wall times
        instead of the runner's private timers.
        """
        result = self.record.result
        epoch = (result.steps_per_epoch * self.mean_step_seconds
                 + result.checkpoints_per_epoch
                 * self.mean_checkpoint_seconds)
        return result.epochs * epoch + result.staging_overhead

    @property
    def reconciliation_error(self) -> float:
        """|span-reconstructed - reported| / reported total time."""
        reported = self.record.total_time
        if reported <= 0:
            return 0.0
        return abs(self.reconstructed_total - reported) / reported

    def attribution_rows(self) -> list[tuple]:
        """(step, wall ms, per-category ms...) rows for a text table."""
        rows = []
        for s in self.steps:
            rows.append((s.step, round(s.wall * 1e3, 3),
                         *(round(getattr(s, c) * 1e3, 3)
                           for c in CATEGORIES)))
        return rows


@dataclass
class OverheadSplit:
    """Fig. 11 from spans: where the composed configuration's extra
    step time comes from, category by category."""

    benchmark: str
    baseline: TracedRun
    composed: TracedRun

    @property
    def overhead_pct(self) -> float:
        """Composed total-time overhead vs baseline, percent (Fig. 11)."""
        return 100.0 * (self.composed.record.total_time
                        / self.baseline.record.total_time - 1.0)

    def split_rows(self) -> list[tuple]:
        """(category, baseline ms, composed ms, delta ms, share %) rows.

        ``share`` apportions the composed configuration's extra step time
        across categories; positive deltas sum to ~the step-time gap.
        """
        base = self.baseline.mean_step_split()
        comp = self.composed.mean_step_split()
        gap = sum(max(0.0, comp[c] - base[c]) for c in CATEGORIES)
        rows = []
        for category in CATEGORIES:
            delta = comp[category] - base[category]
            share = 100.0 * max(0.0, delta) / gap if gap > 0 else 0.0
            rows.append((category, round(base[category] * 1e3, 3),
                         round(comp[category] * 1e3, 3),
                         round(delta * 1e3, 3), round(share, 1)))
        return rows


def traced_run(benchmark: str, configuration: str = "localGPUs",
               sim_steps: int = DEFAULT_SIM_STEPS,
               sim_checkpoints: int = 1,
               system: Optional[ComposableSystem] = None,
               **runner_kwargs) -> TracedRun:
    """Run one configuration with a fully wired tracer.

    The tracer is attached to the fabric topology (per-transfer spans),
    the management event log (chaos/management instants), and the
    training job (step/phase/collective spans) before the run starts.
    """
    system = system or ComposableSystem()
    tracer = Tracer(system.env)
    system.topology.tracer = tracer
    tracer.attach_event_log(system.mcs.log)
    record = run_configuration(
        benchmark, configuration, sim_steps=sim_steps,
        sim_checkpoints=sim_checkpoints, system=system, tracer=tracer,
        **runner_kwargs)
    tracer.finish()
    system.topology.tracer = None  # stop tracing any follow-on runs
    result = record.result
    track = Track(system.host.name, result.gpus[0].name)
    steps = step_attribution(tracer, track)
    ckpts = [s.duration for s in _checkpoint_spans(tracer, track)]
    return TracedRun(record=record, tracer=tracer, system=system,
                     track=track, steps=steps, checkpoint_seconds=ckpts)


def overhead_split(benchmark: str, composed: str = "falconGPUs",
                   baseline: str = "localGPUs",
                   sim_steps: int = DEFAULT_SIM_STEPS,
                   sim_checkpoints: int = 1) -> OverheadSplit:
    """Trace a benchmark on baseline and composed configurations and
    attribute the slowdown per span category (Fig. 11 from spans)."""
    base = traced_run(benchmark, baseline, sim_steps=sim_steps,
                      sim_checkpoints=sim_checkpoints)
    comp = traced_run(benchmark, composed, sim_steps=sim_steps,
                      sim_checkpoints=sim_checkpoints)
    return OverheadSplit(benchmark=benchmark, baseline=base,
                         composed=comp)
