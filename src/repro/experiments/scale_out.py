"""Scale-out comparison: composable fabric vs Ethernet (paper §IV).

The related-work section's refrain — "the key enabler is the network" —
made concrete: an 8-GPU gradient allreduce placed three ways:

- **local**: one host's NVLink hybrid cube mesh,
- **falcon**: eight Falcon-attached GPUs over the PCIe fabric,
- **ethernet**: two hosts with four local GPUs each, ring crossing a
  10 GbE link twice per phase — the classic scale-out topology the
  composable chassis is an alternative to.

The result quantifies *why* composability is attractive for medium-scale
DL: the PCIe fabric sits between NVLink and the commodity network, and
even the paper's 2x BERT-large overhead beats the Ethernet cliff by an
order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ComposableSystem
from ..devices import HostServer, SUPERMICRO_4029GP_TVRT
from ..fabric import ETH_10G, RING_ORDER, Topology
from ..sim import Environment
from ..training import Communicator
from ..workloads import bert_large

__all__ = ["ScaleOutResult", "allreduce_scale_out_study"]


@dataclass(frozen=True)
class ScaleOutResult:
    """Allreduce completion times (s) per placement."""

    nbytes: float
    local_nvlink: float
    falcon_pcie: float
    ethernet_2hosts: float

    @property
    def falcon_vs_local(self) -> float:
        return self.falcon_pcie / self.local_nvlink

    @property
    def ethernet_vs_falcon(self) -> float:
        return self.ethernet_2hosts / self.falcon_pcie


def _time_allreduce(env: Environment, comm: Communicator,
                    nbytes: float) -> float:
    t0 = env.now
    events = [comm.allreduce(rank, nbytes)
              for rank in range(comm.world_size)]
    env.run(until=events[0])
    return env.now - t0


def _two_host_ethernet_ring() -> tuple[Environment, Communicator]:
    """Two hosts, four NVLink-chained GPUs each, 10 GbE between them."""
    env = Environment()
    topo = Topology(env)
    hosts = [HostServer(env, topo, f"host{i}", SUPERMICRO_4029GP_TVRT)
             for i in range(2)]
    topo.add_node("lan", kind="eth-switch", transit=True)
    for host in hosts:
        # Abstract the bonded NIC pair into the rc<->lan links.
        topo.add_link(ETH_10G, host.rc_node, "lan")
    # Ring: an NVLink chain on each host, crossing the LAN twice.
    quad = [RING_ORDER[i] for i in range(4)]   # NVLink-chained prefix
    ranks = [hosts[0].gpus[i].name for i in quad] \
        + [hosts[1].gpus[i].name for i in quad]
    return env, Communicator(env, topo, ranks)


def allreduce_scale_out_study(nbytes: float = 670e6) -> ScaleOutResult:
    """Time one gradient-sized allreduce on the three placements.

    Default ``nbytes`` is BERT-large's FP16 gradient volume.
    """
    local_system = ComposableSystem()
    env = local_system.env
    local_ring = [local_system.host.gpus[i].name for i in RING_ORDER]
    local = _time_allreduce(
        env, Communicator(env, local_system.topology, local_ring), nbytes)

    falcon_system = ComposableSystem()
    env = falcon_system.env
    falcon = _time_allreduce(
        env, Communicator(env, falcon_system.topology,
                          [g.name for g in falcon_system.falcon_gpus]),
        nbytes)

    env, comm = _two_host_ethernet_ring()
    ethernet = _time_allreduce(env, comm, nbytes)

    return ScaleOutResult(
        nbytes=nbytes,
        local_nvlink=local,
        falcon_pcie=falcon,
        ethernet_2hosts=ethernet,
    )
