"""Experiment runner: one fully-instrumented training run per record.

A single :func:`run_configuration` call builds a fresh
:class:`~repro.core.ComposableSystem`, trains a benchmark on one Table III
configuration, and extracts everything the paper's evaluation reports for
that cell — training-time estimates (Figs. 11/15), GPU/CPU/memory
telemetry (Figs. 10/13/14), and Falcon PCIe slot traffic (Fig. 12) — so a
sweep over (benchmark x configuration) regenerates several figures from
the same runs, exactly as the paper's single instrumented runs did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import ComposableSystem
from ..fabric.link import GB
from ..training import (
    AMP_POLICY,
    DistributedDataParallel,
    ParallelStrategy,
    PrecisionPolicy,
    TrainingResult,
)

__all__ = ["ExperimentRecord", "run_configuration"]

#: Default simulated optimizer steps per run (steady-state statistics).
DEFAULT_SIM_STEPS = 10


def _windowed_mean(metric_fn, windows: list[tuple[float, float]]) -> float:
    """Span-weighted mean of a collector metric over steady windows.

    NaN windows (e.g. spans shorter than the sampling interval) are
    skipped so a single empty window does not poison the mean.
    """
    import math
    total = 0.0
    weight = 0.0
    for t0, t1 in windows:
        value = metric_fn(t0, t1)
        if not math.isnan(value) and t1 > t0:
            total += value * (t1 - t0)
            weight += t1 - t0
    return total / weight if weight else float("nan")


@dataclass
class ExperimentRecord:
    """Everything the paper reports for one (benchmark, configuration)."""

    benchmark: str
    configuration: str
    strategy: str
    policy: str
    global_batch: int
    #: Training-time estimates.
    step_time: float
    epoch_time: float
    total_time: float
    throughput: float
    checkpoint_time: float
    staging_overhead: float
    #: Telemetry means over the measurement window (percent).
    gpu_utilization: float
    gpu_memory: float
    gpu_mem_access: float
    cpu_utilization: float
    host_memory: float
    #: Falcon GPU-slot traffic over the window (GB/s, ingress+egress
    #: summed across falcon-attached GPUs) — the paper's Fig. 12 metric.
    falcon_gpu_traffic_gbs: float
    result: TrainingResult = field(repr=False)

    def pct_change_vs(self, baseline: "ExperimentRecord") -> float:
        """Percentage change of total training time vs a baseline run."""
        return 100.0 * (self.total_time / baseline.total_time - 1.0)


def run_configuration(benchmark: str, configuration: str,
                      strategy: Optional[ParallelStrategy] = None,
                      policy: PrecisionPolicy = AMP_POLICY,
                      global_batch: Optional[int] = None,
                      sim_steps: int = DEFAULT_SIM_STEPS,
                      sim_checkpoints: int = 1,
                      system: Optional[ComposableSystem] = None,
                      tracer=None,
                      cache=None,
                      **train_kwargs) -> ExperimentRecord:
    """Run one benchmark on one configuration and collect all metrics.

    Extra keyword arguments (e.g. ``plan_passes``, ``accumulation_steps``)
    are forwarded verbatim into the :class:`TrainingConfig`.

    ``cache`` (a :class:`~repro.experiments.parallel.ResultCache`)
    memoizes the run's scalar record on disk.  Runs that need live
    objects (an explicit ``system`` or ``tracer``) or non-serializable
    arguments bypass it; cached hits return a record whose ``result``
    is ``None``.
    """
    if cache is not None and system is None and tracer is None:
        from .parallel import (
            experiment_cell,
            record_from_value,
            record_to_value,
        )
        cell = experiment_cell(
            benchmark, configuration, strategy=strategy, policy=policy,
            global_batch=global_batch, sim_steps=sim_steps,
            sim_checkpoints=sim_checkpoints, **train_kwargs)
        if cell is not None:
            value = cache.load(cell)
            if value is not None:
                return record_from_value(value)
            record = run_configuration(
                benchmark, configuration, strategy=strategy,
                policy=policy, global_batch=global_batch,
                sim_steps=sim_steps, sim_checkpoints=sim_checkpoints,
                **train_kwargs)
            cache.store(cell, record_to_value(record))
            return record
    system = system or ComposableSystem()
    result = system.train(
        benchmark,
        configuration=configuration,
        strategy=strategy or DistributedDataParallel(),
        policy=policy,
        global_batch=global_batch,
        sim_steps=sim_steps,
        sim_checkpoints=sim_checkpoints,
        tracer=tracer,
        **train_kwargs,
    )
    collector = result.collector
    windows = result.steady_windows()
    span_total = sum(t1 - t0 for t0, t1 in windows)

    falcon_gpus = [g.name for g in result.gpus
                   if g.name.startswith(system.falcon.name)]
    if falcon_gpus and span_total > 0:
        moved = 0.0
        for t0, t1 in windows:
            ingress, egress = system.falcon.total_device_traffic(
                t0, t1, devices=falcon_gpus)
            moved += (ingress + egress) * (t1 - t0)
        falcon_traffic = moved / span_total / GB
    else:
        falcon_traffic = 0.0

    return ExperimentRecord(
        benchmark=benchmark,
        configuration=configuration,
        strategy=result.strategy_name,
        policy=result.policy_name,
        global_batch=result.global_batch,
        step_time=result.step_time,
        epoch_time=result.epoch_time,
        total_time=result.total_time,
        throughput=result.throughput,
        checkpoint_time=result.checkpoint_time,
        staging_overhead=result.staging_overhead,
        gpu_utilization=_windowed_mean(collector.mean_gpu_utilization,
                                       windows),
        gpu_memory=_windowed_mean(collector.mean_gpu_memory, windows),
        gpu_mem_access=_windowed_mean(collector.mean_gpu_mem_access,
                                      windows),
        cpu_utilization=_windowed_mean(collector.mean_cpu_utilization,
                                       windows),
        host_memory=_windowed_mean(collector.mean_host_memory, windows),
        falcon_gpu_traffic_gbs=falcon_traffic,
        result=result,
    )
