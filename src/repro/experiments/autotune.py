"""Pass-parameter autotuning: ``python -m repro autotune``.

The optimizing plan passes carry knobs whose defaults mirror framework
defaults, not per-cell optima: :class:`GradientBucketing`'s 100 MB cap
(DDP ``bucket_cap_mb``), :class:`CollectiveChunkSizing`'s 1 ms staging
target, and :class:`OverlapScheduling` as an all-or-nothing toggle.  The
best settings differ per (configuration × strategy variant) — a falcon
ring wants bigger buckets to amortize its longer per-collective setup,
while a pipeline schedule can lose overlap headroom to oversized ones.

This module searches that knob space per grid cell:

- :func:`candidate_pipelines` enumerates the candidate pipelines —
  bucket caps × chunk targets (including *no* chunk pass) × overlap
  on/off, copy fusion always on, and always the stock ``--opt all``
  default.  The default's membership makes the tuner safe by
  construction: ties prefer it, so a tuned cell is never slower than
  the default pipeline.
- :func:`autotune_cell` compiles one job per candidate and evaluates
  every candidate plan in one :func:`~repro.plan.batched.evaluate_batch`
  call — candidates that differ only in cost knobs share a structure
  group and replay vectorized; structural rewrites fall back to the
  scalar fast path automatically.
- :func:`run_autotune` sweeps the grid and assembles the
  tuned-vs-default frontier plus a reusable tuning table, written as
  ``TUNING.json`` by :func:`write_tuning_table` and consumed by
  :func:`load_tuning_table` / :func:`tuned_passes`.

Each tuned cell also reports incremental what-if ceilings (what the
tuned plan's makespan would be with compute or communication made free),
so the frontier shows not just the knob win but the remaining headroom.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "TUNING_BASENAME",
    "Candidate",
    "candidate_pipelines",
    "autotune_cell",
    "run_autotune",
    "write_tuning_table",
    "load_tuning_table",
    "tuned_passes",
]

#: Filename of the reusable tuning table at the repo/CI root.
TUNING_BASENAME = "TUNING.json"

#: The model every cell trains — the paper's Fig. 16 workload.
_BENCHMARK = "bert-large"

#: Bucket caps swept (bytes).  The stock 100 MB sits mid-grid.
_BUCKET_CAPS = (25e6, 50e6, 100e6, 200e6, 400e6)
_BUCKET_CAPS_SMOKE = (25e6, 100e6, 400e6)

#: Chunk staging targets swept (seconds); ``None`` drops the pass.
_CHUNK_TARGETS = (5e-4, 1e-3, 2e-3, None)
_CHUNK_TARGETS_SMOKE = (1e-3, None)

#: What-if cost buckets reported per tuned cell.
_CEILING_BUCKETS = ("compute", "comm")


class Candidate:
    """One candidate pipeline: a label, pass instances, default flag."""

    __slots__ = ("label", "passes", "is_default")

    def __init__(self, label: str, passes: Sequence, is_default=False):
        self.label = label
        self.passes = list(passes)
        self.is_default = is_default

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"<Candidate {self.label}>"


def candidate_pipelines(smoke: bool = False) -> list:
    """The candidate set: the stock default plus the knob grid.

    The default pipeline (``resolve_passes("all")``) is always first;
    grid points whose resolved spec collides with it are skipped so it
    appears exactly once.
    """
    from ..plan.passes import (
        CollectiveChunkSizing,
        CopyFusion,
        GradientBucketing,
        OverlapScheduling,
        passes_to_spec,
        resolve_passes,
    )

    default = Candidate("default", resolve_passes("all"), is_default=True)
    default_spec = passes_to_spec(default.passes)
    out = [default]
    caps = _BUCKET_CAPS_SMOKE if smoke else _BUCKET_CAPS
    chunks = _CHUNK_TARGETS_SMOKE if smoke else _CHUNK_TARGETS
    for cap in caps:
        for chunk in chunks:
            for overlap in (True, False):
                passes = [GradientBucketing(cap_bytes=cap)]
                if overlap:
                    passes.append(OverlapScheduling())
                passes.append(CopyFusion())
                if chunk is not None:
                    passes.append(
                        CollectiveChunkSizing(target_seconds=chunk))
                if passes_to_spec(passes) == default_spec:
                    continue
                chunk_ms = "-" if chunk is None else f"{chunk * 1e3:g}ms"
                label = (f"cap={cap / 1e6:g}MB,chunk={chunk_ms},"
                         f"overlap={'on' if overlap else 'off'}")
                out.append(Candidate(label, passes))
    return out


def _cell_key(benchmark: str, configuration: str, variant: str) -> str:
    return f"{benchmark}|{configuration}|{variant}"


def _whatif_ceilings(plan, timing, ctx) -> dict:
    """Incremental what-if makespans with each bucket's cost zeroed."""
    from ..telemetry.profile import what_if

    ceilings = {}
    for bucket in _CEILING_BUCKETS:
        result = what_if(plan, timing, ctx, bucket, 0.0)
        ceilings[bucket] = result.predicted_makespan
    return ceilings


def autotune_cell(configuration: str, variant, candidates,
                  what_if_ceilings: bool = True) -> dict:
    """Tune one (configuration × variant) cell over ``candidates``.

    Builds one training job per candidate (the pass pipeline runs at
    job construction, exactly as production training applies it) and
    evaluates every candidate's step plan in one batched call.  Tuned =
    the minimum-makespan candidate, ties resolved toward the default.
    """
    from ..plan.batched import evaluate_batch
    from ..plan.passes import passes_to_spec
    from .perfbench import _build_job

    jobs = [_build_job(configuration, variant, list(c.passes))
            for c in candidates]
    lanes = [(job.step_plan, job._exec_ctx) for job in jobs]
    result = evaluate_batch(lanes, fallback="fastpath")
    makespans = [t.makespan for t in result.timings]

    default_idx = next(i for i, c in enumerate(candidates)
                       if c.is_default)
    best = min(range(len(candidates)),
               key=lambda i: (makespans[i],
                              not candidates[i].is_default, i))
    default_s = makespans[default_idx]
    tuned_s = makespans[best]
    cell = {
        "benchmark": _BENCHMARK,
        "configuration": configuration,
        "variant": variant.name,
        "default_makespan_s": default_s,
        "tuned_makespan_s": tuned_s,
        "improvement_pct": (default_s - tuned_s) / default_s * 100.0
        if default_s else 0.0,
        "tuned_candidate": candidates[best].label,
        "tuned_passes": passes_to_spec(candidates[best].passes),
        "candidates": [
            {"label": c.label, "makespan_s": makespans[i]}
            for i, c in enumerate(candidates)],
        "batch": {
            "groups": result.groups,
            "batched_lanes": result.batched_lanes,
            "fallback_lanes": result.fallback_lanes,
            "diverged": len(result.diverged),
        },
    }
    if what_if_ceilings:
        cell["whatif_ceilings_s"] = _whatif_ceilings(
            jobs[best].step_plan, result.timings[best],
            jobs[best]._exec_ctx)
    return cell


def run_autotune(smoke: bool = False,
                 configurations: Optional[Sequence[str]] = None,
                 variants=None,
                 what_if_ceilings: bool = True) -> dict:
    """Sweep the grid and assemble the frontier + tuning-table report."""
    from .perfbench import _grid_configs, _grid_variants

    if configurations is None:
        configurations = _grid_configs(smoke)
    if variants is None:
        variants = _grid_variants(smoke)
    candidates = candidate_pipelines(smoke)

    t0 = time.perf_counter()
    cells = [autotune_cell(config, variant, candidates,
                           what_if_ceilings=what_if_ceilings)
             for config in configurations for variant in variants]
    elapsed = time.perf_counter() - t0

    table = {
        _cell_key(c["benchmark"], c["configuration"], c["variant"]): {
            "passes": c["tuned_passes"],
            "candidate": c["tuned_candidate"],
            "makespan_s": c["tuned_makespan_s"],
            "default_makespan_s": c["default_makespan_s"],
        }
        for c in cells
    }
    return {
        "meta": {
            "date": time.strftime("%Y-%m-%d"),
            "smoke": smoke,
            "benchmark": _BENCHMARK,
            "candidates": len(candidates),
            "cells": len(cells),
            "wall_clock_s": elapsed,
        },
        "cells": cells,
        "table": table,
        # Safety invariant (default is always a candidate and wins
        # ties): consumed by the CLI's exit status and the smoke tests.
        "tuned_never_slower": all(
            c["tuned_makespan_s"] <= c["default_makespan_s"]
            for c in cells),
    }


def write_tuning_table(report: dict,
                       directory: Optional[str] = None) -> Path:
    """Write ``TUNING.json`` (returns the path written)."""
    root = Path(directory) if directory else Path.cwd()
    root.mkdir(parents=True, exist_ok=True)
    path = root / TUNING_BASENAME
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_tuning_table(path: Optional[str] = None) -> dict:
    """Read a tuning report written by :func:`write_tuning_table`.

    ``path`` defaults to ``TUNING.json`` in the current directory.
    Raises ``FileNotFoundError``/``ValueError`` on missing or malformed
    tables — a corrupt table should never silently de-tune a run.
    """
    where = Path(path) if path else Path.cwd() / TUNING_BASENAME
    with open(where, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "table" not in report:
        raise ValueError(f"{where} is not a tuning table "
                         f"(missing 'table')")
    return report


def tuned_passes(report: dict, benchmark: str, configuration: str,
                 variant: str):
    """Rebuilt pass instances for one cell, or ``None`` if untuned.

    The return value plugs straight into ``TrainingConfig.plan_passes``
    (or any ``plan_passes=`` keyword): pass *instances* carrying the
    tuned knob values.  Missing cells return ``None`` so callers fall
    back to their own default pipeline.
    """
    from ..plan.passes import passes_from_spec

    entry = report["table"].get(
        _cell_key(benchmark, configuration, variant))
    if entry is None:
        return None
    return passes_from_spec(entry["passes"])
