"""Experiment harness: one runner per paper table/figure.

============  ==========================================
Artifact      Entry point
============  ==========================================
Table I       :data:`repro.core.SOFTWARE_STACK`
Table II      :func:`repro.workloads.get_benchmark` summaries
Table III     :data:`repro.core.CONFIGURATION_DESCRIPTIONS`
Table IV      :func:`repro.experiments.microbench.table4`
Fig. 5        :data:`repro.core.COMM_REQUIREMENTS`
Fig. 9        :func:`repro.experiments.traces.gpu_utilization_trace`
Figs. 10-14   :func:`repro.experiments.sweeps.gpu_config_sweep`
Fig. 15       :func:`repro.experiments.sweeps.storage_config_sweep`
Fig. 16       :func:`repro.experiments.software_opts.software_optimization_study`
============  ==========================================

Beyond the paper: :mod:`~repro.experiments.sharing` (advanced-mode
tenancy, ring placement, reconfiguration), :mod:`~repro.experiments.
resilience` (degraded uplinks), :mod:`~repro.experiments.
fault_tolerance` (chaos scenarios vs checkpoint-restart + hot-plug
recovery), :mod:`~repro.experiments.elasticity` (mid-run recomposition:
resize cost, lost work vs checkpoint-restart, autoscaling policies),
:mod:`~repro.experiments.scale_out`
(NVLink vs PCIe fabric vs Ethernet), :mod:`~repro.experiments.
dual_connection` (paper §III-B cabling), :mod:`~repro.experiments.
scaling_laws` (what actually drives the size-overhead correlation),
:mod:`~repro.experiments.recommender` (the §VI topology-recommendation
framework), :mod:`~repro.experiments.profiling` (bottleneck reports and
Fig. 16 grid annotation via the plan-level profiler),
:mod:`~repro.experiments.matrix` (the strategy x model x backend
crossover frontier: which parallelization wins where, and which models
flip winners between the local and composed fabrics),
:mod:`~repro.experiments.regress` (the perf-regression gate over
``BENCH_*.json`` baselines), :mod:`~repro.experiments.fleet`
(multi-chassis cluster scheduling: utilization, queueing delay, spine
contention), and :mod:`~repro.experiments.export` (CSV/JSON writers).
"""

from .dual_connection import DualConnectionResult, dual_connection_study
from .elasticity import (
    ElasticityRecord,
    autoscaler_comparison,
    elastic_resize_run,
    elasticity_study,
    lost_work_comparison,
    reconfiguration_sweep,
)
from .fault_tolerance import (
    FaultToleranceRecord,
    cable_pull_scenario,
    checkpoint_cadence_sweep,
    fault_tolerance_study,
)
from .export import (
    record_to_dict,
    records_to_csv,
    records_to_json,
    write_records,
)
from .fleet import SMOKE_SPEC, fleet_study
from .microbench import P2PResult, measure_pair, table4
from .resilience import DegradationResult, degraded_uplink_study
from .scale_out import ScaleOutResult, allreduce_scale_out_study
from .scaling_laws import (
    BatchPoint,
    ScalingPoint,
    overhead_vs_batch,
    overhead_vs_model_size,
    overhead_vs_width,
)
from .recommender import (
    Recommendation,
    ResourcePricing,
    ScoredConfiguration,
    TopologyRecommender,
)
from .matrix import (
    MATRIX_MODELS,
    SMOKE_MODELS,
    MatrixCell,
    MatrixReport,
    format_matrix,
    run_matrix,
)
from .autotune import (
    candidate_pipelines,
    load_tuning_table,
    run_autotune,
    tuned_passes,
    write_tuning_table,
)
from .parallel import (
    NullCache,
    ResultCache,
    default_cache_dir,
    run_cells,
)
from .perfbench import collect_provenance, run_perfbench, \
    write_bench_report
from .profiling import bottleneck_labels, profile_cell
from .regress import (
    RegressionReport,
    compare_reports,
    find_baseline,
    load_report,
    run_regression,
)
from .runner import ExperimentRecord, run_configuration
from .tracing import (
    OverheadSplit,
    TracedRun,
    overhead_split,
    traced_run,
)
from .sharing import (
    PlacementResult,
    ReconfigurationResult,
    SharingResult,
    reconfiguration_study,
    ring_placement_study,
    tenancy_isolation_study,
)
from .stragglers import StragglerPoint, straggler_amplification_study
from .software_opts import (
    OptVariant,
    VARIANTS,
    optimized_ddp_study,
    software_optimization_study,
    time_reduction_pct,
)
from .sweeps import (
    GPU_CONFIGS,
    STORAGE_CONFIGS,
    gpu_config_sweep,
    relative_time_rows,
    storage_config_sweep,
    telemetry_rows,
    traffic_rows,
)
from .tables import format_value, render_table
from .traces import UtilizationTrace, count_dips, gpu_utilization_trace

__all__ = [
    "table4",
    "P2PResult",
    "measure_pair",
    "ExperimentRecord",
    "run_configuration",
    "ResultCache",
    "NullCache",
    "default_cache_dir",
    "run_cells",
    "run_perfbench",
    "write_bench_report",
    "candidate_pipelines",
    "run_autotune",
    "write_tuning_table",
    "load_tuning_table",
    "tuned_passes",
    "fleet_study",
    "SMOKE_SPEC",
    "collect_provenance",
    "profile_cell",
    "bottleneck_labels",
    "MatrixCell",
    "MatrixReport",
    "MATRIX_MODELS",
    "SMOKE_MODELS",
    "run_matrix",
    "format_matrix",
    "RegressionReport",
    "compare_reports",
    "find_baseline",
    "load_report",
    "run_regression",
    "gpu_config_sweep",
    "storage_config_sweep",
    "GPU_CONFIGS",
    "STORAGE_CONFIGS",
    "relative_time_rows",
    "telemetry_rows",
    "traffic_rows",
    "gpu_utilization_trace",
    "UtilizationTrace",
    "count_dips",
    "optimized_ddp_study",
    "software_optimization_study",
    "OptVariant",
    "VARIANTS",
    "time_reduction_pct",
    "render_table",
    "format_value",
    "TopologyRecommender",
    "ResourcePricing",
    "Recommendation",
    "ScoredConfiguration",
    "SharingResult",
    "PlacementResult",
    "ReconfigurationResult",
    "tenancy_isolation_study",
    "ring_placement_study",
    "reconfiguration_study",
    "DegradationResult",
    "degraded_uplink_study",
    "FaultToleranceRecord",
    "cable_pull_scenario",
    "fault_tolerance_study",
    "checkpoint_cadence_sweep",
    "ElasticityRecord",
    "elastic_resize_run",
    "lost_work_comparison",
    "reconfiguration_sweep",
    "autoscaler_comparison",
    "elasticity_study",
    "ScaleOutResult",
    "allreduce_scale_out_study",
    "DualConnectionResult",
    "dual_connection_study",
    "ScalingPoint",
    "BatchPoint",
    "overhead_vs_model_size",
    "overhead_vs_width",
    "overhead_vs_batch",
    "StragglerPoint",
    "straggler_amplification_study",
    "record_to_dict",
    "records_to_json",
    "records_to_csv",
    "write_records",
    "TracedRun",
    "OverheadSplit",
    "traced_run",
    "overhead_split",
]
