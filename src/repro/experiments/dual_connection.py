"""Dual-connection drawer study (paper §III-B).

"One host can have two connections to the same drawer.  Each connection
gives access to four devices.  This improves performance of
communications between host and devices but may slow communications
between devices in the two halves of the drawer."

This study trains an 8-GPU job on one drawer cabled both ways:

- **single**: one CDFP connection, all eight GPUs behind one switch —
  full-speed P2P inside the drawer, one shared host uplink;
- **dual**: the drawer partitioned into two 4-slot halves, each with its
  own CDFP connection — twice the host-device bandwidth, but the ring
  crosses the host root complex between the halves.

Communication-bound models (BERT-large) prefer the single connection;
input-bound vision models benefit from the doubled uplink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..devices import (
    GPU,
    HostServer,
    SUPERMICRO_4029GP_TVRT,
    V100_PCIE_16GB,
)
from ..fabric import Falcon4016, Topology
from ..sim import Environment
from ..training import (
    DistributedDataParallel,
    TrainingConfig,
    TrainingJob,
)
from ..workloads import get_benchmark

__all__ = ["DualConnectionResult", "dual_connection_study"]


@dataclass(frozen=True)
class DualConnectionResult:
    """Step times (s) for the two §III-B cabling layouts."""

    benchmark: str
    single_connection: float
    dual_connection: float

    @property
    def dual_vs_single_pct(self) -> float:
        """Positive = dual cabling is slower for this workload."""
        return 100.0 * (self.dual_connection / self.single_connection
                        - 1.0)


def _run(benchmark: str, dual: bool, sim_steps: int,
         global_batch: Optional[int]) -> float:
    env = Environment()
    topo = Topology(env)
    host = HostServer(env, topo, "host0", SUPERMICRO_4029GP_TVRT)
    falcon = Falcon4016(
        topo, "falcon0",
        partitioned_drawers=frozenset({0}) if dual else frozenset())
    if dual:
        falcon.connect_host("H1", "host0", host.rc_node, drawer=0,
                            partition=0)
        falcon.connect_host("H2", "host0", host.rc_node, drawer=0,
                            partition=1)
    else:
        falcon.connect_host("H1", "host0", host.rc_node, drawer=0)
    gpus: list[GPU] = []
    for i in range(8):
        gpu = GPU(env, topo, f"falcon0/gpu{i}", V100_PCIE_16GB)
        falcon.install_device(gpu.name, drawer=0, slot=i)
        falcon.allocate(gpu.name, "host0")
        gpus.append(gpu)
    config = TrainingConfig(
        benchmark=get_benchmark(benchmark),
        strategy=DistributedDataParallel(),
        global_batch=global_batch,
        sim_steps=sim_steps,
        sim_checkpoints=0,
    )
    job = TrainingJob(env, topo, host, gpus, host.scratch, config)
    return job.run().step_time


def dual_connection_study(benchmark: str = "bert-large",
                          sim_steps: int = 6,
                          global_batch: Optional[int] = None
                          ) -> DualConnectionResult:
    """Compare single vs dual drawer cabling for one benchmark."""
    return DualConnectionResult(
        benchmark=benchmark,
        single_connection=_run(benchmark, False, sim_steps, global_batch),
        dual_connection=_run(benchmark, True, sim_steps, global_batch),
    )
