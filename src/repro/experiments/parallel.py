"""Parallel, memoized experiment execution.

The paper's evaluation is a grid of (benchmark × configuration ×
strategy × precision) cells, and every figure study used to replay its
slice of that grid serially through the full simulator.  This module
factors grid execution into three pieces:

- **Cells** — plain-dict descriptions of one simulation (picklable, so
  they can cross a process boundary, and canonically JSON-serializable,
  so they can be hashed).
- **ResultCache** — a content-addressed on-disk cache.  The key is the
  SHA-256 of the cell's canonical JSON plus the repro version, so a cell
  is recomputed iff anything that could change its result changed:
  benchmark, configuration, strategy (and its knobs), precision policy,
  batch, step counts, plan passes, jitter seed, or the code version.
  Corrupt or truncated entries read as misses and are recomputed.
- **run_cells** — the fan-out engine: serves hits from the cache,
  executes misses either in-process or across a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``), and stores
  fresh results back.

Figure studies build their grids as cells and call :func:`run_cells`;
the CLI exposes ``--jobs N``, ``--no-cache``, and ``--cache-dir``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from .runner import ExperimentRecord

__all__ = [
    "ResultCache",
    "NullCache",
    "default_cache_dir",
    "experiment_cell",
    "opt_profile_cell",
    "record_from_value",
    "record_to_value",
    "run_cells",
]

#: Environment override for the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_RECORD_FIELDS = tuple(f.name for f in dataclasses.fields(ExperimentRecord)
                       if f.name != "result")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class NullCache:
    """A cache that never hits and never writes (``--no-cache``)."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def load(self, cell: dict) -> Optional[dict]:
        self.misses += 1
        return None

    def store(self, cell: dict, value: dict) -> None:
        pass


class ResultCache:
    """Content-addressed experiment-result cache on local disk.

    One JSON file per cell, named by the cell's content hash.  Values
    are plain dicts of scalars (never live simulation objects).
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, cell: dict) -> str:
        import repro
        payload = json.dumps({"cell": cell, "version": repro.__version__},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path(self, cell: dict) -> Path:
        return self.root / f"{self.key(cell)}.json"

    def load(self, cell: dict) -> Optional[dict]:
        """The cached value for ``cell``, or ``None``.

        Unreadable or corrupt entries (truncated writes, bad JSON, wrong
        shape) are treated as misses — the cell simply recomputes.
        """
        path = self.path(cell)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            value = entry["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if not isinstance(value, dict):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, cell: dict, value: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(cell)
        tmp = path.with_suffix(".tmp")
        entry = {"cell": cell, "value": value}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1


# -- cell construction -------------------------------------------------------

def _strategy_spec(strategy) -> Optional[dict]:
    """Canonical (class name, constructor kwargs) form of a strategy.

    Strategies are tiny value objects whose instance dict mirrors their
    constructor signature; anything fancier is not cell-serializable and
    returns ``None`` (callers then bypass the cache).
    """
    if strategy is None:
        return None
    kwargs = dict(sorted(vars(strategy).items()))
    try:
        json.dumps(kwargs)
    except (TypeError, ValueError):
        return None
    return {"type": type(strategy).__name__, "kwargs": kwargs}


def _passes_spec(plan_passes):
    """Resolve a ``plan_passes`` spec to its canonical knob-valued form.

    Cell keys must reflect the *resolved* pass parameters (bucket cap,
    chunk target), not the spelling of the spec: ``"bucketing"`` and
    ``GradientBucketing(cap_bytes=25e6)`` compile different plans and
    may not alias in the cache.  Returns ``None`` for ``None`` and
    raises for specs :func:`resolve_passes` cannot build (callers treat
    that as not-cacheable).
    """
    if plan_passes is None:
        return None
    from ..plan.passes import passes_to_spec
    return passes_to_spec(plan_passes)


def experiment_cell(benchmark: str, configuration: str,
                    strategy=None, policy=None,
                    global_batch: Optional[int] = None,
                    sim_steps: int = 10, sim_checkpoints: int = 1,
                    **train_kwargs) -> Optional[dict]:
    """A cell for one :func:`~repro.experiments.run_configuration` call.

    Returns ``None`` when the call cannot be expressed as a pure,
    serializable cell (exotic strategy or non-JSON kwargs) — callers
    fall back to running in-process without the cache.
    """
    train_kwargs = dict(sorted(train_kwargs.items()))
    if "plan_passes" in train_kwargs:
        try:
            train_kwargs["plan_passes"] = _passes_spec(
                train_kwargs["plan_passes"])
        except Exception:
            return None
    cell = {
        "kind": "experiment",
        "benchmark": benchmark,
        "configuration": configuration,
        "strategy": _strategy_spec(strategy),
        "policy": getattr(policy, "name", None),
        "global_batch": global_batch,
        "sim_steps": sim_steps,
        "sim_checkpoints": sim_checkpoints,
        "train_kwargs": train_kwargs,
    }
    if strategy is not None and cell["strategy"] is None:
        return None
    try:
        json.dumps(cell)
    except (TypeError, ValueError):
        return None
    return cell


def opt_profile_cell(benchmark: str, configuration: str, sim_steps: int,
                     pipeline: str, plan_passes: Optional[str]) -> dict:
    """A cell for one pipeline of the optimized-DDP study (fig16-opt)."""
    return {
        "kind": "opt-profile",
        "benchmark": benchmark,
        "configuration": configuration,
        "sim_steps": sim_steps,
        "pipeline": pipeline,
        "plan_passes": _passes_spec(plan_passes),
    }


def record_to_value(record: ExperimentRecord) -> dict:
    """Flatten a record to its cacheable scalar fields."""
    return {name: getattr(record, name) for name in _RECORD_FIELDS}


def record_from_value(value: dict) -> ExperimentRecord:
    """Rebuild a record from cached scalars (``result`` is ``None``:
    cached cells carry no live simulation objects)."""
    return ExperimentRecord(result=None,
                            **{name: value[name]
                               for name in _RECORD_FIELDS})


# -- cell execution ----------------------------------------------------------

def _build_strategy(spec: Optional[dict]):
    if spec is None:
        return None
    from ..training import STRATEGY_REGISTRY
    types = {cls.__name__: cls for cls in STRATEGY_REGISTRY.values()}
    try:
        cls = types[spec["type"]]
    except KeyError:
        raise ValueError(f"unknown strategy type {spec['type']!r}") from None
    return cls(**spec["kwargs"])


def _build_policy(name: Optional[str]):
    from ..training import AMP_POLICY, FP32_POLICY
    if name is None:
        return AMP_POLICY
    policies = {p.name: p for p in (AMP_POLICY, FP32_POLICY)}
    try:
        return policies[name]
    except KeyError:
        raise ValueError(f"unknown precision policy {name!r}") from None


def _execute_cell(cell: dict) -> dict:
    """Run one cell to completion and return its (JSONable) value.

    Module-level by design: :class:`ProcessPoolExecutor` workers import
    it by qualified name when cells fan out across processes.
    """
    kind = cell["kind"]
    if kind == "experiment":
        from .runner import run_configuration
        train_kwargs = dict(cell["train_kwargs"])
        if train_kwargs.get("plan_passes") is not None:
            from ..plan.passes import passes_from_spec
            train_kwargs["plan_passes"] = passes_from_spec(
                train_kwargs["plan_passes"])
        record = run_configuration(
            cell["benchmark"], cell["configuration"],
            strategy=_build_strategy(cell["strategy"]),
            policy=_build_policy(cell["policy"]),
            global_batch=cell["global_batch"],
            sim_steps=cell["sim_steps"],
            sim_checkpoints=cell["sim_checkpoints"],
            **train_kwargs,
        )
        return record_to_value(record)
    if kind == "opt-profile":
        from ..training import AMP_POLICY, DistributedDataParallel
        from .software_opts import _exposed_sync_per_step
        from .tracing import traced_run
        plan_passes = cell["plan_passes"]
        if plan_passes is not None:
            from ..plan.passes import passes_from_spec
            plan_passes = passes_from_spec(plan_passes)
        run = traced_run(
            cell["benchmark"], cell["configuration"],
            sim_steps=cell["sim_steps"],
            strategy=DistributedDataParallel(), policy=AMP_POLICY,
            plan_passes=plan_passes)
        return {
            "step_time": run.record.step_time,
            "exposed_sync": _exposed_sync_per_step(run),
            "time_per_sample": 1.0 / run.record.throughput,
        }
    raise ValueError(f"unknown cell kind {kind!r}")


def run_cells(cells: list, jobs: int = 1, cache=None) -> list:
    """Evaluate cells, serving cached hits and fanning out the misses.

    Returns values in cell order.  With ``jobs > 1`` misses execute on a
    process pool; the parent stores their results, so the cache needs no
    cross-process locking.  ``cache=None`` means no memoization (a
    throwaway :class:`NullCache`).
    """
    cache = cache if cache is not None else NullCache()
    results: list = [None] * len(cells)
    pending: list = []
    for index, cell in enumerate(cells):
        value = cache.load(cell)
        if value is not None:
            results[index] = value
        else:
            pending.append(index)
    if pending:
        if jobs > 1:
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                fresh = list(pool.map(_execute_cell,
                                      [cells[i] for i in pending]))
        else:
            fresh = [_execute_cell(cells[i]) for i in pending]
        for index, value in zip(pending, fresh):
            results[index] = value
            cache.store(cells[index], value)
    return results
