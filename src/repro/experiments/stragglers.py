"""Straggler amplification under synchronous data parallelism.

Synchronous collectives make every rank wait for the slowest: with
per-kernel time noise of lognormal sigma, the expected step time grows
with the world size as the maximum of N draws — the classic straggler
amplification that motivates asynchronous and hierarchical training.

This study enables the simulator's (default-off) kernel jitter and
measures step-time inflation vs the deterministic baseline as the ring
grows, on the local NVLink pool where communication itself is cheap (so
what remains is pure synchronization loss).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ComposableSystem
from ..fabric import RING_ORDER
from ..training import DistributedDataParallel, TrainingConfig, TrainingJob
from ..workloads import get_benchmark

__all__ = ["StragglerPoint", "straggler_amplification_study"]


@dataclass(frozen=True)
class StragglerPoint:
    """Step-time inflation at one world size."""

    world_size: int
    deterministic_step: float
    jittered_step: float

    @property
    def amplification_pct(self) -> float:
        return 100.0 * (self.jittered_step / self.deterministic_step - 1.0)


def _step_time(world_size: int, jitter: float, benchmark: str,
               sim_steps: int, per_gpu_batch: int) -> float:
    system = ComposableSystem()
    local_ring = [system.host.gpus[i] for i in RING_ORDER]
    gpus = local_ring[:world_size]
    config = TrainingConfig(
        benchmark=get_benchmark(benchmark),
        strategy=DistributedDataParallel(),
        global_batch=per_gpu_batch * world_size,
        sim_steps=sim_steps,
        sim_checkpoints=0,
        kernel_jitter=jitter,
    )
    job = TrainingJob(system.env, system.topology, system.host, gpus,
                      system.host.scratch, config)
    return job.run().step_time


def straggler_amplification_study(world_sizes=(1, 2, 4, 8),
                                  jitter: float = 0.10,
                                  benchmark: str = "bert-large",
                                  sim_steps: int = 10,
                                  per_gpu_batch: int = 6
                                  ) -> list[StragglerPoint]:
    """Measure synchronization loss from kernel jitter vs world size."""
    if jitter <= 0:
        raise ValueError("the study needs positive jitter")
    points = []
    for n in world_sizes:
        base = _step_time(n, 0.0, benchmark, sim_steps, per_gpu_batch)
        noisy = _step_time(n, jitter, benchmark, sim_steps, per_gpu_batch)
        points.append(StragglerPoint(
            world_size=n,
            deterministic_step=base,
            jittered_step=noisy,
        ))
    return points
