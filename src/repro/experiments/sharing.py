"""Advanced-mode sharing studies (the paper's future-work agenda).

The paper's §VI plans to "evaluate other modes of the system, such as
advanced mode and dynamic reconfiguration".  Three studies:

- :func:`tenancy_isolation_study` — two hosts share a drawer in advanced
  mode, each training on its own pair of Falcon GPUs concurrently.  The
  drawer switch is non-blocking and each host has its own CDFP port, so
  tenants should see near-zero interference — the architectural selling
  point of composable isolation.
- :func:`uplink_contention_study` — the *anti-pattern*: one host runs two
  concurrent jobs whose Falcon GPUs sit behind the *same* host port, so
  H2D traffic and ring hops contend on one CDFP cable; compared against
  placing the jobs in separate drawers (separate ports).
- :func:`reconfiguration_study` — the cost of moving GPUs between hosts
  (hot-plug latency) against the throughput gained by rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cluster import ComposableCluster, HOTPLUG_SECONDS, JobSpec

__all__ = [
    "SharingResult",
    "PlacementResult",
    "ReconfigurationResult",
    "tenancy_isolation_study",
    "ring_placement_study",
    "reconfiguration_study",
]


@dataclass(frozen=True)
class SharingResult:
    """Step times (s) with and without a concurrent tenant."""

    benchmark: str
    solo_step_time: float
    shared_step_time: float

    @property
    def interference_pct(self) -> float:
        """Step-time inflation caused by the co-tenant."""
        return 100.0 * (self.shared_step_time / self.solo_step_time - 1.0)


def _allocate(cluster: ComposableCluster,
              assignment: dict[str, int]) -> None:
    done = cluster.reconfigure(assignment)
    cluster.env.run(until=done)


def tenancy_isolation_study(benchmark: str = "bert-base",
                            sim_steps: int = 6) -> SharingResult:
    """Two hosts, one drawer, two GPUs each: measure cross-tenant
    interference under advanced mode."""
    pairs = {"falcon0/gpu0": 0, "falcon0/gpu1": 0,
             "falcon0/gpu2": 1, "falcon0/gpu3": 1}
    job0 = ("falcon0/gpu0", "falcon0/gpu1")
    job1 = ("falcon0/gpu2", "falcon0/gpu3")
    batch = 24

    solo_cluster = ComposableCluster(hosts=2)
    _allocate(solo_cluster, {k: v for k, v in pairs.items() if v == 0})
    solo = solo_cluster.run_jobs([
        JobSpec(0, benchmark, job0, global_batch=batch,
                sim_steps=sim_steps)])[0]

    shared_cluster = ComposableCluster(hosts=2)
    _allocate(shared_cluster, pairs)
    shared = shared_cluster.run_jobs([
        JobSpec(0, benchmark, job0, global_batch=batch,
                sim_steps=sim_steps),
        JobSpec(1, benchmark, job1, global_batch=batch,
                sim_steps=sim_steps),
    ])[0]

    return SharingResult(benchmark, solo.step_time, shared.step_time)


@dataclass(frozen=True)
class PlacementResult:
    """Ring-placement study outcomes (step times, seconds)."""

    benchmark: str
    within_drawer: float
    across_drawers_solo: float
    across_drawers_shared: float

    @property
    def crossing_penalty_pct(self) -> float:
        """Cost of letting a ring cross the host ports at all."""
        return 100.0 * (self.across_drawers_solo / self.within_drawer - 1.0)

    @property
    def interference_pct(self) -> float:
        """Extra cost when a co-tenant's ring shares those crossings."""
        return 100.0 * (self.across_drawers_shared
                        / self.across_drawers_solo - 1.0)


def ring_placement_study(benchmark: str = "bert-large",
                         sim_steps: int = 5) -> PlacementResult:
    """Device-placement sensitivity under advanced mode.

    A 4-GPU job placed (a) within one drawer (ring never leaves the
    switch), (b) split 2+2 across drawers (ring crosses both CDFP host
    ports twice per phase), and (c) split 2+2 while a second identically
    split job shares the same crossings.  Communication-bound models pay
    for bad placement and for crossing-sharing co-tenants — exactly the
    topology-choice insight the composable platform is for.
    """
    batch = 24
    within = tuple(f"falcon0/gpu{i}" for i in (0, 1, 2, 3))
    across_a = ("falcon0/gpu0", "falcon0/gpu1",
                "falcon0/gpu4", "falcon0/gpu5")
    across_b = ("falcon0/gpu2", "falcon0/gpu3",
                "falcon0/gpu6", "falcon0/gpu7")

    def run(jobs):
        cluster = ComposableCluster(hosts=1)
        needed = {g for spec in jobs for g in spec}
        _allocate(cluster, {g: 0 for g in needed})
        results = cluster.run_jobs([
            JobSpec(0, benchmark, spec, global_batch=batch,
                    sim_steps=sim_steps) for spec in jobs])
        return results[0].step_time

    return PlacementResult(
        benchmark=benchmark,
        within_drawer=run([within]),
        across_drawers_solo=run([across_a]),
        across_drawers_shared=run([across_a, across_b]),
    )


@dataclass(frozen=True)
class ReconfigurationResult:
    """Cost/benefit of rebalancing GPUs between tenants."""

    benchmark: str
    gpus_moved: int
    reconfiguration_seconds: float
    throughput_before: float
    throughput_after: float

    @property
    def breakeven_seconds(self) -> float:
        """Training seconds after which the move has paid for itself."""
        gain = self.throughput_after - self.throughput_before
        if gain <= 0:
            return float("inf")
        # Samples foregone during reconfiguration / extra samples per s.
        return (self.reconfiguration_seconds
                * self.throughput_before) / gain


def reconfiguration_study(benchmark: str = "resnet50",
                          sim_steps: int = 6) -> ReconfigurationResult:
    """Grow a tenant from 2 to 4 Falcon GPUs at runtime and report the
    reconfiguration cost vs the throughput gained."""
    cluster = ComposableCluster(hosts=2)
    small = ("falcon0/gpu0", "falcon0/gpu1")
    extra = ("falcon0/gpu2", "falcon0/gpu3")
    per_gpu = 128

    _allocate(cluster, {g: 0 for g in small})
    _allocate(cluster, {g: 1 for g in extra})  # parked on the other host
    before = cluster.run_jobs([
        JobSpec(0, benchmark, small, global_batch=per_gpu * 2,
                sim_steps=sim_steps)])[0]

    t0 = cluster.env.now
    done = cluster.reconfigure({g: 0 for g in extra})
    cluster.env.run(until=done)
    reconfig_time = cluster.env.now - t0

    after = cluster.run_jobs([
        JobSpec(0, benchmark, small + extra, global_batch=per_gpu * 4,
                sim_steps=sim_steps)])[0]

    return ReconfigurationResult(
        benchmark=benchmark,
        gpus_moved=len(extra),
        reconfiguration_seconds=reconfig_time,
        throughput_before=before.throughput,
        throughput_after=after.throughput,
    )
