"""Degraded-fabric resilience study.

The Falcon management interface exposes PCIe link health (accumulated
error counts, paper §II-B) precisely because links degrade in production:
a marginal CDFP cable retrains at reduced width and every tenant behind
that host port slows down.  This study quantifies the blast radius:

- train a communication-bound benchmark on falcon GPUs,
- retrain one host-port cable to half width mid-run,
- compare steady step times before and after, and verify local-GPU
  configurations are unaffected (the isolation argument for keeping
  latency-critical tenants off a degraded chassis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ComposableSystem
from ..training import DistributedDataParallel

__all__ = ["DegradationResult", "degraded_uplink_study"]


@dataclass(frozen=True)
class DegradationResult:
    """Step times (s) at full and degraded host-port width."""

    benchmark: str
    configuration: str
    degraded_lanes: int
    healthy_step_time: float
    degraded_step_time: float

    @property
    def slowdown_pct(self) -> float:
        return 100.0 * (self.degraded_step_time / self.healthy_step_time
                        - 1.0)


def degraded_uplink_study(benchmark: str = "bert-large",
                          configuration: str = "falconGPUs",
                          lanes: int = 8,
                          sim_steps: int = 12) -> DegradationResult:
    """Retrain port H1's cable to ``lanes`` mid-run; measure the impact.

    The first half of the simulated steps runs healthy, then the cable
    degrades; per-step timing splits the two regimes.
    """
    system = ComposableSystem()
    env = system.env

    # The H1 cable: drawer 0's upstream link toward the host.
    drawer0 = system.falcon.drawers[0]
    _, h1_link, _ = drawer0.hosts["host0"][0]
    original_spec = h1_link.spec

    from ..training import TrainingConfig, TrainingJob
    from ..workloads import get_benchmark
    active = system.configure(configuration)
    config = TrainingConfig(
        benchmark=get_benchmark(benchmark),
        strategy=DistributedDataParallel(),
        sim_steps=sim_steps,
        sim_checkpoints=0,
    )
    job = TrainingJob(env, system.topology, system.host,
                      list(active.gpus), active.storage, config)

    half = sim_steps // 2

    def degrade_at_half(steps_done: int, _now: float) -> None:
        # Fires synchronously as the half-way step completes — no
        # polling loop, and exact alignment with the step boundary.
        if steps_done == half:
            system.topology.degrade_link(h1_link, lanes)

    job.add_step_listener(degrade_at_half)
    try:
        done = job.start()
        env.run(until=done)
    finally:
        # Re-seat the cable even if the run dies, so the system is
        # reusable by follow-on studies sharing this environment.
        system.topology.restore_link(h1_link, original_spec)

    steps = np.asarray(job.step_times)
    healthy = float(np.mean(steps[1:half]))      # skip warmup step
    degraded = float(np.mean(steps[half + 1:]))  # skip the cut-over step
    return DegradationResult(
        benchmark=benchmark,
        configuration=configuration,
        degraded_lanes=lanes,
        healthy_step_time=healthy,
        degraded_step_time=degraded,
    )
