"""Fleet study: utilization, queueing delay, and spine contention.

Runs a seeded synthetic job trace (:mod:`repro.fleet.trace`) through the
FIFO cluster scheduler (:mod:`repro.fleet.scheduler`) on a multi-chassis
:class:`~repro.core.ComposableFleet` and reports the three quantities a
capacity planner asks of a composable cluster:

- **GPU utilization** — busy GPU-seconds over the makespan; how much of
  the disaggregated pool the scheduler actually kept training;
- **queueing delay** — arrival-to-placement wait per job (FIFO, so
  head-of-line blocking from big jobs is visible);
- **spine contention** — mean to/from-spine rates on every host uplink
  and drawer trunk, the shared links where co-scheduled jobs collide.

``python -m repro fleet [--smoke]`` prints the per-job table and the
aggregates; ``--smoke`` also asserts the run's invariants (every job
completed, utilization in (0, 1], traffic observed on the spine) and
exits non-zero on violation — the CI gate for the fleet layer.
"""

from __future__ import annotations

from typing import Optional

from ..core.fleet import ComposableFleet
from ..core.presets import FLEET_FOUR_CHASSIS, FleetSpec

__all__ = ["fleet_study", "SMOKE_SPEC"]

#: Two chassis x 4 GPUs, two hosts: the smallest fleet on which single-
#: vs cross-chassis placement and spine sharing are all exercised.
SMOKE_SPEC = FleetSpec(name="smoke", chassis=2, hosts=2,
                       gpus_per_chassis=4)


def fleet_study(smoke: bool = False,
                spec: Optional[FleetSpec] = None,
                jobs: Optional[int] = None,
                seed: int = 0,
                mean_interarrival: Optional[float] = None,
                sim_steps: Optional[tuple] = None) -> dict:
    """Run one fleet trace end to end; returns the full report dict."""
    from ..fleet import ClusterScheduler, generate_trace

    if spec is None:
        spec = SMOKE_SPEC if smoke else FLEET_FOUR_CHASSIS
    if jobs is None:
        jobs = 8 if smoke else 24
    if mean_interarrival is None:
        # Arrivals faster than service so a queue actually forms: the
        # smoke trace front-loads ~23 GPU-requests onto an 8-GPU fleet.
        mean_interarrival = 1.0 if smoke else 20.0
    if sim_steps is None:
        sim_steps = (2, 3) if smoke else (2, 5)

    fleet = ComposableFleet(spec)
    trace = generate_trace(jobs=jobs, seed=seed,
                           mean_interarrival=mean_interarrival,
                           sim_steps=sim_steps)
    result = ClusterScheduler(fleet).run(trace)

    report = result.as_dict()
    report["meta"] = {
        "seed": seed,
        "mean_interarrival_s": mean_interarrival,
        "sim_steps": list(sim_steps),
        "smoke": smoke,
    }
    traffic = report["spine_traffic_gbs"]
    busiest = max(
        traffic,
        key=lambda k: traffic[k]["to_spine_gbs"]
        + traffic[k]["from_spine_gbs"],
        default=None)
    report["busiest_spine_link"] = busiest
    report["checks"] = _invariants(report, jobs)
    return report


def _invariants(report: dict, expected_jobs: int) -> dict:
    """The smoke gate: structural truths any healthy run satisfies."""
    traffic = report["spine_traffic_gbs"]
    total_gbs = sum(t["to_spine_gbs"] + t["from_spine_gbs"]
                    for t in traffic.values())
    checks = {
        "all_jobs_completed": len(report["records"]) == expected_jobs,
        "multi_chassis": report["chassis"] >= 2,
        "utilization_sane": 0.0 < report["gpu_utilization"] <= 1.0,
        "queue_delays_nonnegative": all(
            r["queue_delay_s"] >= -1e-9 for r in report["records"]),
        "spine_traffic_observed": total_gbs > 0.0,
    }
    if report["meta"]["smoke"]:
        # The smoke trace intentionally oversubscribes the fleet, so a
        # FIFO queue must have formed.
        checks["queueing_observed"] = report["max_queue_delay_s"] > 0.0
    checks["ok"] = all(checks.values())
    return checks
