"""Benchmark x configuration sweeps (paper Figs. 10-15).

Two sweeps cover the evaluation's configuration axes:

- :func:`gpu_config_sweep` — every benchmark on localGPUs / hybridGPUs /
  falconGPUs.  One instrumented run per cell yields Fig. 10 (GPU metrics),
  Fig. 11 (relative training time), Fig. 12 (Falcon PCIe traffic),
  Fig. 13 (CPU utilization), and Fig. 14 (host memory).
- :func:`storage_config_sweep` — every benchmark on localGPUs / localNVMe
  / falconNVMe (all with local GPUs), yielding Fig. 15.

Each sweep returns ``{benchmark: {configuration: ExperimentRecord}}``;
the formatting helpers turn those into the paper's rows.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..workloads import benchmark_names
from .runner import DEFAULT_SIM_STEPS, ExperimentRecord, run_configuration
from .tables import render_table

__all__ = [
    "gpu_config_sweep",
    "storage_config_sweep",
    "GPU_CONFIGS",
    "STORAGE_CONFIGS",
    "relative_time_rows",
    "telemetry_rows",
    "traffic_rows",
]

#: The Fig. 10-14 configuration axis.
GPU_CONFIGS: tuple[str, ...] = ("localGPUs", "hybridGPUs", "falconGPUs")
#: The Fig. 15 configuration axis (GPUs always local).
STORAGE_CONFIGS: tuple[str, ...] = ("localGPUs", "localNVMe", "falconNVMe")


def _sweep(configs: Iterable[str],
           benchmarks: Optional[Iterable[str]] = None,
           sim_steps: int = DEFAULT_SIM_STEPS,
           jobs: int = 1, cache=None,
           ) -> dict[str, dict[str, ExperimentRecord]]:
    from .parallel import experiment_cell, record_from_value, run_cells

    keys = list(benchmarks) if benchmarks is not None else benchmark_names()
    configs = list(configs)
    cells = [experiment_cell(key, config, sim_steps=sim_steps)
             for key in keys for config in configs]
    values = run_cells(cells, jobs=jobs, cache=cache)
    out: dict[str, dict[str, ExperimentRecord]] = {}
    flat = iter(values)
    for key in keys:
        out[key] = {config: record_from_value(next(flat))
                    for config in configs}
    return out


def gpu_config_sweep(benchmarks: Optional[Iterable[str]] = None,
                     sim_steps: int = DEFAULT_SIM_STEPS,
                     jobs: int = 1, cache=None,
                     ) -> dict[str, dict[str, ExperimentRecord]]:
    """Run the Figs. 10-14 sweep."""
    return _sweep(GPU_CONFIGS, benchmarks, sim_steps, jobs=jobs,
                  cache=cache)


def storage_config_sweep(benchmarks: Optional[Iterable[str]] = None,
                         sim_steps: int = DEFAULT_SIM_STEPS,
                         jobs: int = 1, cache=None,
                         ) -> dict[str, dict[str, ExperimentRecord]]:
    """Run the Fig. 15 sweep."""
    return _sweep(STORAGE_CONFIGS, benchmarks, sim_steps, jobs=jobs,
                  cache=cache)


def relative_time_rows(sweep: dict[str, dict[str, ExperimentRecord]],
                       baseline: str = "localGPUs"
                       ) -> list[tuple]:
    """Fig. 11 / Fig. 15 rows: % training-time change vs the baseline."""
    rows = []
    for key, by_config in sweep.items():
        base = by_config[baseline]
        row = [key]
        for config, record in by_config.items():
            if config == baseline:
                continue
            row.append(round(record.pct_change_vs(base), 2))
        rows.append(tuple(row))
    return rows


def telemetry_rows(sweep: dict[str, dict[str, ExperimentRecord]],
                   metric: str) -> list[tuple]:
    """Fig. 10/13/14 rows: one telemetry metric per (benchmark, config)."""
    rows = []
    for key, by_config in sweep.items():
        row = [key]
        for record in by_config.values():
            row.append(round(getattr(record, metric), 2))
        rows.append(tuple(row))
    return rows


def traffic_rows(sweep: dict[str, dict[str, ExperimentRecord]]
                 ) -> list[tuple]:
    """Fig. 12 rows: Falcon GPU-slot traffic (GB/s) per falcon config."""
    rows = []
    for key, by_config in sweep.items():
        row = [key]
        for config, record in by_config.items():
            if config == "localGPUs":
                continue
            row.append(round(record.falcon_gpu_traffic_gbs, 2))
        rows.append(tuple(row))
    return rows
