"""Result export: JSON and CSV writers for experiment records.

The paper's workflow logged every run to wandb; the reproduction's
equivalent is flat files an analysis notebook can ingest.  Exporters are
deliberately dependency-free (``csv``/``json`` from the standard
library) and record enough metadata to regenerate any figure offline.

Records can optionally embed per-run *event summaries* (the management
plane's :class:`~repro.management.events.EventLog`) and *trace
summaries* (a :class:`~repro.telemetry.Tracer`'s span statistics) so a
sweep export carries its own observability context instead of dropping
it.  JSON embeds them natively; CSV encodes them as JSON strings in
``events`` / ``trace`` columns.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .runner import ExperimentRecord

__all__ = ["record_to_dict", "records_to_json", "records_to_csv",
           "write_records", "summarize_events", "summarize_trace"]

#: Columns exported for every record (order matters for CSV).
_EXPORT_FIELDS = [
    "benchmark", "configuration", "strategy", "policy", "global_batch",
    "step_time", "epoch_time", "total_time", "throughput",
    "checkpoint_time", "staging_overhead", "gpu_utilization",
    "gpu_memory", "gpu_mem_access", "cpu_utilization", "host_memory",
    "falcon_gpu_traffic_gbs",
]


def summarize_events(log, limit: int = 50) -> dict:
    """Compact JSON-able summary of an EventLog (counts + recent tail)."""
    events = log.query() if hasattr(log, "query") else list(log)
    by_kind: dict[str, int] = {}
    for event in events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    tail = [{"time": e.time, "kind": e.kind, "actor": e.actor}
            for e in events[-limit:]]
    return {"count": len(events), "by_kind": by_kind, "tail": tail}


def summarize_trace(tracer) -> dict:
    """Compact JSON-able summary of a Tracer (per-category span totals)."""
    totals: dict[str, dict] = {}
    for span in tracer.spans:
        if span.end is None:
            continue
        key = span.category.value
        row = totals.setdefault(key, {"count": 0, "total_s": 0.0})
        row["count"] += 1
        row["total_s"] += span.duration
    return {"spans": len(tracer.spans), "instants": len(tracer.instants),
            "by_category": totals}


def record_to_dict(record: ExperimentRecord, events: Optional[dict] = None,
                   trace: Optional[dict] = None) -> dict:
    """Flatten one record to exportable scalars (no live objects).

    ``events``/``trace`` are pre-computed summaries (see
    :func:`summarize_events` / :func:`summarize_trace`) embedded as-is.
    """
    out = {name: getattr(record, name) for name in _EXPORT_FIELDS}
    if events is not None:
        out["events"] = events
    if trace is not None:
        out["trace"] = trace
    return out


def _paired(records, events, traces):
    records = list(records)
    events = list(events) if events is not None else [None] * len(records)
    traces = list(traces) if traces is not None else [None] * len(records)
    if len(events) != len(records) or len(traces) != len(records):
        raise ValueError("events/traces must align 1:1 with records")
    return records, events, traces


def records_to_json(records: Iterable[ExperimentRecord],
                    indent: int = 2,
                    events: Optional[Sequence[dict]] = None,
                    traces: Optional[Sequence[dict]] = None) -> str:
    """Serialize records as a JSON array (optionally with summaries)."""
    records, events, traces = _paired(records, events, traces)
    return json.dumps([record_to_dict(r, e, t)
                       for r, e, t in zip(records, events, traces)],
                      indent=indent)


def records_to_csv(records: Iterable[ExperimentRecord],
                   events: Optional[Sequence[dict]] = None,
                   traces: Optional[Sequence[dict]] = None) -> str:
    """Serialize records as CSV with a header row.

    Event/trace summaries, when given, ride along as JSON-encoded
    ``events``/``trace`` columns.
    """
    records, events, traces = _paired(records, events, traces)
    extra = []
    if any(e is not None for e in events):
        extra.append("events")
    if any(t is not None for t in traces):
        extra.append("trace")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_EXPORT_FIELDS + extra)
    writer.writeheader()
    for record, event, trace in zip(records, events, traces):
        row = {name: getattr(record, name) for name in _EXPORT_FIELDS}
        if "events" in extra:
            row["events"] = json.dumps(event) if event is not None else ""
        if "trace" in extra:
            row["trace"] = json.dumps(trace) if trace is not None else ""
        writer.writerow(row)
    return buffer.getvalue()


def write_records(records: Iterable[ExperimentRecord],
                  path: Union[str, Path], *,
                  events: Optional[Sequence[dict]] = None,
                  traces: Optional[Sequence[dict]] = None) -> Path:
    """Write records to ``path``; format chosen by suffix (.json/.csv).

    ``events``/``traces`` are optional per-record summary dicts (aligned
    1:1 with ``records``) embedded alongside the scalar columns.
    """
    path = Path(path)
    records = list(records)
    if path.suffix == ".json":
        path.write_text(records_to_json(records, events=events,
                                        traces=traces))
    elif path.suffix == ".csv":
        path.write_text(records_to_csv(records, events=events,
                                       traces=traces))
    else:
        raise ValueError(
            f"unsupported export suffix {path.suffix!r} (use .json/.csv)")
    return path
