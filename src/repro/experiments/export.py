"""Result export: JSON and CSV writers for experiment records.

The paper's workflow logged every run to wandb; the reproduction's
equivalent is flat files an analysis notebook can ingest.  Exporters are
deliberately dependency-free (``csv``/``json`` from the standard
library) and record enough metadata to regenerate any figure offline.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Iterable, Optional, Union

from .runner import ExperimentRecord

__all__ = ["record_to_dict", "records_to_json", "records_to_csv",
           "write_records"]

#: Columns exported for every record (order matters for CSV).
_EXPORT_FIELDS = [
    "benchmark", "configuration", "strategy", "policy", "global_batch",
    "step_time", "epoch_time", "total_time", "throughput",
    "checkpoint_time", "staging_overhead", "gpu_utilization",
    "gpu_memory", "gpu_mem_access", "cpu_utilization", "host_memory",
    "falcon_gpu_traffic_gbs",
]


def record_to_dict(record: ExperimentRecord) -> dict:
    """Flatten one record to exportable scalars (no live objects)."""
    return {name: getattr(record, name) for name in _EXPORT_FIELDS}


def records_to_json(records: Iterable[ExperimentRecord],
                    indent: int = 2) -> str:
    """Serialize records as a JSON array."""
    return json.dumps([record_to_dict(r) for r in records], indent=indent)


def records_to_csv(records: Iterable[ExperimentRecord]) -> str:
    """Serialize records as CSV with a header row."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_EXPORT_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow(record_to_dict(record))
    return buffer.getvalue()


def write_records(records: Iterable[ExperimentRecord],
                  path: Union[str, Path]) -> Path:
    """Write records to ``path``; format chosen by suffix (.json/.csv)."""
    path = Path(path)
    records = list(records)
    if path.suffix == ".json":
        path.write_text(records_to_json(records))
    elif path.suffix == ".csv":
        path.write_text(records_to_csv(records))
    else:
        raise ValueError(
            f"unsupported export suffix {path.suffix!r} (use .json/.csv)")
    return path
