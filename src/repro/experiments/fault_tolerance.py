"""Fault-tolerance study: chaos scenarios against resilient training.

The composability pitch of the paper cuts both ways: a fabric you can
recompose at runtime is also a fabric whose cables can be pulled at
runtime.  This study runs scripted chaos scenarios from
:mod:`repro.chaos` against the checkpoint-restart runtime
(:class:`~repro.training.resilience.FaultTolerantTrainingJob`) and
reports the resilience metrics the HPC fault-tolerance literature cares
about:

- **goodput** — first-time-useful samples/s over total wall time,
  versus the fault-free **raw throughput**;
- **lost work** — optimizer steps rolled back to the last checkpoint;
- **MTTR** — mean detection-to-restart time;
- the **checkpoint-cadence trade-off** — sweeping the checkpoint
  interval against a fixed fault shows the Young/Daly tension between
  checkpoint overhead (frequent) and lost work (rare).

The headline comparison is *composable vs local recovery*: on Falcon
configurations a dead GPU is hot-swapped for a chassis spare through
the management plane and training resumes at full width; local GPUs
have no spare pool, so the ring degrades to N-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..chaos import FaultEvent, FaultInjector, FaultScenario
from ..core import ComposableSystem
from ..training import (
    FaultTolerantResult,
    FaultTolerantTrainingJob,
    ResilienceConfig,
    TrainingConfig,
)
from ..workloads import get_benchmark

__all__ = ["FaultToleranceRecord", "cable_pull_scenario",
           "fault_tolerance_study", "checkpoint_cadence_sweep"]

#: Configurations whose GPUs sit behind Falcon host ports.
FALCON_CONFIGS = ("falconGPUs", "hybridGPUs")
#: Fraction of the projected run at which the default fault strikes.
_FAULT_POINT = 0.45


@dataclass(frozen=True)
class FaultToleranceRecord:
    """One resilient run under one chaos scenario."""

    benchmark: str
    configuration: str
    scenario: str
    checkpoint_interval: int
    completed: bool
    attempts: int
    faults: int
    lost_steps: int
    wall_time: float
    mttr: float
    goodput: float
    raw_throughput: float
    final_world_size: int
    recovery_actions: tuple[str, ...]

    @property
    def goodput_fraction(self) -> float:
        """Goodput relative to fault-free throughput."""
        if not self.raw_throughput:
            return 0.0
        return self.goodput / self.raw_throughput


def cable_pull_scenario(configuration: str, victim: str,
                        fault_time: float,
                        repair_delay: float) -> FaultScenario:
    """The acceptance scenario: a Falcon cable pulled mid-run.

    On Falcon configurations the H1 cable (drawer 0's uplink) is pulled
    at ``fault_time`` and re-seated ``repair_delay`` later — but the
    ``victim`` GPU's slot link dies with it and stays dead, so after
    the cable repair the ring is still one GPU short.  On local
    configurations there is no chassis cable; the same moment instead
    drops the victim GPU off the fabric outright.  Either way the
    recovery path is exercised end to end: detect, back off while the
    cable heals, then hot-swap (Falcon, spare installed) or shrink to
    N-1 (local).
    """
    events = [FaultEvent(fault_time, "gpu_drop", f"node:{victim}")]
    if configuration in FALCON_CONFIGS:
        events.insert(0, FaultEvent(fault_time, "pull_cable", "port:H1"))
        events.append(FaultEvent(fault_time + repair_delay,
                                 "reseat_cable", "port:H1"))
    return FaultScenario(f"cable-pull-{configuration}", events)


def _baseline(benchmark: str, configuration: str, sim_steps: int,
              checkpoint_interval: int):
    """Fault-free reference run (raw throughput + timing calibration).

    Runs with the same checkpoint cadence as the resilient job so its
    measured wall clock (``t_end``) projects where mid-run actually is
    — for checkpoint-heavy models the checkpoints, not the steps,
    dominate the timeline.  ``throughput`` stays the steady-state
    (checkpoint-free) samples/s either way.
    """
    system = ComposableSystem()
    return system.train(benchmark, configuration, sim_steps=sim_steps,
                        sim_checkpoints=0,
                        checkpoint_interval_steps=checkpoint_interval)


def _mid_compute_time(baseline, fraction: float = _FAULT_POINT,
                      offset_steps: float = 1.5) -> float:
    """A fault time inside a *compute* window near ``fraction`` of the run.

    Checkpoint writes dominate the wall clock for large models but keep
    no fabric flows in flight (the slow phase is the host-local storage
    write), so a fault landing there kills nothing and rolls back
    nothing.  Aiming ``offset_steps`` past the nearest checkpoint span
    lands the fault between checkpoints, where steps genuinely get lost.
    """
    target = fraction * baseline.t_end
    for _, span_end in sorted(baseline.checkpoint_spans):
        if span_end >= target:
            return span_end + offset_steps * baseline.step_time
    return target


def _run_resilient(benchmark: str, configuration: str, sim_steps: int,
                   checkpoint_interval: int, scenario: FaultScenario,
                   step_time: float, spare: bool,
                   raw_throughput: float) -> FaultToleranceRecord:
    system = ComposableSystem()
    active = system.configure(configuration)
    if spare and configuration in FALCON_CONFIGS:
        system.install_spare_gpu(drawer=0)
    injector = FaultInjector(system.env, system.topology,
                             falcon=system.falcon,
                             event_log=system.mcs.log,
                             bmc=system.mcs.bmcs[system.falcon.name])
    injector.start(scenario)
    config = TrainingConfig(
        benchmark=get_benchmark(benchmark),
        sim_steps=sim_steps,
        sim_checkpoints=0,
        checkpoint_interval_steps=checkpoint_interval,
    )
    resilience = ResilienceConfig(
        backoff_initial=max(0.25, 0.75 * step_time),
        reattach_attempts=4,
    )
    job = FaultTolerantTrainingJob(
        system.env, system.topology, system.host, list(active.gpus),
        active.storage, config, resilience=resilience,
        inventory=system.inventory, event_log=system.mcs.log)
    result: FaultTolerantResult = job.run()
    return FaultToleranceRecord(
        benchmark=benchmark,
        configuration=configuration,
        scenario=scenario.name,
        checkpoint_interval=checkpoint_interval,
        completed=result.completed,
        attempts=result.attempts,
        faults=result.faults,
        lost_steps=result.lost_steps,
        wall_time=result.wall_time,
        mttr=result.mttr,
        goodput=result.goodput,
        raw_throughput=raw_throughput,
        final_world_size=result.final_world_size,
        recovery_actions=tuple(a.kind for a in result.recovery_log),
    )


def fault_tolerance_study(benchmark: str = "bert-large",
                          configuration: str = "falconGPUs",
                          sim_steps: int = 8,
                          checkpoint_interval: int = 2,
                          spare: bool = True,
                          seed: Optional[int] = None,
                          scenario: Optional[FaultScenario] = None
                          ) -> FaultToleranceRecord:
    """Run one chaos scenario against a resilient training job.

    With no explicit ``scenario``, a ``seed`` draws a randomized (but
    fully reproducible) scenario; otherwise the scripted acceptance
    scenario (:func:`cable_pull_scenario`) is used, timed to strike at
    ~45% of the projected run.
    """
    baseline = _baseline(benchmark, configuration, sim_steps,
                         checkpoint_interval)
    step_time = baseline.step_time
    if scenario is None:
        duration = baseline.t_end
        if seed is not None:
            targets = ["port:H1"] if configuration in FALCON_CONFIGS \
                else [f"node:{g}" for g in
                      _victim_pool(configuration, baseline)]
            scenario = FaultScenario.random(seed, duration, targets)
        else:
            victim = _victim_pool(configuration, baseline)[0]
            scenario = cable_pull_scenario(
                configuration, victim,
                fault_time=_mid_compute_time(baseline),
                repair_delay=2.5 * step_time)
    return _run_resilient(benchmark, configuration, sim_steps,
                          checkpoint_interval, scenario, step_time,
                          spare, baseline.throughput)


def _victim_pool(configuration: str, baseline) -> list[str]:
    """GPU node names a scenario may kill, preferring ring position 1."""
    names = [g.name for g in baseline.gpus]
    return names[1:] + names[:1]


def checkpoint_cadence_sweep(benchmark: str = "bert-large",
                             configuration: str = "falconGPUs",
                             intervals: Sequence[int] = (1, 2, 4),
                             sim_steps: int = 10,
                             flap_down_steps: float = 2.0
                             ) -> list[FaultToleranceRecord]:
    """Goodput vs checkpoint cadence under a transient host-port flap.

    The fault is *transient* (the H1 cable flaps and self-heals), so
    recovery is pure checkpoint-restart: no ring surgery, and the sweep
    isolates the Young/Daly trade-off — short intervals pay checkpoint
    stalls every few steps, long intervals replay more lost work.
    Requires a Falcon configuration (the flap targets a host port).
    """
    if configuration not in FALCON_CONFIGS:
        raise ValueError(
            "cadence sweep flaps a Falcon host port; use one of "
            f"{FALCON_CONFIGS}")
    records = []
    for interval in intervals:
        # Per-cadence calibration: the flap must land in a *compute*
        # window of this interval's own timeline (a flap during a
        # checkpoint's storage write finds no fabric flows and heals
        # unnoticed), so every cadence takes exactly one mid-run hit.
        baseline = _baseline(benchmark, configuration, sim_steps,
                             interval)
        step_time = baseline.step_time
        # Mid-gap strike: expected lost work scales with the interval,
        # the Young/Daly counterweight to checkpoint overhead.
        at = _mid_compute_time(baseline,
                               offset_steps=0.6 * interval)
        scenario = FaultScenario(
            f"h1-flap-ckpt{interval}",
            [FaultEvent(at, "port_flap", "port:H1",
                        {"down": flap_down_steps * step_time})])
        records.append(_run_resilient(
            benchmark, configuration, sim_steps, interval, scenario,
            step_time, spare=False, raw_throughput=baseline.throughput))
    return records
