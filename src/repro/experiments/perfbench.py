"""Performance benchmark suite for the simulator itself.

Two scenarios track the perf trajectory of the reproduction:

- **plan_eval** — sim-steps/second evaluating one compiled step plan,
  fast path vs the event-loop executor, per (configuration × strategy
  variant).  This is the microbenchmark for the
  :mod:`repro.plan.fastpath` engine.
- **fig16_grid** — wall-clock seconds to produce the Fig. 16
  seconds-per-sample grid: the serial event-loop study (the pre-fastpath
  baseline, which trains every cell through the full DES) vs the
  fast-path evaluation of each cell's step plan.  Training steps are
  deterministic and identical, so one fast-path evaluation per cell
  yields the same grid values to 1e-9 — the benchmark verifies that
  while it measures.

``python -m repro perfbench [--smoke] [--jobs N]`` runs both and writes
``BENCH_<date>.json`` at the current working directory (the repo root in
CI), so perf regressions show up as a diffable artifact.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

from ..plan.fastpath import _executor_timing, fastpath_schedule

__all__ = ["run_perfbench", "write_bench_report", "bench_plan_eval",
           "bench_fig16_grid", "bench_batched_grid",
           "bench_whatif_retime", "bench_flow_churn",
           "collect_provenance", "BATCH_FACTORS"]

#: (config, variant-name) cells used in smoke mode: the cheap end of the
#: grid plus one contended falcon cell, enough to exercise both engines.
_SMOKE_VARIANTS = ("DP-FP16", "DDP-FP16", "Pipeline-FP16")


def _grid_variants(smoke: bool):
    from .software_opts import VARIANTS
    if smoke:
        return tuple(v for v in VARIANTS if v.name in _SMOKE_VARIANTS)
    return VARIANTS


def _grid_configs(smoke: bool):
    return ("localGPUs",) if smoke else ("localGPUs", "falconGPUs")


def _build_job(config_name: str, variant, plan_passes: Optional[str]):
    from ..core import ComposableSystem
    from ..training import TrainingConfig, TrainingJob
    from ..workloads import get_benchmark

    system = ComposableSystem()
    active = system.configure(config_name)
    cfg = TrainingConfig(
        benchmark=get_benchmark("bert-large"),
        strategy=variant.strategy_factory(),
        policy=variant.policy,
        global_batch=variant.global_batch,
        plan_passes=plan_passes,
    )
    return TrainingJob(system.env, system.topology, system.host,
                       list(active.gpus), active.storage, cfg)


def bench_plan_eval(smoke: bool = False, reps: int = 3) -> list[dict]:
    """Steps/second per cell: fast path vs event-loop executor.

    The fast path is pure, so it re-evaluates the same job's plan each
    rep; the executor leg replays the plan on the same live environment,
    exactly as the training loop replays it step after step.
    """
    rows = []
    for config in _grid_configs(smoke):
        for variant in _grid_variants(smoke):
            job = _build_job(config, variant, None)
            t0 = time.perf_counter()
            for _ in range(reps):
                timing = fastpath_schedule(job.step_plan, job._exec_ctx)
            fast_s = (time.perf_counter() - t0) / reps

            job = _build_job(config, variant, None)
            t0 = time.perf_counter()
            for _ in range(reps):
                _executor_timing(job.step_plan, job._exec_ctx)
            slow_s = (time.perf_counter() - t0) / reps

            rows.append({
                "configuration": config,
                "variant": variant.name,
                "ops": len(job.step_plan),
                "sim_step_seconds": timing.makespan,
                "fastpath_steps_per_s": 1.0 / fast_s if fast_s else 0.0,
                "executor_steps_per_s": 1.0 / slow_s if slow_s else 0.0,
                "speedup": slow_s / fast_s if fast_s else 0.0,
            })
    return rows


def _fastpath_grid_value(args: tuple) -> float:
    """Seconds-per-sample of one grid cell via the fast path.

    Module-level so ``--jobs`` can map it across a process pool.
    """
    from .software_opts import VARIANTS

    config, variant_name = args
    variant = next(v for v in VARIANTS if v.name == variant_name)
    job = _build_job(config, variant, None)
    timing = fastpath_schedule(job.step_plan, job._exec_ctx)
    return timing.makespan / variant.global_batch


def bench_fig16_grid(smoke: bool = False, sim_steps: Optional[int] = None,
                     jobs: int = 1) -> dict:
    """Wall-clock of the Fig. 16 grid: event-loop study vs fast path.

    The baseline is the pre-fastpath serial path — every cell trained
    through the full DES (warmup + ``sim_steps`` steps + checkpoint).
    The fast path computes the identical grid from one pure plan
    evaluation per cell; both value sets are cross-checked at 1e-9.
    """
    from .software_opts import software_optimization_study

    configs = _grid_configs(smoke)
    variants = _grid_variants(smoke)
    if sim_steps is None:
        sim_steps = 4 if smoke else 8
    variant_names = [v.name for v in variants]
    cells = [(config, name) for config in configs
             for name in variant_names]

    # Serial event-loop baseline (no cache, no fan-out: PR-4 behavior).
    # Restricting the study to the same variant subset keeps smoke mode
    # honest — both legs cover exactly the same cells.
    t0 = time.perf_counter()
    baseline_grid = software_optimization_study(
        configurations=configs, sim_steps=sim_steps, variants=variants)
    baseline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast_values = [_fastpath_grid_value(cell) for cell in cells]
    fastpath_s = time.perf_counter() - t0

    fastpath_jobs_s = None
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor
        t0 = time.perf_counter()
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            list(pool.map(_fastpath_grid_value, cells))
        fastpath_jobs_s = time.perf_counter() - t0

    fast_grid: dict = {}
    for (config, name), value in zip(cells, fast_values):
        fast_grid.setdefault(config, {})[name] = value
    # Plan-level equivalence is 1e-9 (see the golden fastpath tests);
    # grid-vs-training tolerates 1e-5 because DataParallel cells see
    # ~1e-6 relative drift — inside a training run, the master's
    # broadcast contends slightly with the dataloader's staging
    # transfers, which a standalone step-plan evaluation excludes.
    max_rel_err = max(
        abs(fast_grid[c][n] - baseline_grid[c][n])
        / abs(baseline_grid[c][n])
        for c in baseline_grid for n in baseline_grid[c])
    values_match = max_rel_err <= 1e-5

    best_fast = min(x for x in (fastpath_s, fastpath_jobs_s)
                    if x is not None)
    out = {
        "sim_steps": sim_steps,
        "cells": len(cells),
        "baseline_eventloop_s": baseline_s,
        "fastpath_s": fastpath_s,
        "jobs": jobs,
        "speedup": baseline_s / best_fast if best_fast else 0.0,
        "values_match": values_match,
        "max_rel_err": max_rel_err,
        "grid": fast_grid,
    }
    # Only a multi-process run measures the pooled leg; a serial run
    # omits the key entirely rather than writing JSON ``null`` into the
    # committed BENCH ledger (regression diffs stay schema-stable).
    if fastpath_jobs_s is not None:
        out["fastpath_jobs_s"] = fastpath_jobs_s
    return out


#: Width-16 compute-scale sweep around 1.0 — the widened Fig. 16 grid
#: the batched evaluator is benchmarked (and gated) on.
BATCH_FACTORS = tuple(round(0.94 + 0.008 * i, 3) for i in range(16))


def bench_batched_grid(smoke: bool = False,
                       factors=BATCH_FACTORS) -> dict:
    """Widened Fig. 16 grid: batched tape replay vs per-cell fast path.

    Every grid cell is widened into ``len(factors)`` compute-scaled
    lanes (a sensitivity sweep around the measured costs — the shape
    ``repro autotune`` and the what-if sweeps evaluate).  The baseline
    evaluates each lane with the scalar fast path; the batched leg
    evaluates all lanes of a cell in one
    :func:`~repro.plan.batched.evaluate_batch` call, so structure
    groups record once and replay vectorized.  Makespans are
    cross-checked at 1e-9 while the wall-clocks are measured, and the
    event-loop executor is probed once per cell to estimate the
    end-to-end speedup over the pre-fastpath engine.
    """
    from ..plan.batched import evaluate_batch
    from ..telemetry.profile import scale_plan

    cells = []
    lanes = []
    executor_per_eval = 0.0
    # Both backends always: the contended falcon cells are where group
    # recording amortizes (and what the >=3x gate floor is set on);
    # smoke only trims the variant list.
    for config in _grid_configs(False):
        for variant in _grid_variants(smoke):
            job = _build_job(config, variant, None)
            for f in factors:
                lanes.append((scale_plan(job.step_plan, "compute", f),
                              job._exec_ctx))
            # Event-loop probe on a throwaway job: the executor mutates
            # env/device state, so it must not share the lanes' context.
            probe = _build_job(config, variant, None)
            t0 = time.perf_counter()
            _executor_timing(probe.step_plan, probe._exec_ctx)
            executor_per_eval += time.perf_counter() - t0
            cells.append({"configuration": config,
                          "variant": variant.name})

    t0 = time.perf_counter()
    scalar = [fastpath_schedule(plan, ctx) for plan, ctx in lanes]
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch = evaluate_batch(lanes)
    batched_s = time.perf_counter() - t0

    max_rel_err = max(
        abs(b.makespan - s.makespan) / abs(s.makespan)
        for b, s in zip(batch.timings, scalar))
    eventloop_est_s = executor_per_eval * len(factors)
    return {
        "cells": len(cells),
        "factors": list(factors),
        "lanes": len(lanes),
        "groups": batch.groups,
        "batched_lanes": batch.batched_lanes,
        "fallback_lanes": batch.fallback_lanes,
        "diverged_lanes": len(batch.diverged),
        "scalar_fastpath_s": scalar_s,
        "batched_s": batched_s,
        "speedup_vs_scalar": scalar_s / batched_s if batched_s else 0.0,
        "eventloop_est_s": eventloop_est_s,
        "speedup_vs_eventloop_est": eventloop_est_s / batched_s
        if batched_s else 0.0,
        "values_match": max_rel_err <= 1e-9,
        "max_rel_err": max_rel_err,
    }


def bench_whatif_retime(smoke: bool = False, reps: int = 3) -> dict:
    """What-if re-timing: incremental dirty-cone replay vs full replay.

    One representative cell per configuration; every scalable cost
    bucket is perturbed (factor 0.5) and re-timed both ways.  The two
    replays are cross-checked at 1e-9 on the predicted makespan; the
    mean dirty-cone fraction says how much of the plan the incremental
    path actually touched.  Reported for trend-tracking, not gated —
    the ratio depends on which buckets a plan exercises.
    """
    from ..telemetry.profile import (
        SCALE_BUCKETS,
        predict_scaled_timing,
        retime_incremental,
    )

    variant = next(v for v in _grid_variants(True)
                   if v.name == "DDP-FP16")
    rows = []
    for config in _grid_configs(smoke):
        job = _build_job(config, variant, None)
        plan, ctx = job.step_plan, job._exec_ctx
        base = fastpath_schedule(plan, ctx)

        full_s = incremental_s = 0.0
        max_rel_err = 0.0
        cone_fractions = []
        for bucket in SCALE_BUCKETS:
            t0 = time.perf_counter()
            for _ in range(reps):
                full = predict_scaled_timing(plan, base, ctx,
                                             bucket, 0.5)
            full_s += (time.perf_counter() - t0) / reps

            t0 = time.perf_counter()
            for _ in range(reps):
                inc = retime_incremental(plan, base, ctx, bucket, 0.5)
            incremental_s += (time.perf_counter() - t0) / reps

            cone_fractions.append(inc.cone_fraction)
            if full.makespan:
                max_rel_err = max(
                    max_rel_err,
                    abs(inc.timing.makespan - full.makespan)
                    / abs(full.makespan))
        rows.append({
            "configuration": config,
            "variant": variant.name,
            "buckets": len(SCALE_BUCKETS),
            "full_s": full_s,
            "incremental_s": incremental_s,
            "speedup": full_s / incremental_s if incremental_s else 0.0,
            "mean_cone_fraction":
                sum(cone_fractions) / len(cone_fractions),
            "values_match": max_rel_err <= 1e-9,
            "max_rel_err": max_rel_err,
        })
    return {"rows": rows}


class _ChurnSegment:
    """Duck-typed flow segment: just a directed key and a capacity."""

    __slots__ = ("key", "capacity")

    def __init__(self, key, capacity: float):
        self.key = key
        self.capacity = capacity


class _ChurnFlow:
    """Duck-typed flow for the solver hot path (no event machinery)."""

    __slots__ = ("segments", "rate")

    def __init__(self, segments):
        self.segments = tuple(segments)
        self.rate = 0.0


def _churn_flow(links: int, capacity: float, i: int) -> _ChurnFlow:
    """Flow ``i``: one link, or an adjacent pair for every fourth flow.

    Pairing ``2k`` with ``2k+1`` keeps contention components at two
    links, the realistic fleet shape (many small independent jobs) the
    incremental solver exploits.
    """
    first = i % links
    segments = [_ChurnSegment(("churn", first), capacity)]
    if i % 4 == 0:
        segments.append(_ChurnSegment(("churn", first ^ 1), capacity))
    return _ChurnFlow(segments)


def bench_flow_churn(flows: int = 1000, links: int = 64,
                     churn_ops: int = 300, seed: int = 7) -> dict:
    """1k-flow churn: incremental component re-solve vs batch refill.

    Builds ``flows`` concurrent flows spread over ``links`` independent
    directed capacities, then performs ``churn_ops`` remove-one/add-one
    cycles — the fleet steady state, where one job's transfer finishing
    must not cost a full re-solve over every other job's flows.  Both
    legs run the same arithmetic (:mod:`repro.fabric.maxmin`); the
    incremental leg re-rates only the touched component and is
    cross-checked against the batch oracle at 1e-9 afterwards.
    """
    import random

    from ..fabric.maxmin import MaxMinSolver

    capacity = 10e9

    def build() -> tuple:
        solver = MaxMinSolver()
        population = [_churn_flow(links, capacity, i)
                      for i in range(flows)]
        for flow in population:
            solver.add(flow)
        return solver, population

    def churn(solver, population, full: bool) -> float:
        rng = random.Random(seed)
        next_id = flows
        solver.solve_full() if full else solver.solve()
        t0 = time.perf_counter()
        for _ in range(churn_ops):
            victim = population.pop(rng.randrange(len(population)))
            solver.remove(victim)
            fresh = _churn_flow(links, capacity, next_id)
            next_id += 1
            population.append(fresh)
            solver.add(fresh)
            if full:
                solver.solve_full()
            else:
                solver.solve()
        return time.perf_counter() - t0

    solver, population = build()
    incremental_s = churn(solver, population, full=False)
    try:
        solver.assert_equivalent(1e-9)
        equivalent = True
    except AssertionError:
        equivalent = False

    solver_full, population_full = build()
    batch_s = churn(solver_full, population_full, full=True)

    return {
        "flows": flows,
        "links": links,
        "churn_ops": churn_ops,
        "incremental_s": incremental_s,
        "batch_s": batch_s,
        "speedup": batch_s / incremental_s if incremental_s else 0.0,
        "equivalent": equivalent,
    }


def _git_provenance() -> dict:
    """Commit SHA + dirty flag of the working tree, or ``unknown``.

    Subprocess failures (no git binary, not a repo, CI shallow oddities)
    degrade to ``unknown`` rather than failing the benchmark run.
    """
    import subprocess
    out = {"git_sha": "unknown", "git_dirty": None}
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parent)
        if sha.returncode == 0:
            out["git_sha"] = sha.stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"], capture_output=True,
                text=True, timeout=10,
                cwd=Path(__file__).resolve().parent)
            if status.returncode == 0:
                out["git_dirty"] = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    return out


def collect_provenance() -> dict:
    """Attribution block for ``BENCH_*.json``: what produced these numbers.

    Regression comparisons (:mod:`repro.experiments.regress`) are only
    meaningful when the baseline and the fresh run can be attributed to
    a commit, an engine stack, and a cache state.
    """
    import os

    import numpy

    import repro
    from ..training.loop import plan_compile_stats

    provenance = {
        "repro_version": repro.__version__,
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "plan_compile_cache": dict(plan_compile_stats()),
        "result_cache_dir": os.environ.get("REPRO_CACHE_DIR"),
    }
    provenance.update(_git_provenance())
    return provenance


def run_perfbench(smoke: bool = False, jobs: int = 1,
                  reps: Optional[int] = None) -> dict:
    """Run every scenario and assemble the benchmark report."""
    if reps is None:
        reps = 2 if smoke else 3
    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    report = {
        "meta": {
            "date": time.strftime("%Y-%m-%d"),
            "started": started,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": __import__("os").cpu_count(),
            "smoke": smoke,
            "jobs": jobs,
        },
        "plan_eval": bench_plan_eval(smoke=smoke, reps=reps),
        "fig16_grid": bench_fig16_grid(smoke=smoke, jobs=jobs),
        # Always the full width-16 sweep (the acceptance scale); smoke
        # only trims the cell set.
        "batched_grid": bench_batched_grid(smoke=smoke),
        "whatif_retime": bench_whatif_retime(smoke=smoke),
        # Always the full 1k flows (the acceptance scale); smoke only
        # trims the churn cycle count.
        "flow_churn": bench_flow_churn(
            churn_ops=100 if smoke else 300),
    }
    # End-to-end estimate: what the widened grid would cost through the
    # pre-fastpath serial study (one full event-loop cell train per
    # lane, at the measured per-cell study cost) vs the batched replay.
    grid, batched = report["fig16_grid"], report["batched_grid"]
    study_per_eval = grid["baseline_eventloop_s"] / grid["cells"]
    batched["eventloop_study_est_s"] = study_per_eval * batched["lanes"]
    batched["speedup_vs_eventloop_study"] = (
        batched["eventloop_study_est_s"] / batched["batched_s"]
        if batched["batched_s"] else 0.0)
    import repro
    report["meta"]["repro_version"] = repro.__version__
    # Provenance is collected *after* the scenarios so the compile-cache
    # stats describe this run's cache behavior, not a cold process.
    report["meta"]["provenance"] = collect_provenance()
    return report


def write_bench_report(report: dict,
                       directory: Optional[str] = None) -> Path:
    """Write ``BENCH_<date>.json`` (returns the path written)."""
    root = Path(directory) if directory else Path.cwd()
    path = root / f"BENCH_{report['meta']['date']}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
