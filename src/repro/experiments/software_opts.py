"""Software-level optimization study on BERT-large (paper Fig. 16).

Reproduces §V-C.4: BERT-large SQuAD fine-tuning under

- ``DP-FP32`` — single-process DataParallel, FP32 (the naive baseline;
  batch capped at 2/GPU by FP32 activations + full optimizer state),
- ``DP-FP16`` — DataParallel with mixed precision (batch back to 6/GPU),
- ``DDP-FP32`` — DistributedDataParallel, FP32,
- ``DDP-FP16`` — the default used everywhere else in the paper,
- ``Sharded-FP16`` — ZeRO-style sharding; optimizer-state partitioning
  lifts the per-GPU batch from 6 to 10 (global 48 -> 80),

on both the localGPUs and falconGPUs configurations.  Speedups are
reported as training-time reduction per sample (throughput ratios), the
way the paper summarizes them ("mixed precision provides ... more than
50% in all cases and more than 70% in the case of Falcon-attached GPUs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..training import (
    AMP_POLICY,
    DataParallel,
    DistributedDataParallel,
    FP32_POLICY,
    PipelineParallel,
    ShardedDataParallel,
)

__all__ = ["OptVariant", "VARIANTS", "software_optimization_study",
           "time_reduction_pct", "OptimizedProfile", "OptimizedDDPStudy",
           "OPT_PIPELINES", "optimized_ddp_study"]


@dataclass(frozen=True)
class OptVariant:
    """One bar of Fig. 16."""

    name: str
    strategy_factory: type
    policy: object
    global_batch: int


#: FP32 batches are memory-capped (FP32 activations + 8-byte/param
#: optimizer state); FP16 variants run the paper's 48; sharded runs 80
#: (10 per GPU, paper §V-C.4).  Pipeline-FP16 extends the study past the
#: paper: GPipe-style stage parallelism at the paper's batch, compiled to
#: the same plan IR and executed by the same generic executor as the
#: data-parallel variants.
VARIANTS: tuple[OptVariant, ...] = (
    OptVariant("DP-FP32", DataParallel, FP32_POLICY, 16),
    OptVariant("DP-FP16", DataParallel, AMP_POLICY, 48),
    OptVariant("DDP-FP32", DistributedDataParallel, FP32_POLICY, 16),
    OptVariant("DDP-FP16", DistributedDataParallel, AMP_POLICY, 48),
    OptVariant("Sharded-FP16", ShardedDataParallel, AMP_POLICY, 80),
    OptVariant("Pipeline-FP16", PipelineParallel, AMP_POLICY, 48),
)


def software_optimization_study(configurations=("localGPUs", "falconGPUs"),
                                sim_steps: int = 8,
                                jobs: int = 1, cache=None,
                                variants=None,
                                ) -> dict[str, dict[str, float]]:
    """Per-configuration seconds-per-sample for every Fig. 16 variant.

    Returns ``{configuration: {variant: time_per_sample_seconds}}`` —
    time per sample is the epoch-time proxy (fine-tuning runs a fixed
    sample count, so per-sample time ratios equal training-time ratios).

    ``jobs``/``cache`` fan the grid out across processes and memoize
    cells on disk (see :mod:`repro.experiments.parallel`).
    """
    from .parallel import experiment_cell, run_cells

    configurations = list(configurations)
    variants = list(variants) if variants is not None else list(VARIANTS)
    cells = [
        experiment_cell(
            "bert-large", config,
            strategy=variant.strategy_factory(),
            policy=variant.policy,
            global_batch=variant.global_batch,
            sim_steps=sim_steps)
        for config in configurations for variant in variants
    ]
    values = run_cells(cells, jobs=jobs, cache=cache)
    out: dict[str, dict[str, float]] = {}
    flat = iter(values)
    for config in configurations:
        out[config] = {variant.name: 1.0 / next(flat)["throughput"]
                       for variant in variants}
    return out


def time_reduction_pct(slow: float, fast: float) -> float:
    """Training-time reduction (%) going from ``slow`` to ``fast``."""
    return 100.0 * (1.0 - fast / slow)


# -- the optimized-plan extension of Fig. 16 --------------------------------

#: Pipelines the optimized study compares (name -> ``plan_passes`` spec).
OPT_PIPELINES: tuple[tuple[str, Optional[str]], ...] = (
    ("none", None),
    ("bucketing+overlap", "bucketing,overlap"),
    ("all", "all"),
)


@dataclass
class OptimizedProfile:
    """One pass pipeline's measured DDP profile."""

    pipeline: str
    #: Steady-state seconds per optimizer step.
    step_time: float
    #: Mean exposed (non-overlapped) sync seconds per steady step, from
    #: rank 0's ``exposed-sync`` spans.
    exposed_sync: float
    #: Seconds per sample (the Fig. 16 metric).
    time_per_sample: float


@dataclass
class OptimizedDDPStudy:
    """The software_opts variant the plan passes add: optimized DDP.

    Runs BERT-large DDP-FP16 on Falcon-attached GPUs under each pass
    pipeline and measures how much of the exposed gradient-sync time the
    optimizing plan layer recovers — the same lever Fig. 16 pulls with
    bucketing/FP16, now applied as explicit plan rewrites.
    """

    benchmark: str
    configuration: str
    profiles: dict[str, OptimizedProfile] = field(default_factory=dict)
    trace_path: Optional[str] = None

    @property
    def baseline(self) -> OptimizedProfile:
        return self.profiles["none"]

    def sync_reduction_pct(self, pipeline: str) -> float:
        """Exposed-sync reduction of ``pipeline`` vs the no-pass plan."""
        base = self.baseline.exposed_sync
        if base <= 0:
            return 0.0
        return time_reduction_pct(base, self.profiles[pipeline].exposed_sync)

    def step_reduction_pct(self, pipeline: str) -> float:
        """Step-time reduction of ``pipeline`` vs the no-pass plan."""
        return time_reduction_pct(self.baseline.step_time,
                                  self.profiles[pipeline].step_time)


def _exposed_sync_per_step(run) -> float:
    """Mean exposed-sync seconds per steady step on rank 0's track."""
    sync = [s for s in run.tracer.spans
            if s.name == "exposed-sync" and s.track == run.track
            and s.end is not None]
    steady = run.steady_steps
    if not steady:
        return 0.0
    total = 0.0
    for step in steady:
        total += sum(min(s.end, step.end) - max(s.start, step.start)
                     for s in sync
                     if s.end > step.start and s.start < step.end)
    return total / len(steady)


def optimized_ddp_study(benchmark: str = "bert-large",
                        configuration: str = "falconGPUs",
                        sim_steps: int = 6,
                        pipelines=OPT_PIPELINES,
                        trace_out: Optional[str] = None,
                        jobs: int = 1, cache=None,
                        ) -> OptimizedDDPStudy:
    """Measure the optimizing plan passes on the Falcon DDP gap.

    Profiles are computed as cacheable cells (``jobs``/``cache`` fan out
    and memoize them); with a warm cache the study executes zero
    simulations.  When ``trace_out`` is set, the *last* — most
    optimized — pipeline additionally runs live with a wired tracer so
    its Chrome trace can be exported (that run bypasses the cache: spans
    are not cacheable scalars).
    """
    from .parallel import opt_profile_cell, run_cells

    pipelines = list(pipelines)
    study = OptimizedDDPStudy(benchmark=benchmark,
                              configuration=configuration)
    cells = [opt_profile_cell(benchmark, configuration, sim_steps,
                              name, spec)
             for name, spec in pipelines]
    values = run_cells(cells, jobs=jobs, cache=cache)
    for (name, _spec), value in zip(pipelines, values):
        study.profiles[name] = OptimizedProfile(
            pipeline=name,
            step_time=value["step_time"],
            exposed_sync=value["exposed_sync"],
            time_per_sample=value["time_per_sample"])
    if trace_out and pipelines:
        from ..telemetry import write_chrome_trace
        from .tracing import traced_run
        name, spec = pipelines[-1]
        run = traced_run(
            benchmark, configuration, sim_steps=sim_steps,
            strategy=DistributedDataParallel(), policy=AMP_POLICY,
            plan_passes=spec)
        study.trace_path = str(write_chrome_trace(run.tracer, trace_out))
    return study
