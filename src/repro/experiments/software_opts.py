"""Software-level optimization study on BERT-large (paper Fig. 16).

Reproduces §V-C.4: BERT-large SQuAD fine-tuning under

- ``DP-FP32`` — single-process DataParallel, FP32 (the naive baseline;
  batch capped at 2/GPU by FP32 activations + full optimizer state),
- ``DP-FP16`` — DataParallel with mixed precision (batch back to 6/GPU),
- ``DDP-FP32`` — DistributedDataParallel, FP32,
- ``DDP-FP16`` — the default used everywhere else in the paper,
- ``Sharded-FP16`` — ZeRO-style sharding; optimizer-state partitioning
  lifts the per-GPU batch from 6 to 10 (global 48 -> 80),

on both the localGPUs and falconGPUs configurations.  Speedups are
reported as training-time reduction per sample (throughput ratios), the
way the paper summarizes them ("mixed precision provides ... more than
50% in all cases and more than 70% in the case of Falcon-attached GPUs").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ComposableSystem
from ..training import (
    AMP_POLICY,
    DataParallel,
    DistributedDataParallel,
    FP32_POLICY,
    PipelineParallel,
    ShardedDataParallel,
)

__all__ = ["OptVariant", "VARIANTS", "software_optimization_study",
           "time_reduction_pct"]


@dataclass(frozen=True)
class OptVariant:
    """One bar of Fig. 16."""

    name: str
    strategy_factory: type
    policy: object
    global_batch: int


#: FP32 batches are memory-capped (FP32 activations + 8-byte/param
#: optimizer state); FP16 variants run the paper's 48; sharded runs 80
#: (10 per GPU, paper §V-C.4).  Pipeline-FP16 extends the study past the
#: paper: GPipe-style stage parallelism at the paper's batch, compiled to
#: the same plan IR and executed by the same generic executor as the
#: data-parallel variants.
VARIANTS: tuple[OptVariant, ...] = (
    OptVariant("DP-FP32", DataParallel, FP32_POLICY, 16),
    OptVariant("DP-FP16", DataParallel, AMP_POLICY, 48),
    OptVariant("DDP-FP32", DistributedDataParallel, FP32_POLICY, 16),
    OptVariant("DDP-FP16", DistributedDataParallel, AMP_POLICY, 48),
    OptVariant("Sharded-FP16", ShardedDataParallel, AMP_POLICY, 80),
    OptVariant("Pipeline-FP16", PipelineParallel, AMP_POLICY, 48),
)


def software_optimization_study(configurations=("localGPUs", "falconGPUs"),
                                sim_steps: int = 8,
                                ) -> dict[str, dict[str, float]]:
    """Per-configuration seconds-per-sample for every Fig. 16 variant.

    Returns ``{configuration: {variant: time_per_sample_seconds}}`` —
    time per sample is the epoch-time proxy (fine-tuning runs a fixed
    sample count, so per-sample time ratios equal training-time ratios).
    """
    out: dict[str, dict[str, float]] = {}
    for config in configurations:
        out[config] = {}
        for variant in VARIANTS:
            system = ComposableSystem()
            result = system.train(
                "bert-large",
                configuration=config,
                strategy=variant.strategy_factory(),
                policy=variant.policy,
                global_batch=variant.global_batch,
                sim_steps=sim_steps,
            )
            out[config][variant.name] = 1.0 / result.throughput
    return out


def time_reduction_pct(slow: float, fast: float) -> float:
    """Training-time reduction (%) going from ``slow`` to ``fast``."""
    return 100.0 * (1.0 - fast / slow)
