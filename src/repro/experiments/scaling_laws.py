"""Parametric model-size scaling of the PCIe-switching overhead.

The paper's Fig. 11 discussion: "We can see the correlation between the
overhead and the size of the model."  Its evidence is five scattered
benchmarks; these sweeps make the relationship parametric — and sharpen
it.  The overhead actually tracks the **communication-to-compute ratio**,
not raw parameter count:

- :func:`overhead_vs_model_size` sweeps encoder *depth* and
  :func:`overhead_vs_width` sweeps hidden *width*, both at a fixed
  per-GPU batch.  Counter-intuitively the overhead mildly *falls* with
  size along both axes: the fixed-vocabulary embedding table contributes
  gradient traffic but almost no FLOPs, so the small members of each
  family are relatively more communication-bound.
- :func:`overhead_vs_batch` sweeps the per-GPU batch on BERT-large and
  shows the real mediator: compute scales with the batch while gradient
  volume does not, so overhead collapses as the batch grows.  Larger
  models cannot grow their batch (device memory), which is *why* the
  paper's five benchmarks line up as "bigger model, more overhead" —
  model size acts through the memory-limited batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ComposableSystem
from ..devices.gpu import Precision
from ..training import DistributedDataParallel, TrainingConfig, TrainingJob
from ..workloads import SQUAD_V11, bert
from ..workloads.registry import Benchmark

__all__ = ["ScalingPoint", "BatchPoint", "overhead_vs_model_size",
           "overhead_vs_width", "overhead_vs_batch"]


@dataclass(frozen=True)
class ScalingPoint:
    """One model size on the overhead curve."""

    num_layers: int
    params_m: float
    local_step_time: float
    falcon_step_time: float

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.falcon_step_time / self.local_step_time - 1.0)


def _bert_family_benchmark(num_layers: int, hidden: int,
                           heads: int) -> Benchmark:
    """An ad-hoc registry entry for one family member."""
    return Benchmark(
        key=f"bert-{num_layers}L",
        display_name=f"BERT-{num_layers}L",
        domain="nlp",
        model_builder=lambda: bert(f"BERT-{num_layers}L", hidden,
                                   num_layers, heads, seq_len=384),
        dataset=SQUAD_V11,
        global_batch=48,
        paper_batch_size=48,
        epochs=2,
        efficiency={Precision.FP16: 0.220, Precision.FP32: 0.55},
        paper_depth=num_layers,
        paper_params_m=0.0,
        seq_len=384,
    )


def _measure(bench: Benchmark, sim_steps: int) -> dict[str, float]:
    steps = {}
    for configuration in ("localGPUs", "falconGPUs"):
        system = ComposableSystem()
        active = system.configure(configuration)
        config = TrainingConfig(benchmark=bench,
                                strategy=DistributedDataParallel(),
                                sim_steps=sim_steps,
                                sim_checkpoints=0)
        job = TrainingJob(system.env, system.topology, system.host,
                          list(active.gpus), active.storage, config)
        steps[configuration] = job.run().step_time
    return steps


def overhead_vs_model_size(layer_counts=(4, 8, 16, 24),
                           hidden: int = 1024, heads: int = 16,
                           sim_steps: int = 6) -> list[ScalingPoint]:
    """Sweep encoder *depth*; measure falcon overhead at each size.

    The per-GPU batch is held at BERT-large's 6 so only the gradient
    volume (i.e. parameter count) varies across points.
    """
    points: list[ScalingPoint] = []
    for num_layers in layer_counts:
        bench = _bert_family_benchmark(num_layers, hidden, heads)
        steps = _measure(bench, sim_steps)
        points.append(ScalingPoint(
            num_layers=num_layers,
            params_m=bench.build().params / 1e6,
            local_step_time=steps["localGPUs"],
            falcon_step_time=steps["falconGPUs"],
        ))
    return points


@dataclass(frozen=True)
class BatchPoint:
    """One per-GPU batch size on the overhead curve."""

    batch_per_gpu: int
    local_step_time: float
    falcon_step_time: float

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.falcon_step_time / self.local_step_time - 1.0)


def overhead_vs_batch(batches=(2, 4, 6), benchmark_key: str = "bert-large",
                      sim_steps: int = 6,
                      accumulation_for=frozenset()) -> list[BatchPoint]:
    """Sweep the per-GPU batch on one model; gradient volume is constant
    so the communication-to-compute ratio (and the falcon overhead)
    falls as the batch grows."""
    from ..workloads import get_benchmark
    bench = get_benchmark(benchmark_key)
    points: list[BatchPoint] = []
    for per_gpu in batches:
        steps = {}
        for configuration in ("localGPUs", "falconGPUs"):
            system = ComposableSystem()
            active = system.configure(configuration)
            config = TrainingConfig(
                benchmark=bench,
                strategy=DistributedDataParallel(),
                global_batch=per_gpu * 8,
                sim_steps=sim_steps,
                sim_checkpoints=0,
                accumulation_steps=2 if per_gpu in accumulation_for else 1,
            )
            job = TrainingJob(system.env, system.topology, system.host,
                              list(active.gpus), active.storage, config)
            steps[configuration] = job.run().step_time
        points.append(BatchPoint(
            batch_per_gpu=per_gpu,
            local_step_time=steps["localGPUs"],
            falcon_step_time=steps["falconGPUs"],
        ))
    return points


def overhead_vs_width(widths=(256, 512, 768, 1024), num_layers: int = 12,
                      sim_steps: int = 6) -> list[ScalingPoint]:
    """Sweep hidden *width* at fixed depth (the BERT-base -> BERT-large
    axis); overhead grows with width as GEMM parameters dilute the
    attention FLOPs."""
    points: list[ScalingPoint] = []
    for hidden in widths:
        heads = max(4, hidden // 64)
        bench = _bert_family_benchmark(num_layers, hidden, heads)
        steps = _measure(bench, sim_steps)
        points.append(ScalingPoint(
            num_layers=num_layers,
            params_m=bench.build().params / 1e6,
            local_step_time=steps["localGPUs"],
            falcon_step_time=steps["falconGPUs"],
        ))
    return points
