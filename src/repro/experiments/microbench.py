"""GPU-to-GPU microbenchmarks (paper Table IV).

The analog of NVIDIA's ``p2pBandwidthLatencyTest``: for the three pair
classes of the experimental topology —

- **L-L**: NVLink-adjacent local GPU pairs,
- **F-L**: a Falcon GPU and a local GPU (crossing the CDFP host link),
- **F-F**: two Falcon GPUs behind the same drawer switch,

measure bidirectional streaming bandwidth (both directions saturated
simultaneously, as the CUDA sample does) and one-way small-write latency,
and report the link protocol in use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ComposableSystem
from ..fabric import RING_ORDER
from ..fabric.link import GB, Protocol, US
from ..fabric.nvlink import HYBRID_CUBE_MESH_EDGES

__all__ = ["P2PResult", "measure_pair", "table4"]

#: Bytes streamed per direction for the bandwidth measurement.
_BANDWIDTH_BYTES = 4 * GB


@dataclass(frozen=True)
class P2PResult:
    """One Table IV column."""

    pair_class: str
    bidirectional_bandwidth_gbs: float
    p2p_write_latency_us: float
    protocol: str


def measure_pair(system: ComposableSystem, a: str, b: str
                 ) -> tuple[float, float, str]:
    """(bidirectional GB/s, latency us, protocol) for one GPU pair."""
    env = system.env
    topo = system.topology
    t0 = env.now
    fwd = topo.transfer(a, b, _BANDWIDTH_BYTES, label="p2p")
    rev = topo.transfer(b, a, _BANDWIDTH_BYTES, label="p2p")
    env.run(until=env.all_of([fwd, rev]))
    elapsed = env.now - t0
    bandwidth = 2 * _BANDWIDTH_BYTES / elapsed / GB
    latency = topo.path_latency(a, b) / US
    route = topo.route(a, b)
    protocols = {seg.link.spec.protocol for seg in route.segments}
    if Protocol.NVLINK2 in protocols:
        protocol = "NVLink"
    elif protocols & {Protocol.CDFP}:
        protocol = "PCI-e 4.0"
    elif protocols & {Protocol.PCIE4}:
        protocol = "PCI-e 4.0"
    else:
        protocol = "PCI-e 3.0"
    return bandwidth, latency, protocol


def _mean_over_pairs(system_factory, pairs: list[tuple[str, str]],
                     label: str) -> P2PResult:
    bandwidths, latencies, protocol = [], [], ""
    for a, b in pairs:
        system = system_factory()
        bw, lat, protocol = measure_pair(system, a, b)
        bandwidths.append(bw)
        latencies.append(lat)
    return P2PResult(
        pair_class=label,
        bidirectional_bandwidth_gbs=sum(bandwidths) / len(bandwidths),
        p2p_write_latency_us=sum(latencies) / len(latencies),
        protocol=protocol,
    )


def table4() -> dict[str, P2PResult]:
    """Reproduce Table IV: L-L, F-L, F-F bandwidth/latency/protocol."""
    factory = ComposableSystem

    # L-L: every NVLink-adjacent local pair (the mesh mixes 1- and
    # 2-brick pairs; the paper reports the average).
    ll_pairs = [(f"host0/gpu{a}", f"host0/gpu{b}")
                for a, b, _ in HYBRID_CUBE_MESH_EDGES]

    # F-L: local GPU <-> falcon GPU across the host adapter.
    fl_pairs = [("host0/gpu0", "falcon0/gpu0"),
                ("host0/gpu4", "falcon0/gpu2"),
                ("host0/gpu1", "falcon0/gpu5")]

    # F-F: falcon GPUs behind the same drawer switch.
    ff_pairs = [("falcon0/gpu0", "falcon0/gpu1"),
                ("falcon0/gpu2", "falcon0/gpu3"),
                ("falcon0/gpu4", "falcon0/gpu5")]

    return {
        "L-L": _mean_over_pairs(factory, ll_pairs, "L-L"),
        "F-L": _mean_over_pairs(factory, fl_pairs, "F-L"),
        "F-F": _mean_over_pairs(factory, ff_pairs, "F-F"),
    }
