"""Elasticity study: mid-run recomposition as an autoscaling strategy.

The reconfiguration study (PR 2) priced moving GPUs between *idle*
hosts; this study prices moving them under a *live* training job.  Using
:class:`~repro.elastic.ElasticTrainingJob` — fault-driven shrink, grow
onto freed chassis GPUs, virtual-node batch semantics — it answers three
questions the composable-system operator actually faces:

1. **What does a resize cost?** (:func:`reconfiguration_sweep`) —
   goodput vs. the number of mid-run recompositions, each paying a
   safe-point teardown plus the spliced state-redistribution traffic.
2. **What does elasticity buy over checkpoint-restart?**
   (:func:`lost_work_comparison`) — the same GPU failure handled by
   live-state recomposition vs. classic rollback: steps lost, goodput.
3. **How eagerly should a job chase capacity?**
   (:func:`autoscaler_comparison`) — an eager-grow policy tears the job
   down for every spare it sees, admissible or not; a hysteresis policy
   waits out flapping capacity.  Teardowns wasted on abandoned grows
   are the price of eagerness.

:func:`elastic_resize_run` is the acceptance scenario: one seeded run
takes a GPU failure (shrink 4 -> 2, the odd survivor parked back to the
spare pool) and a later operator grow (2 -> 4, reclaiming the parked
GPU plus a standby), with the effective global batch provably identical
at every optimizer step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..chaos import FaultEvent, FaultInjector
from ..core import ComposableSystem
from ..elastic import (
    AutoscalePolicy,
    EagerGrowPolicy,
    ElasticTrainingJob,
    HysteresisPolicy,
    VirtualBatchSpec,
)
from ..training import (
    FaultTolerantTrainingJob,
    ResilienceConfig,
    TrainingConfig,
)
from ..workloads import get_benchmark

__all__ = ["ElasticityRecord", "elastic_resize_run",
           "lost_work_comparison", "reconfiguration_sweep",
           "autoscaler_comparison", "elasticity_study"]

#: Virtual nodes for every study ring (divisors 1/2/4 are the feasible
#: worlds; the paper's drawer quad is the full deployment).
_VIRTUAL_NODES = 4


@dataclass(frozen=True)
class ElasticityRecord:
    """One (elastic or baseline) resilient run, JSON-able."""

    label: str
    benchmark: str
    completed: bool
    attempts: int
    faults: int
    resizes: int
    lost_steps: int
    total_steps: int
    wall_time: float
    goodput: float
    raw_throughput: Optional[float]
    final_world_size: int
    #: World size at each optimizer step, in global-step order.
    world_trajectory: tuple[int, ...]
    #: Effective global batch at each optimizer step — the elastic
    #: invariant: every entry must be identical across resizes.
    effective_batches: tuple[int, ...]
    #: Resize teardowns that bought nothing (inadmissible grows).
    grow_abandoned: int
    #: Mean detection-to-recomposition stall per resize, seconds.
    mean_recompose_s: float
    #: Mean estimated reshard-traffic makespan per resize, seconds.
    mean_reshard_s: float
    recovery_actions: tuple[str, ...]
    interrupted_reason: Optional[str] = None

    @property
    def batch_invariant(self) -> bool:
        return len(set(self.effective_batches)) <= 1

    def summary(self) -> dict:
        return {
            "label": self.label,
            "benchmark": self.benchmark,
            "completed": self.completed,
            "attempts": self.attempts,
            "faults": self.faults,
            "resizes": self.resizes,
            "lost_steps": self.lost_steps,
            "total_steps": self.total_steps,
            "wall_time_s": self.wall_time,
            "goodput_samples_s": self.goodput,
            "raw_throughput_samples_s": self.raw_throughput,
            "final_world_size": self.final_world_size,
            "world_trajectory": list(self.world_trajectory),
            "effective_batches": list(self.effective_batches),
            "batch_invariant": self.batch_invariant,
            "grow_abandoned": self.grow_abandoned,
            "mean_recompose_s": self.mean_recompose_s,
            "mean_reshard_s": self.mean_reshard_s,
            "recovery_actions": list(self.recovery_actions),
            "interrupted_reason": self.interrupted_reason,
        }


def _record(label: str, benchmark: str, job, result) -> ElasticityRecord:
    kinds = [a.kind for a in result.recovery_log]
    ledger = getattr(job, "step_ledger", [])
    resize_log = result.resize_log
    n = len(resize_log)
    reshard = [e.reshard_seconds for e in resize_log
               if e.reshard_seconds is not None]
    return ElasticityRecord(
        label=label,
        benchmark=benchmark,
        completed=result.completed,
        attempts=result.attempts,
        faults=result.faults,
        resizes=result.resizes,
        lost_steps=result.lost_steps,
        total_steps=result.total_steps,
        wall_time=result.wall_time,
        goodput=result.goodput,
        raw_throughput=result.raw_throughput,
        final_world_size=result.final_world_size,
        world_trajectory=tuple(w for _, w, _ in ledger),
        effective_batches=tuple(b for _, _, b in ledger),
        grow_abandoned=kinds.count("grow_abandoned"),
        mean_recompose_s=(sum(e.recompose_seconds for e in resize_log) / n
                          if n else 0.0),
        mean_reshard_s=(sum(reshard) / len(reshard) if reshard else 0.0),
        recovery_actions=tuple(kinds),
        interrupted_reason=result.interrupted_reason,
    )


def _resilience(**overrides) -> ResilienceConfig:
    defaults = dict(backoff_initial=0.05, reattach_attempts=2,
                    backoff_jitter=0.25)
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


def _config(benchmark: str, sim_steps: int,
            checkpoint_interval: int) -> TrainingConfig:
    return TrainingConfig(
        benchmark=get_benchmark(benchmark), global_batch=8,
        sim_steps=sim_steps, sim_checkpoints=0,
        checkpoint_interval_steps=checkpoint_interval)


def _elastic_job(system: ComposableSystem, gpus, config: TrainingConfig,
                 resilience: ResilienceConfig,
                 autoscaler: Optional[AutoscalePolicy] = None
                 ) -> ElasticTrainingJob:
    return ElasticTrainingJob(
        system.env, system.topology, system.host, gpus,
        system.host.scratch, config, resilience=resilience,
        inventory=system.inventory, event_log=system.mcs.log,
        virtual_batch=VirtualBatchSpec(
            _VIRTUAL_NODES, config.resolved_global_batch()),
        autoscaler=autoscaler)


def _injector(system: ComposableSystem) -> FaultInjector:
    return FaultInjector(system.env, system.topology,
                         falcon=system.falcon, event_log=system.mcs.log)


def _drop_at_step(ft, injector, node: str, at_step: int) -> None:
    """Arm a one-shot GPU drop when global step ``at_step`` completes."""
    fired = {}
    total = ft.config.sim_steps

    def arm(job, attempt):
        def on_step(steps_done, now):
            gstep = total - job.config.sim_steps + steps_done
            if gstep == at_step and "done" not in fired:
                fired["done"] = True
                injector.apply(FaultEvent(now, "gpu_drop", f"node:{node}"))
        job.add_step_listener(on_step)

    ft.on_attempt.append(arm)


def _resize_at_steps(ft, schedule: dict) -> None:
    """Latch resize requests when scheduled global steps complete.

    ``schedule`` maps global step -> "grow" | "shrink"; a shrink targets
    the current ring's last member (which the elastic job parks back to
    the spare pool, where a later grow can reclaim it).
    """
    fired = set()
    total = ft.config.sim_steps

    def arm(job, attempt):
        def on_step(steps_done, now):
            gstep = total - job.config.sim_steps + steps_done
            kind = schedule.get(gstep)
            if kind is None or gstep in fired:
                return
            fired.add(gstep)
            targets = (ft.gpus[-1].name,) if kind == "shrink" else ()
            ft.request_resize(kind, targets, reason=f"scheduled@{gstep}")
        job.add_step_listener(on_step)

    ft.on_attempt.append(arm)


def elastic_resize_run(benchmark: str = "resnet50", sim_steps: int = 10,
                       fail_step: int = 3, grow_step: int = 6
                       ) -> ElasticityRecord:
    """The acceptance scenario: survive one shrink and one grow.

    ``falcon0/gpu1`` drops at ``fail_step`` with hot-spare recovery
    disabled, so the ring shrinks 4 -> 2 (the odd survivor is parked to
    the spare pool to keep the world a divisor of the virtual-node
    count).  At ``grow_step`` an operator grow reclaims the parked GPU
    plus the standby spare, restoring 2 -> 4.  Every optimizer step in
    ``world_trajectory``/``effective_batches`` trains the same global
    batch.
    """
    system = ComposableSystem()
    system.install_spare_gpu(drawer=0)
    ft = _elastic_job(system, system.falcon_gpus[:4],
                      _config(benchmark, sim_steps, 4),
                      _resilience(allow_hot_spare=False))
    _drop_at_step(ft, _injector(system), "falcon0/gpu1", fail_step)
    _resize_at_steps(ft, {grow_step: "grow"})
    return _record("elastic-resize", benchmark, ft, ft.run())


def lost_work_comparison(benchmark: str = "resnet50",
                         sim_steps: int = 10, fail_step: int = 3,
                         checkpoint_interval: int = 4) -> dict:
    """Same GPU failure: live recomposition vs checkpoint-restart.

    The fault lands one step before the first checkpoint would commit.
    The baseline runtime rolls back to step 0 and replays; the elastic
    runtime redistributes live replicated state at the shrunk world and
    keeps going.  Both complete the same total steps at the same
    effective batch — only the lost work and goodput differ.
    """
    records = {}
    for label, elastic in (("elastic", True),
                           ("checkpoint-restart", False)):
        system = ComposableSystem()
        config = _config(benchmark, sim_steps, checkpoint_interval)
        resilience = _resilience(allow_hot_spare=False)
        if elastic:
            ft = _elastic_job(system, system.falcon_gpus[:4], config,
                              resilience)
        else:
            ft = FaultTolerantTrainingJob(
                system.env, system.topology, system.host,
                system.falcon_gpus[:4], system.host.scratch, config,
                resilience=resilience, inventory=system.inventory,
                event_log=system.mcs.log)
        _drop_at_step(ft, _injector(system), "falcon0/gpu1", fail_step)
        records[label] = _record(label, benchmark, ft, ft.run())
    records["lost_steps_saved"] = (
        records["checkpoint-restart"].lost_steps
        - records["elastic"].lost_steps)
    return records


def reconfiguration_sweep(benchmark: str = "resnet50",
                          sim_steps: int = 12,
                          frequencies: Sequence[int] = (0, 1, 2, 4)
                          ) -> list[ElasticityRecord]:
    """Goodput vs. number of mid-run recompositions.

    Each sweep cell schedules ``f`` controlled resizes, alternating
    shrink (a ring member handed back to the spare pool) and grow
    (spares reclaimed), evenly spaced across the run.  Every resize
    pays the safe-point teardown, the reshard splice, and — while
    shrunk — the smaller world's step time at the *same* effective
    batch, so goodput decays with frequency.
    """
    records = []
    for freq in frequencies:
        system = ComposableSystem()
        ft = _elastic_job(system, system.falcon_gpus[:4],
                          _config(benchmark, sim_steps, 0),
                          _resilience())
        schedule = {}
        for i in range(freq):
            step = max(1, round((i + 1) * sim_steps / (freq + 1)))
            schedule[min(step, sim_steps - 1)] = \
                "shrink" if i % 2 == 0 else "grow"
        _resize_at_steps(ft, schedule)
        records.append(_record(f"resizes={freq}", benchmark, ft,
                               ft.run()))
    return records


def autoscaler_comparison(benchmark: str = "resnet50",
                          sim_steps: int = 12, release_step: int = 6,
                          policies: Optional[dict] = None) -> dict:
    """Eager vs hysteresis growth against flapping spare capacity.

    The job starts at half width (2 of 4 virtual nodes).  One chassis
    GPU is free from the start — but alone it is *inadmissible* (a
    3-GPU world does not divide the virtual-node count), so growing on
    it buys nothing.  A second GPU, held by another tenant, is released
    at ``release_step``; from then on growing to full width is possible.
    The eager policy tears the job down for the lone spare at every
    step boundary (``grow_abandoned`` counts the waste); hysteresis
    holds until capacity has been stable, wasting far fewer teardowns
    for the same final world.
    """
    if policies is None:
        policies = {"eager": lambda: EagerGrowPolicy(),
                    "hysteresis": lambda: HysteresisPolicy(hold=3,
                                                           cooldown=3)}
    results = {}
    for label, make_policy in policies.items():
        system = ComposableSystem()
        # Half-width ring; gpu2 is free from the start, gpu3 stays
        # allocated (held elsewhere) until the release step frees it.
        system.inventory.detach("falcon0/gpu2")
        ft = _elastic_job(system, system.falcon_gpus[:2],
                          _config(benchmark, sim_steps, 0),
                          _resilience(), autoscaler=make_policy())

        released = {}

        def arm(job, attempt, _s=system, _ft=ft, _r=released):
            def on_step(steps_done, now):
                gstep = _ft.config.sim_steps - job.config.sim_steps \
                    + steps_done
                if gstep >= release_step and "done" not in _r:
                    _r["done"] = True
                    _s.inventory.detach("falcon0/gpu3")
            job.add_step_listener(on_step)

        ft.on_attempt.append(arm)
        results[label] = _record(f"autoscaler-{label}", benchmark, ft,
                                 ft.run())
    return results


def elasticity_study(benchmark: str = "resnet50", sim_steps: int = 12,
                     smoke: bool = False) -> dict:
    """The full elasticity bundle, as one JSON-able dict."""
    if smoke:
        sim_steps = min(sim_steps, 8)
    frequencies = (0, 2) if smoke else (0, 1, 2, 4)
    acceptance = elastic_resize_run(
        benchmark, sim_steps=max(sim_steps, 10))
    lost = lost_work_comparison(benchmark, sim_steps=max(sim_steps, 10))
    sweep = reconfiguration_sweep(benchmark, sim_steps=sim_steps,
                                  frequencies=frequencies)
    scalers = autoscaler_comparison(benchmark, sim_steps=sim_steps,
                                    release_step=sim_steps // 2)
    return {
        "benchmark": benchmark,
        "sim_steps": sim_steps,
        "smoke": smoke,
        "acceptance": acceptance.summary(),
        "lost_work": {
            "elastic": lost["elastic"].summary(),
            "checkpoint_restart": lost["checkpoint-restart"].summary(),
            "lost_steps_saved": lost["lost_steps_saved"],
        },
        "reconfiguration_sweep": [r.summary() for r in sweep],
        "autoscalers": {k: r.summary() for k, r in scalers.items()},
    }
