"""GPU-utilization traces over full runs (paper Fig. 9).

The paper's Fig. 9 plots each benchmark's GPU utilization across its
(truncated) training run on the local-GPU configuration, showing a
repeating high-utilization pattern with sharp periodic dips attributed to
synchronization and checkpointing.  This module runs each benchmark with
several checkpoints and returns the sampled utilization trace, plus
helpers to detect the dips programmatically.

The tracer is two-phase: a short probe run estimates the steady step
time, then the main run samples at one-step granularity — the paper's
wandb sampling is similarly coarse relative to a step, which is what
makes the plateau smooth and the checkpoint dips sharp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ComposableSystem
from ..training import DistributedDataParallel

__all__ = ["UtilizationTrace", "gpu_utilization_trace", "count_dips"]


@dataclass
class UtilizationTrace:
    """Mean-across-GPUs utilization samples for one benchmark run."""

    benchmark: str
    times: np.ndarray
    utilization: np.ndarray  # percent

    @property
    def mean(self) -> float:
        """Whole-run mean (checkpoint dips included)."""
        return float(np.nanmean(self.utilization))

    @property
    def plateau_mean(self) -> float:
        """Mean of the high-utilization plateau (samples above half the
        peak) — the level the paper's Fig. 9 curves sit at between dips."""
        values = self.utilization[~np.isnan(self.utilization)]
        if values.size == 0:
            return float("nan")
        threshold = 0.5 * values.max()
        plateau = values[values >= threshold]
        return float(plateau.mean()) if plateau.size else float("nan")

    @property
    def peak(self) -> float:
        return float(np.nanmax(self.utilization))


def _probe_step_time(benchmark: str, configuration: str) -> float:
    system = ComposableSystem()
    result = system.train(benchmark, configuration=configuration,
                          strategy=DistributedDataParallel(),
                          sim_steps=4, sim_checkpoints=0)
    return result.step_time


def gpu_utilization_trace(benchmark: str, configuration: str = "localGPUs",
                          sim_steps: int = 30, sim_checkpoints: int = 3,
                          sample_interval: float | None = None
                          ) -> UtilizationTrace:
    """Train with periodic checkpoints and return the utilization trace.

    ``sample_interval=None`` (default) samples at one-step granularity,
    estimated by a short probe run.
    """
    if sample_interval is None:
        sample_interval = max(1e-3, _probe_step_time(benchmark,
                                                     configuration))
    system = ComposableSystem()
    result = system.train(
        benchmark,
        configuration=configuration,
        strategy=DistributedDataParallel(),
        sim_steps=sim_steps,
        sim_checkpoints=sim_checkpoints,
        sample_interval=sample_interval,
    )
    series = list(result.collector.gpu_util.values())
    grid = series[0].times
    stacked = np.vstack([ts.resample(grid) for ts in series])
    mean_util = np.nanmean(stacked, axis=0)
    return UtilizationTrace(benchmark=benchmark, times=grid,
                            utilization=mean_util)


def count_dips(trace: UtilizationTrace, drop_below: float = 40.0,
               recover_above: float = 60.0) -> int:
    """Count sharp utilization dips (checkpoint/synchronization stalls).

    A dip is a fall below ``drop_below`` percent after having been above
    ``recover_above`` (hysteresis avoids double-counting noise).
    """
    dips = 0
    armed = False
    for value in trace.utilization:
        if np.isnan(value):
            continue
        if value >= recover_above:
            armed = True
        elif value <= drop_below and armed:
            dips += 1
            armed = False
    return dips
