"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables and figures
report; this module renders them with aligned columns so the pytest
-benchmark output is directly readable.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
