"""Performance-regression gate: fresh perfbench vs the committed baseline.

``BENCH_*.json`` files are the repo's perf ledger — each records
steps/second for every (configuration x variant) plan-evaluation cell
plus the simulated step time those cells produced.  This module turns
the newest committed ledger into a CI gate:

- **semantic drift** — ``sim_step_seconds`` is deterministic simulator
  output, identical across hosts; any relative drift beyond 1e-9 on a
  shared cell means the *model* changed, which a perf PR must not do
  silently.  Always fatal.
- **throughput regression** — ``speedup`` (fast path over event-loop
  executor) is the host-independent perf ratio; the absolute
  steps/second columns vary with CI hardware, so the gate compares the
  ratio and only fails when it drops below ``(1 - tolerance)`` of the
  baseline.  The default band is wide (35%) because CI runners are
  noisy; an injected 2x slowdown still lands far outside it.

Cells are compared on the *intersection* of (configuration, variant)
keys — a smoke run gates against the subset the full baseline also
measured, and new cells (no baseline yet) are reported but never fail.

``python -m repro regress [--baseline PATH] [--tolerance F]`` prints the
comparison table and exits non-zero on any failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "SEMANTIC_RTOL",
    "DEFAULT_TOLERANCE",
    "MIN_CHURN_SPEEDUP",
    "MIN_BATCHED_SPEEDUP",
    "CellComparison",
    "RegressionReport",
    "find_baseline",
    "load_report",
    "compare_reports",
    "run_regression",
]

#: Relative drift in ``sim_step_seconds`` beyond which the simulated
#: model itself changed (matches the fast-path equivalence tolerance).
SEMANTIC_RTOL = 1e-9
#: Default allowed fractional drop in the fast-path speedup ratio.
DEFAULT_TOLERANCE = 0.35
#: Floor for the incremental max-min solver's churn-microbench speedup
#: over the batch water-filler (the fleet-scale refactor's acceptance
#: bar; an absolute pin, so baseline and current runs may differ in
#: churn cycle count).
MIN_CHURN_SPEEDUP = 5.0
#: Floor for the batched tape-replay speedup over per-lane scalar
#: fast-path evaluation on the width-16 widened Fig. 16 grid (the
#: vectorized-grid acceptance bar; absolute, like the churn pin).
MIN_BATCHED_SPEEDUP = 3.0


@dataclass
class CellComparison:
    """Baseline-vs-current verdict for one (configuration, variant)."""

    configuration: str
    variant: str
    baseline_sim_s: float
    current_sim_s: float
    baseline_speedup: float
    current_speedup: float
    semantic_rel_err: float
    speedup_ratio: float          # current / baseline
    semantic_ok: bool
    perf_ok: bool

    @property
    def ok(self) -> bool:
        return self.semantic_ok and self.perf_ok

    def as_dict(self) -> dict:
        return {
            "configuration": self.configuration,
            "variant": self.variant,
            "baseline_sim_s": self.baseline_sim_s,
            "current_sim_s": self.current_sim_s,
            "semantic_rel_err": self.semantic_rel_err,
            "baseline_speedup": self.baseline_speedup,
            "current_speedup": self.current_speedup,
            "speedup_ratio": self.speedup_ratio,
            "semantic_ok": self.semantic_ok,
            "perf_ok": self.perf_ok,
        }


@dataclass
class RegressionReport:
    """All cell comparisons plus the overall gate verdict."""

    cells: list
    tolerance: float
    baseline_path: Optional[str] = None
    #: (configuration, variant) keys present in only one report.
    uncovered: list = field(default_factory=list)
    #: flow-churn gate verdict (None when the current report predates
    #: the scenario).
    churn: Optional[dict] = None
    #: batched-grid gate verdict (None when the current report predates
    #: the scenario; old BENCH baselines never gate it).
    batched: Optional[dict] = None

    @property
    def ok(self) -> bool:
        cells_ok = bool(self.cells) and all(c.ok for c in self.cells)
        churn_ok = self.churn is None or self.churn["ok"]
        batched_ok = self.batched is None or self.batched["ok"]
        return cells_ok and churn_ok and batched_ok

    @property
    def failures(self) -> list:
        return [c for c in self.cells if not c.ok]

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "baseline": self.baseline_path,
            "cells": [c.as_dict() for c in self.cells],
            "uncovered": [list(k) for k in self.uncovered],
            "flow_churn": self.churn,
            "batched_grid": self.batched,
        }

    def render_text(self) -> str:
        lines = [
            f"perf regression gate (tolerance: speedup may drop "
            f"{self.tolerance:.0%}; sim drift limit {SEMANTIC_RTOL:g})",
        ]
        if self.baseline_path:
            lines.append(f"baseline: {self.baseline_path}")
        lines.append(
            f"  {'configuration':<13} {'variant':<14} {'sim drift':>10} "
            f"{'base spd':>9} {'now spd':>9} {'ratio':>7}  verdict")
        for c in self.cells:
            verdict = "OK" if c.ok else (
                "SEMANTIC DRIFT" if not c.semantic_ok else "REGRESSION")
            lines.append(
                f"  {c.configuration:<13} {c.variant:<14} "
                f"{c.semantic_rel_err:>10.2e} {c.baseline_speedup:>9.2f} "
                f"{c.current_speedup:>9.2f} {c.speedup_ratio:>7.2f}  "
                f"{verdict}")
        for key in self.uncovered:
            lines.append(f"  {key[0]:<13} {key[1]:<14} "
                         f"{'(no shared baseline cell)':>38}")
        if self.batched is not None:
            base = self.batched.get("baseline_speedup")
            lines.append(
                f"batched grid: {self.batched['lanes']} lanes, replay "
                f"{self.batched['speedup']:.1f}x over scalar fast path "
                f"(floor {MIN_BATCHED_SPEEDUP:g}x"
                + (f", baseline {base:.1f}x" if base else "")
                + f", values_match={self.batched['values_match']}) "
                + ("OK" if self.batched["ok"] else "FAIL"))
        if self.churn is not None:
            base = self.churn.get("baseline_speedup")
            lines.append(
                f"flow churn: {self.churn['flows']} flows, incremental "
                f"{self.churn['speedup']:.1f}x over batch "
                f"(floor {MIN_CHURN_SPEEDUP:g}x"
                + (f", baseline {base:.1f}x" if base else "")
                + f", equivalent={self.churn['equivalent']}) "
                + ("OK" if self.churn["ok"] else "FAIL"))
        lines.append("gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def find_baseline(directory: Union[str, Path, None] = None
                  ) -> Optional[Path]:
    """Newest committed ``BENCH_*.json`` (lexicographic = chronological)."""
    root = Path(directory) if directory else Path.cwd()
    candidates = sorted(root.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def load_report(path: Union[str, Path]) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if "plan_eval" not in report:
        raise ValueError(f"{path}: not a perfbench report "
                         "(no 'plan_eval' section)")
    return report


def _cells_by_key(report: dict) -> dict:
    return {(row["configuration"], row["variant"]): row
            for row in report.get("plan_eval", [])}


def compare_reports(baseline: dict, current: dict,
                    tolerance: float = DEFAULT_TOLERANCE,
                    baseline_path: Optional[str] = None
                    ) -> RegressionReport:
    """Gate a fresh perfbench report against a baseline report."""
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    base_cells = _cells_by_key(baseline)
    cur_cells = _cells_by_key(current)
    shared = sorted(set(base_cells) & set(cur_cells))
    uncovered = sorted((set(base_cells) | set(cur_cells)) - set(shared))
    cells = []
    for key in shared:
        b, c = base_cells[key], cur_cells[key]
        sim_b, sim_c = b["sim_step_seconds"], c["sim_step_seconds"]
        rel = abs(sim_c - sim_b) / abs(sim_b) if sim_b else (
            0.0 if sim_c == sim_b else float("inf"))
        spd_b, spd_c = b["speedup"], c["speedup"]
        ratio = spd_c / spd_b if spd_b else float("inf")
        cells.append(CellComparison(
            configuration=key[0], variant=key[1],
            baseline_sim_s=sim_b, current_sim_s=sim_c,
            baseline_speedup=spd_b, current_speedup=spd_c,
            semantic_rel_err=rel, speedup_ratio=ratio,
            semantic_ok=rel <= SEMANTIC_RTOL,
            perf_ok=ratio >= 1.0 - tolerance))
    return RegressionReport(cells=cells, tolerance=tolerance,
                            baseline_path=baseline_path,
                            uncovered=uncovered,
                            churn=_gate_churn(baseline, current),
                            batched=_gate_batched(baseline, current))


def _gate_churn(baseline: dict, current: dict) -> Optional[dict]:
    """Pin the incremental-solver speedup to its absolute floor.

    The churn microbench compares two legs of the *same* run on the
    same host, so its speedup is host-independent (like the plan-eval
    ratio) and is gated against ``MIN_CHURN_SPEEDUP`` rather than
    against the baseline's value; the baseline figure is reported for
    context only.  Reports predating the scenario gate nothing.
    """
    scenario = current.get("flow_churn")
    if scenario is None:
        return None
    base = baseline.get("flow_churn") or {}
    speedup = scenario.get("speedup", 0.0)
    equivalent = bool(scenario.get("equivalent"))
    return {
        "flows": scenario.get("flows"),
        "churn_ops": scenario.get("churn_ops"),
        "speedup": speedup,
        "equivalent": equivalent,
        "baseline_speedup": base.get("speedup"),
        "floor": MIN_CHURN_SPEEDUP,
        "ok": equivalent and speedup >= MIN_CHURN_SPEEDUP,
    }


def _gate_batched(baseline: dict, current: dict) -> Optional[dict]:
    """Pin the batched-replay speedup to its absolute floor.

    Like the churn pin, the batched grid compares two legs of the same
    run on the same host, so the ratio is gated against
    :data:`MIN_BATCHED_SPEEDUP` rather than against the baseline (the
    baseline figure is context only — BENCH ledgers that predate the
    scenario simply lack the key and gate nothing on it).  Equivalence
    (``values_match`` at 1e-9) is part of the verdict: a fast replay
    that drifts from the scalar fast path is a failure, not a win.
    """
    scenario = current.get("batched_grid")
    if scenario is None:
        return None
    base = baseline.get("batched_grid") or {}
    speedup = scenario.get("speedup_vs_scalar", 0.0)
    values_match = bool(scenario.get("values_match"))
    return {
        "lanes": scenario.get("lanes"),
        "cells": scenario.get("cells"),
        "speedup": speedup,
        "values_match": values_match,
        "baseline_speedup": base.get("speedup_vs_scalar"),
        "floor": MIN_BATCHED_SPEEDUP,
        "ok": values_match and speedup >= MIN_BATCHED_SPEEDUP,
    }


def run_regression(baseline_path: Union[str, Path, None] = None,
                   tolerance: float = DEFAULT_TOLERANCE,
                   smoke: bool = True,
                   current: Optional[dict] = None) -> RegressionReport:
    """Run a fresh perfbench and gate it against the committed baseline.

    ``current`` injects a pre-built report (tests use this to fake a
    slowdown); by default a fresh ``perfbench --smoke`` run is taken.
    """
    if baseline_path is None:
        baseline_path = find_baseline()
        if baseline_path is None:
            raise FileNotFoundError(
                "no BENCH_*.json baseline found in the current "
                "directory; pass --baseline explicitly")
    baseline = load_report(baseline_path)
    if current is None:
        from .perfbench import run_perfbench
        current = run_perfbench(smoke=smoke)
    return compare_reports(baseline, current, tolerance=tolerance,
                           baseline_path=str(baseline_path))
