"""Bottleneck profiling of benchmark x strategy x backend cells.

Glue between the profiler engine (:mod:`repro.telemetry.profile`) and
the experiment harness: build the same :class:`TrainingJob` a sweep
cell would run, profile it end to end (traced run + plan-level what-if
ceilings), and emit the :class:`BottleneckReport` the paper's Figs.
11/16 narrative reads off — which category dominates the step, and how
much a cheaper fabric/kernel/storage tier could buy.

Two entry points:

- :func:`profile_cell` — the full treatment for one cell (the ``repro
  profile`` command): run the job under the profiler, reconcile against
  ``TrainingResult.total_time``, compute what-if ceilings with true
  fast-path re-evaluation on throwaway systems.
- :func:`bottleneck_labels` — cheap plan-level labels for every cell of
  a Fig. 16-style grid (the ``--profile`` flag on ``fig16`` /
  ``fig16-opt``): one fast-path evaluation + critical-path walk per
  cell, no event-loop simulation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..telemetry.profile import (
    SCALE_BUCKETS,
    BottleneckReport,
    profile_plan,
    profile_run,
    what_if,
)

__all__ = ["profile_cell", "profile_plan_for_job", "bottleneck_labels",
           "STRATEGY_NAMES"]

#: CLI strategy names -> training strategy factories (resolved lazily).
STRATEGY_NAMES = ("dp", "ddp", "sharded", "pipeline", "tp", "2d", "fsdp")


def _strategy_factory(name: str):
    from ..training import STRATEGY_REGISTRY
    try:
        return STRATEGY_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"one of {tuple(STRATEGY_REGISTRY)}") from None


def _build_cell_job(benchmark: str, configuration: str, strategy: str,
                    sim_steps: Optional[int] = None,
                    plan_passes: Optional[str] = None,
                    global_batch: Optional[int] = None,
                    accumulation_steps: int = 1):
    """One cell's TrainingJob on a fresh ComposableSystem (never run)."""
    from ..core import ComposableSystem
    from ..training import TrainingConfig, TrainingJob
    from ..workloads import get_benchmark

    system = ComposableSystem()
    active = system.configure(configuration)
    kwargs = {}
    if sim_steps is not None:
        kwargs["sim_steps"] = sim_steps
    if global_batch is not None:
        kwargs["global_batch"] = global_batch
    config = TrainingConfig(
        benchmark=get_benchmark(benchmark),
        strategy=_strategy_factory(strategy)(),
        plan_passes=plan_passes,
        accumulation_steps=accumulation_steps,
        **kwargs)
    job = TrainingJob(system.env, system.topology, system.host,
                      list(active.gpus), active.storage, config)
    return job


def profile_plan_for_job(job):
    """Plan-level profile of an un-run job's step plan (cheap: one
    fast-path evaluation + critical-path walk, no event simulation)."""
    return profile_plan(job.step_plan, ctx=job._exec_ctx)


def profile_cell(benchmark: str, configuration: str, strategy: str = "ddp",
                 sim_steps: Optional[int] = None,
                 plan_passes: Optional[str] = None,
                 what_if_buckets: Sequence[str] = SCALE_BUCKETS,
                 evaluate_what_ifs: bool = True,
                 global_batch: Optional[int] = None,
                 accumulation_steps: int = 1) -> BottleneckReport:
    """Profile one benchmark x strategy x configuration cell fully.

    Runs the cell's training job under the profiler (absolute per-op
    times captured via the executor's completion hook), then computes
    what-if ceilings on the step plan: the relaxation prediction from
    the measured schedule, the Amdahl estimate from the critical-path
    share, and — when ``evaluate_what_ifs`` — a true re-evaluation of
    the rescaled plan on a *throwaway* identical system (the executor
    fallback advances device state, so each bucket gets a fresh one).
    """
    from ..plan.fastpath import fastpath_schedule

    job = _build_cell_job(benchmark, configuration, strategy,
                          sim_steps=sim_steps, plan_passes=plan_passes,
                          global_batch=global_batch,
                          accumulation_steps=accumulation_steps)
    plan = job.step_plan
    world = plan.world_size
    # The pure fast path never advances the environment, so the same
    # job can supply the plan-relative base timing and then be run.
    base = fastpath_schedule(plan, job._exec_ctx)
    plan_prof = profile_plan(plan, base, ctx=job._exec_ctx)
    run_prof = profile_run(job)

    what_ifs = []
    for bucket in what_if_buckets:
        eval_ctx = None
        if evaluate_what_ifs:
            throwaway = _build_cell_job(
                benchmark, configuration, strategy, sim_steps=sim_steps,
                plan_passes=plan_passes, global_batch=global_batch,
                accumulation_steps=accumulation_steps)
            eval_ctx = throwaway._exec_ctx
        what_ifs.append(what_if(plan, base, job._exec_ctx, bucket, 0.0,
                                cp_attr=plan_prof.attr,
                                evaluate=evaluate_what_ifs,
                                evaluate_ctx=eval_ctx))

    return BottleneckReport(
        benchmark=benchmark, strategy=strategy,
        configuration=configuration, world_size=world,
        label=run_prof.label, shares=run_prof.shares,
        plan_profile=plan_prof, run_profile=run_prof,
        what_ifs=what_ifs,
        meta={"sim_steps": job.config.sim_steps,
              "plan_passes": plan_passes,
              "plan_ops": len(plan.ops)})


def bottleneck_labels(configurations: Sequence[str] = ("localGPUs",
                                                       "falconGPUs"),
                      variants=None, benchmark: str = "bert-large",
                      plan_passes: Optional[str] = None) -> dict:
    """Plan-level bottleneck labels for a Fig. 16-style grid.

    For each configuration x variant cell, compile the variant's step
    plan on a fresh system, evaluate it once through the fast path, and
    label it from the critical-path attribution — no event-loop
    simulation, so annotating the whole grid costs milliseconds.
    Returns ``{configuration: {variant: {"label", "shares"}}}``.
    """
    from ..core import ComposableSystem
    from ..training import TrainingConfig, TrainingJob
    from ..workloads import get_benchmark

    if variants is None:
        from .software_opts import VARIANTS
        variants = VARIANTS
    grid: dict = {}
    for configuration in configurations:
        row: dict = {}
        for variant in variants:
            system = ComposableSystem()
            active = system.configure(configuration)
            config = TrainingConfig(
                benchmark=get_benchmark(benchmark),
                strategy=variant.strategy_factory(),
                policy=variant.policy,
                global_batch=variant.global_batch,
                plan_passes=plan_passes)
            job = TrainingJob(system.env, system.topology, system.host,
                              list(active.gpus), active.storage, config)
            prof = profile_plan(job.step_plan, ctx=job._exec_ctx)
            row[variant.name] = {
                "label": prof.label,
                "shares": {k: round(v, 4)
                           for k, v in prof.shares.items()},
                "makespan_s": prof.makespan,
            }
        grid[configuration] = row
    return grid
