"""Strategy x model x backend crossover matrix (``repro matrix``).

The paper's Figs. 11/16 compare a *fixed* strategy across backends; the
natural follow-up question is the converse — for each model, which
parallelization strategy wins on each backend, and where does the
winner *flip* between the NVLink-local chassis and the Falcon PCIe
fabric?  This module evaluates the full strategy grid (every entry of
:data:`repro.training.STRATEGY_REGISTRY`) over the benchmark suite on
both backends and reports that crossover frontier.

Strategies do not share one feasible operating point: tensor parallelism
replicates the batch on every rank while FSDP's sharding *frees* memory,
so each (model, strategy) cell first *fits* its own operating point —
the largest global batch (and smallest accumulation factor) whose
micro-batch passes the strategy's device-memory model — and cells are
then compared on **time per sample**, which normalizes away the batch
differences.

Cells run through the memoized parallel harness
(:mod:`repro.experiments.parallel`), so re-running the matrix after a
code change only recomputes what changed.  Each cell also carries its
plan-level story: total collective/P2P payload per step, and the
critical-path attribution (exposed sync seconds, bottleneck label) from
the plan profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "MATRIX_CONFIGURATIONS",
    "MATRIX_MODELS",
    "SMOKE_MODELS",
    "MatrixCell",
    "MatrixReport",
    "crossover_frontier",
    "format_matrix",
    "plan_comm_bytes",
    "run_matrix",
]

#: Backends compared by the frontier (paper's local vs composed chassis).
MATRIX_CONFIGURATIONS = ("localGPUs", "falconGPUs")

#: Full benchmark suite (paper Table 2).
MATRIX_MODELS = ("mobilenetv2", "resnet50", "yolov5l", "bert-base",
                 "bert-large")

#: Smoke slice: one comm-light and one comm-heavy model is enough to
#: exhibit a backend-dependent winner (asserted by the CI smoke job).
SMOKE_MODELS = ("resnet50", "bert-large")

#: Candidate accumulation factors, preferred order (plan size grows
#: linearly with accumulation, so smaller is better when both fit).
_ACCUMULATIONS = (1, 2, 4, 8)


@dataclass
class MatrixCell:
    """One (backend, model, strategy) evaluation."""

    configuration: str
    benchmark: str
    strategy: str
    fitted: bool
    #: Why the cell was skipped (memory / divisibility), when not fitted.
    reason: Optional[str] = None
    global_batch: Optional[int] = None
    accumulation_steps: int = 1
    step_time: Optional[float] = None
    throughput: Optional[float] = None
    #: The frontier metric: seconds of training per sample.
    time_per_sample: Optional[float] = None
    gpu_utilization: Optional[float] = None
    #: Total collective + P2P payload in one step plan (all micro-steps).
    comm_bytes_per_step: Optional[float] = None
    #: Critical-path comm seconds (sync time not hidden under compute).
    exposed_comm_s: Optional[float] = None
    label: Optional[str] = None
    shares: dict = field(default_factory=dict)
    plan_ops: Optional[int] = None

    def as_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class MatrixReport:
    """The full grid plus its crossover frontier."""

    configurations: tuple
    models: tuple
    strategies: tuple
    sim_steps: int
    plan_passes: Optional[str]
    cells: list
    #: ``{configuration: {model: winning strategy name}}``.
    frontier: dict
    #: Models whose winner differs between the two backends.
    crossover_models: list

    def cell(self, configuration: str, benchmark: str,
             strategy: str) -> Optional[MatrixCell]:
        for c in self.cells:
            if (c.configuration == configuration
                    and c.benchmark == benchmark
                    and c.strategy == strategy):
                return c
        return None

    def as_dict(self) -> dict:
        return {
            "configurations": list(self.configurations),
            "models": list(self.models),
            "strategies": list(self.strategies),
            "sim_steps": self.sim_steps,
            "plan_passes": self.plan_passes,
            "cells": [c.as_dict() for c in self.cells],
            "frontier": self.frontier,
            "crossover_models": self.crossover_models,
        }


def plan_comm_bytes(plan) -> float:
    """Total fabric payload (collectives + P2P copies) in one plan."""
    from ..plan import Collective, P2PCopy

    return float(sum(op.bytes for op in plan
                     if isinstance(op, (Collective, P2PCopy))))


def _fit_operating_point(benchmark: str, configuration: str,
                         strategy: str, sim_steps: int,
                         plan_passes: Optional[str]):
    """Largest feasible (global_batch, accumulation) for one cell.

    Walks candidate operating points from the benchmark's native global
    batch downward (halving) and across accumulation factors, and
    accepts the first whose :class:`TrainingJob` actually constructs —
    job construction runs the strategy's divisibility and device-memory
    checks and compiles the step plan, so a returned job is known-good
    and its plan feeds the cell's comm/critical-path statistics.

    Returns ``(job, global_batch, accumulation, None)`` on success or
    ``(None, None, None, reason)`` when no candidate fits.
    """
    from ..workloads import get_benchmark
    from .profiling import _build_cell_job

    native = get_benchmark(benchmark).global_batch
    batches = []
    gb = native
    while gb >= 1:
        batches.append(gb)
        if gb == 1:
            break
        gb = max(1, gb // 2)
    reason = None
    for gb in batches:
        for acc in _ACCUMULATIONS:
            try:
                job = _build_cell_job(
                    benchmark, configuration, strategy,
                    sim_steps=sim_steps, plan_passes=plan_passes,
                    global_batch=gb, accumulation_steps=acc)
            except (ValueError, MemoryError) as exc:
                if reason is None:
                    reason = str(exc)
                continue
            return job, gb, acc, None
    return None, None, None, reason or "no feasible operating point"


def crossover_frontier(cells: Sequence[MatrixCell],
                       configurations: Sequence[str]) -> tuple:
    """Winner per (configuration, model) and the models that flip.

    Returns ``(frontier, crossover_models)`` where the winner minimizes
    time per sample among that model's fitted cells on that backend.
    """
    frontier: dict = {}
    for cell in cells:
        if not cell.fitted or cell.time_per_sample is None:
            continue
        row = frontier.setdefault(cell.configuration, {})
        best = row.get(cell.benchmark)
        if best is None or cell.time_per_sample < best[1]:
            row[cell.benchmark] = (cell.strategy, cell.time_per_sample)
    winners = {cfg: {model: entry[0] for model, entry in row.items()}
               for cfg, row in frontier.items()}
    crossover = []
    if len(configurations) >= 2:
        first, second = configurations[0], configurations[1]
        left = winners.get(first, {})
        right = winners.get(second, {})
        crossover = sorted(model for model in left
                           if model in right
                           and left[model] != right[model])
    return winners, crossover


def run_matrix(models: Sequence[str] = MATRIX_MODELS,
               strategies: Optional[Sequence[str]] = None,
               configurations: Sequence[str] = MATRIX_CONFIGURATIONS,
               sim_steps: int = 6,
               plan_passes: Optional[str] = None,
               jobs: int = 1,
               cache=None,
               progress=None) -> MatrixReport:
    """Evaluate the strategy x model grid on each backend.

    ``strategies`` defaults to every registered strategy.  ``cache`` and
    ``jobs`` plug into :func:`repro.experiments.run_cells` exactly as
    the figure studies do; ``progress`` is an optional callable fed one
    line per fitted/skipped cell.
    """
    from ..training import STRATEGY_REGISTRY
    from .parallel import experiment_cell, record_from_value, run_cells
    from .profiling import profile_plan_for_job

    if strategies is None:
        strategies = tuple(STRATEGY_REGISTRY)
    unknown = [s for s in strategies if s not in STRATEGY_REGISTRY]
    if unknown:
        raise ValueError(f"unknown strategies {unknown!r}; "
                         f"one of {tuple(STRATEGY_REGISTRY)}")

    say = progress if progress is not None else (lambda line: None)
    cells: list = []
    runnable: list = []   # (index into cells, harness cell dict)
    for configuration in configurations:
        for model in models:
            for strategy in strategies:
                job, gb, acc, reason = _fit_operating_point(
                    model, configuration, strategy, sim_steps,
                    plan_passes)
                if job is None:
                    cells.append(MatrixCell(
                        configuration=configuration, benchmark=model,
                        strategy=strategy, fitted=False, reason=reason))
                    say(f"skip {configuration}/{model}/{strategy}: "
                        f"{reason}")
                    continue
                plan = job.step_plan
                prof = profile_plan_for_job(job)
                cell = MatrixCell(
                    configuration=configuration, benchmark=model,
                    strategy=strategy, fitted=True,
                    global_batch=gb, accumulation_steps=acc,
                    comm_bytes_per_step=plan_comm_bytes(plan),
                    exposed_comm_s=prof.attr.seconds.get("comm", 0.0),
                    label=prof.label,
                    shares={k: round(v, 4)
                            for k, v in prof.shares.items()},
                    plan_ops=len(plan.ops))
                cells.append(cell)
                harness_cell = experiment_cell(
                    model, configuration,
                    strategy=STRATEGY_REGISTRY[strategy](),
                    global_batch=gb, sim_steps=sim_steps,
                    accumulation_steps=acc, plan_passes=plan_passes)
                runnable.append((len(cells) - 1, harness_cell))
                say(f"fit  {configuration}/{model}/{strategy}: "
                    f"batch {gb} x acc {acc}")

    values = run_cells([c for _i, c in runnable], jobs=jobs, cache=cache)
    for (index, _cell), value in zip(runnable, values):
        record = record_from_value(value)
        cell = cells[index]
        cell.step_time = record.step_time
        cell.throughput = record.throughput
        cell.time_per_sample = (1.0 / record.throughput
                                if record.throughput else None)
        cell.gpu_utilization = record.gpu_utilization

    frontier, crossover = crossover_frontier(cells, configurations)
    return MatrixReport(
        configurations=tuple(configurations), models=tuple(models),
        strategies=tuple(strategies), sim_steps=sim_steps,
        plan_passes=plan_passes, cells=cells, frontier=frontier,
        crossover_models=crossover)


def format_matrix(report: MatrixReport) -> str:
    """Human-readable grid: one table per backend, then the frontier."""
    lines: list = []
    for configuration in report.configurations:
        lines.append(f"== {configuration} ==")
        header = (f"{'model':<13} {'strategy':<9} {'batch':>6} "
                  f"{'acc':>3} {'step(s)':>9} {'s/sample':>10} "
                  f"{'comm GB':>8} {'sync(s)':>8}  label")
        lines.append(header)
        for model in report.models:
            for strategy in report.strategies:
                cell = report.cell(configuration, model, strategy)
                if cell is None:
                    continue
                if not cell.fitted:
                    lines.append(f"{model:<13} {strategy:<9} "
                                 f"{'—':>6} {'—':>3}   (skipped: "
                                 f"{cell.reason})")
                    continue
                step = (f"{cell.step_time:.4f}"
                        if cell.step_time is not None else "—")
                tps = (f"{cell.time_per_sample * 1e3:.3f}ms"
                       if cell.time_per_sample is not None else "—")
                comm = f"{cell.comm_bytes_per_step / 1e9:.2f}"
                sync = f"{cell.exposed_comm_s:.4f}"
                lines.append(
                    f"{model:<13} {strategy:<9} "
                    f"{cell.global_batch:>6} {cell.accumulation_steps:>3} "
                    f"{step:>9} {tps:>10} {comm:>8} {sync:>8}  "
                    f"{cell.label}")
        lines.append("")
    lines.append("-- crossover frontier (winner by time/sample) --")
    for model in report.models:
        winners = [report.frontier.get(cfg, {}).get(model, "—")
                   for cfg in report.configurations]
        flip = "  <-- crossover" if model in report.crossover_models \
            else ""
        pairs = ", ".join(f"{cfg}: {w}" for cfg, w
                          in zip(report.configurations, winners))
        lines.append(f"{model:<13} {pairs}{flip}")
    return "\n".join(lines)
