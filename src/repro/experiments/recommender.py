"""Topology recommendation framework (paper §VI future work).

"[We plan to] build a system framework that can take the input of various
configured runs, and recommend the optimal system level topology for AI
and HPC workloads."  This module is that framework over the simulator:

1. run (or accept) one instrumented record per candidate configuration,
2. price each configuration — locally attached NVLink GPUs are the
   scarce premium resource, Falcon-attached GPUs the cheap flexible pool,
3. recommend the *cheapest* configuration whose slowdown against the
   fastest stays within a tolerance — the paper's own decision rule
   ("overhead is still acceptable given the flexibility").

The output carries the full scoring table so an operator can audit the
decision, plus a one-line rationale per rejected candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .runner import ExperimentRecord, run_configuration
from .sweeps import GPU_CONFIGS, STORAGE_CONFIGS

__all__ = ["ResourcePricing", "ScoredConfiguration", "Recommendation",
           "TopologyRecommender"]


@dataclass(frozen=True)
class ResourcePricing:
    """Relative cost units per resource class.

    Defaults reflect the composability pitch: pooled PCIe GPUs are
    cheaper to provision than NVLink-soldered ones (no host coupling,
    independent refresh cycles), and NVMe is cheap either way.
    """

    local_gpu: float = 1.00
    falcon_gpu: float = 0.70
    local_nvme: float = 0.08
    falcon_nvme: float = 0.06
    scratch: float = 0.00

    def configuration_cost(self, configuration: str) -> float:
        """Cost units consumed by one Table III configuration."""
        costs = {
            "localGPUs": 8 * self.local_gpu + self.scratch,
            "hybridGPUs": 4 * self.local_gpu + 4 * self.falcon_gpu
            + self.scratch,
            "falconGPUs": 8 * self.falcon_gpu + self.scratch,
            "localNVMe": 8 * self.local_gpu + self.local_nvme,
            "falconNVMe": 8 * self.local_gpu + self.falcon_nvme,
        }
        try:
            return costs[configuration]
        except KeyError:
            raise KeyError(f"no pricing for configuration "
                           f"{configuration!r}") from None


@dataclass(frozen=True)
class ScoredConfiguration:
    """One candidate with its performance and economics."""

    configuration: str
    total_time: float
    throughput: float
    cost_units: float
    slowdown_pct: float           # vs fastest candidate
    throughput_per_cost: float
    acceptable: bool
    note: str


@dataclass(frozen=True)
class Recommendation:
    """The framework's verdict for one workload."""

    benchmark: str
    recommended: str
    tolerance_pct: float
    candidates: tuple[ScoredConfiguration, ...]

    def table_rows(self) -> list[tuple]:
        return [(("->" if c.configuration == self.recommended else "  ")
                 + c.configuration,
                 round(c.total_time, 1), round(c.throughput, 1),
                 round(c.cost_units, 2), round(c.slowdown_pct, 2),
                 round(c.throughput_per_cost, 1), c.note)
                for c in self.candidates]


class TopologyRecommender:
    """Recommends the cheapest acceptable configuration per workload."""

    def __init__(self, pricing: Optional[ResourcePricing] = None,
                 tolerance_pct: float = 7.0):
        if tolerance_pct < 0:
            raise ValueError("tolerance must be non-negative")
        self.pricing = pricing or ResourcePricing()
        self.tolerance_pct = tolerance_pct

    # -- entry points -----------------------------------------------------
    def evaluate(self, benchmark: str,
                 configurations: Iterable[str] = GPU_CONFIGS,
                 sim_steps: int = 8) -> Recommendation:
        """Run the candidate configurations and recommend one."""
        records = [run_configuration(benchmark, config,
                                     sim_steps=sim_steps)
                   for config in configurations]
        return self.recommend_from_records(records)

    def recommend_from_records(self, records: list[ExperimentRecord]
                               ) -> Recommendation:
        """Recommend from already-measured runs (the paper's framing:
        'take the input of various configured runs')."""
        if not records:
            raise ValueError("no candidate runs supplied")
        benchmarks = {r.benchmark for r in records}
        if len(benchmarks) != 1:
            raise ValueError(
                f"records span multiple benchmarks: {sorted(benchmarks)}")
        fastest = min(r.total_time for r in records)
        scored: list[ScoredConfiguration] = []
        for record in records:
            cost = self.pricing.configuration_cost(record.configuration)
            slowdown = 100.0 * (record.total_time / fastest - 1.0)
            acceptable = slowdown <= self.tolerance_pct
            note = ("within tolerance" if acceptable else
                    f"{slowdown:.0f}% slower than best")
            scored.append(ScoredConfiguration(
                configuration=record.configuration,
                total_time=record.total_time,
                throughput=record.throughput,
                cost_units=cost,
                slowdown_pct=slowdown,
                throughput_per_cost=record.throughput / cost
                if cost > 0 else float("inf"),
                acceptable=acceptable,
                note=note,
            ))
        acceptable = [c for c in scored if c.acceptable]
        pick = min(acceptable, key=lambda c: (c.cost_units, c.total_time))
        return Recommendation(
            benchmark=benchmarks.pop(),
            recommended=pick.configuration,
            tolerance_pct=self.tolerance_pct,
            candidates=tuple(sorted(scored,
                                    key=lambda c: c.cost_units)),
        )
