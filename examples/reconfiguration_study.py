#!/usr/bin/env python3
"""Composability in action: dynamic reconfiguration via the MCS.

Walks the management-plane workflow the paper describes (§II-B/§II-D):

1. an administrator creates a user and grants them falcon devices,
2. the user attaches GPUs to their host and runs a training job,
3. the chassis switches to advanced mode and devices are reallocated
   on the fly,
4. the allocation is exported as a configuration file and re-imported,
5. the audit event log shows every step.

Run:  python examples/reconfiguration_study.py
"""

import json

from repro import ComposableSystem
from repro.fabric import FalconMode
from repro.experiments import render_table


def main() -> None:
    system = ComposableSystem(falcon_mode=FalconMode.ADVANCED)
    mcs = system.mcs
    falcon = system.falcon

    # --- administrator sets up a tenant -------------------------------
    mcs.create_user("admin", "alice")
    mcs.grant_host("admin", "alice", "host0")
    for gpu in system.falcon_gpus[:4]:
        falcon.deallocate(gpu.name)            # free from default owner
        mcs.grant_device("admin", "alice", gpu.name)
    mcs.login("alice")

    # --- the user attaches their devices ------------------------------
    for gpu in system.falcon_gpus[:4]:
        mcs.attach("alice", gpu.name, "host0")
    print("alice's devices:", falcon.devices_of("host0")[:4], "...")

    # --- run a hybrid training job on the composed system -------------
    result = system.train("bert-base", configuration="hybridGPUs",
                          sim_steps=6)
    print(f"\nhybrid BERT-base: {result.step_time * 1e3:.1f} ms/step, "
          f"{result.throughput:.0f} seq/s")

    # --- dynamic reallocation (advanced mode) --------------------------
    gpu = system.falcon_gpus[0]
    falcon.reallocate(gpu.name, "host0")
    print(f"\nreallocated {gpu.name} on the fly "
          f"(owner={falcon.owner_of(gpu.name)})")

    # --- configuration export / import --------------------------------
    config = mcs.export_configuration("falcon0")
    blob = json.dumps(config, indent=2)
    print(f"\nexported configuration ({len(blob)} bytes of JSON)")
    mcs.import_configuration("admin", "falcon0", json.loads(blob))
    print("re-imported configuration: allocations restored")

    # --- the audit log -------------------------------------------------
    events = mcs.log.tail(8)
    print("\n" + render_table(
        ["t", "event", "actor"],
        [(round(e.time, 3), e.kind, e.actor) for e in events],
        title="Event log (last 8 entries)",
    ))

    # --- resource list (the management GUI's list view) ----------------
    occupied = [r for r in mcs.resource_list() if r["device"]]
    print(f"\n{len(occupied)} of 32 slots occupied across the chassis")


if __name__ == "__main__":
    main()
