#!/usr/bin/env python3
"""Storage study: local scratch vs local NVMe vs Falcon-attached NVMe.

Reproduces the paper's Fig. 15 experiment on two contrasting benchmarks:
BERT-large (multi-gigabyte checkpoints — storage-sensitive) and
MobileNetV2 (ImageNet staging — dataset-sensitive), and prints where the
bytes actually went.

Run:  python examples/storage_study.py
"""

from repro import ComposableSystem
from repro.experiments import render_table


def main() -> None:
    rows = []
    for key in ("bert-large", "mobilenetv2"):
        baseline = None
        for configuration in ("localGPUs", "localNVMe", "falconNVMe"):
            system = ComposableSystem()
            result = system.train(key, configuration=configuration,
                                  sim_steps=8)
            if baseline is None:
                baseline = result.total_time
            storage = system.configure(configuration).storage
            rows.append((
                key,
                configuration,
                storage.spec.name.split(" 4TB")[0],
                round(result.checkpoint_time, 2),
                round(result.staging_overhead, 1),
                round(100 * (result.total_time / baseline - 1), 2),
            ))

    print(render_table(
        ["Benchmark", "Configuration", "Storage", "Ckpt s",
         "Staging s", "% vs localGPUs"],
        rows,
        title="Fig 15-style storage study",
    ))
    print("\nNVMe shrinks BERT's multi-GB checkpoint stalls and ImageNet's")
    print("first-epoch staging; the falcon-attached drive pays only a")
    print("small PCIe-switching premium over the local one.")


if __name__ == "__main__":
    main()
