#!/usr/bin/env python3
"""Quickstart: train a DL benchmark on the composable system.

Builds the paper's test bed (one Supermicro host with 8 NVLink-meshed
V100s + one Falcon 4016 with 8 PCIe V100s and an NVMe drive), trains
ResNet-50 on the local and falcon-attached GPU pools, and prints the
training-time comparison — the essence of the paper's Fig. 11.

Run:  python examples/quickstart.py
"""

from repro import ComposableSystem
from repro.experiments import render_table


def main() -> None:
    rows = []
    baseline = None
    for configuration in ("localGPUs", "hybridGPUs", "falconGPUs"):
        system = ComposableSystem()          # fresh counters per run
        result = system.train("resnet50", configuration=configuration,
                              sim_steps=10)
        if baseline is None:
            baseline = result.total_time
        rows.append((
            configuration,
            round(result.step_time * 1e3, 1),
            round(result.throughput, 0),
            round(result.epoch_time, 1),
            round(100 * (result.total_time / baseline - 1), 2),
        ))

    print(render_table(
        ["Configuration", "Step ms", "Images/s", "Epoch s",
         "% vs localGPUs"],
        rows,
        title="ResNet-50 (ImageNet, FP16 + DDP) on the composable system",
    ))
    print("\nVision models pay <5% for PCIe-switched composability —")
    print("run examples/software_optimizations.py to see where it hurts.")


if __name__ == "__main__":
    main()
