#!/usr/bin/env python3
"""Co-design study: how many Falcon GPUs should a workload rent?

The paper positions the composable system as a *hardware/software
co-design platform*: try configurations before committing to a build.
This example uses the simulator the same way — it sweeps the number of
GPUs (local and falcon-attached) for two contrasting workloads and
reports throughput, efficiency vs a single GPU, and the knee of the
scaling curve, i.e. the configuration a capacity planner should pick.

Run:  python examples/capacity_planning.py
"""

from repro import ComposableSystem
from repro.experiments import render_table
from repro.fabric import RING_ORDER
from repro.training import DistributedDataParallel, TrainingConfig, \
    TrainingJob
from repro.workloads import get_benchmark


def run_with_gpus(benchmark_key: str, pool: str, n_gpus: int) -> float:
    """Throughput (samples/s) training on the first n GPUs of a pool."""
    system = ComposableSystem()
    # Local GPUs in hybrid-cube-mesh ring order so every NCCL ring hop
    # of a prefix stays on NVLink.
    local_ring = [system.host.gpus[i] for i in RING_ORDER]
    gpus = (local_ring if pool == "local"
            else system.falcon_gpus)[:n_gpus]
    bench = get_benchmark(benchmark_key)
    per_gpu = max(1, bench.global_batch // 8)
    config = TrainingConfig(
        benchmark=bench,
        strategy=DistributedDataParallel(),
        global_batch=per_gpu * n_gpus,
        sim_steps=6,
    )
    job = TrainingJob(system.env, system.topology, system.host, gpus,
                      system.host.scratch, config)
    return job.run().throughput


def main() -> None:
    for key in ("resnet50", "bert-large"):
        rows = []
        base = {}
        for pool in ("local", "falcon"):
            for n in (1, 2, 4, 8):
                tput = run_with_gpus(key, pool, n)
                base.setdefault(pool, tput)
                eff = tput / (n * base[pool])
                rows.append((pool, n, round(tput, 1),
                             round(100 * eff, 1)))
        print(render_table(
            ["Pool", "GPUs", "Samples/s", "Scaling eff %"],
            rows,
            title=f"{key}: scaling across GPU pools",
        ))
        falcon8 = next(r[2] for r in rows if r[0] == "falcon" and r[1] == 8)
        local8 = next(r[2] for r in rows if r[0] == "local" and r[1] == 8)
        verdict = ("falcon pool is fine — rent composable GPUs"
                   if falcon8 > 0.93 * local8 else
                   "keep this workload on NVLink-attached GPUs")
        print(f"  -> {verdict} ({falcon8 / local8 * 100:.0f}% of local "
              f"throughput at 8 GPUs)\n")


if __name__ == "__main__":
    main()
