#!/usr/bin/env python3
"""Advanced-mode tenancy: three hosts sharing one Falcon 4016.

The paper's future work ("evaluate other modes of the system, such as
advanced mode and dynamic reconfiguration") in action:

1. three hosts cable into drawer 0; GPUs are split 2/2 among two
   tenants with two held in reserve,
2. both tenants train concurrently — isolation holds (separate host
   ports, non-blocking drawer switch),
3. tenant 0's deadline tightens, so the operator hot-plugs the reserve
   GPUs over to it and reruns — the reconfiguration pays for itself in
   seconds,
4. the ring-placement study shows the one layout that *does* interfere:
   rings crossing the host ports.

Run:  python examples/multi_tenant.py
"""

from repro import ComposableCluster, JobSpec
from repro.experiments import render_table, ring_placement_study


def main() -> None:
    cluster = ComposableCluster(hosts=3)
    env = cluster.env

    # --- initial split: 2 GPUs each for tenants on host0/host1 --------
    env.run(until=cluster.reconfigure({
        "falcon0/gpu0": 0, "falcon0/gpu1": 0,
        "falcon0/gpu2": 1, "falcon0/gpu3": 1,
    }))

    results = cluster.run_jobs([
        JobSpec(0, "bert-base", ("falcon0/gpu0", "falcon0/gpu1"),
                global_batch=24, sim_steps=6),
        JobSpec(1, "resnet50", ("falcon0/gpu2", "falcon0/gpu3"),
                global_batch=256, sim_steps=6),
    ])
    print(render_table(
        ["Tenant", "Benchmark", "GPUs", "Step ms", "Samples/s"],
        [(i, r.benchmark_key, r.world_size,
          round(r.step_time * 1e3, 1), round(r.throughput, 1))
         for i, r in enumerate(results)],
        title="Concurrent tenants on one drawer (advanced mode)",
    ))

    # --- grow tenant 0 with the reserve GPUs ---------------------------
    t0 = env.now
    env.run(until=cluster.reconfigure({"falcon0/gpu4": 0,
                                       "falcon0/gpu5": 0}))
    print(f"\nhot-plugged 2 reserve GPUs to tenant 0 in "
          f"{env.now - t0:.0f} s")

    grown = cluster.run_jobs([
        JobSpec(0, "bert-base",
                ("falcon0/gpu0", "falcon0/gpu1",
                 "falcon0/gpu4", "falcon0/gpu5"),
                global_batch=48, sim_steps=6)])[0]
    print(f"tenant 0 at 4 GPUs: {grown.throughput:.0f} seq/s "
          f"(was {results[0].throughput:.0f})")

    # --- the layout that does interfere --------------------------------
    place = ring_placement_study(benchmark="bert-base", sim_steps=5)
    print(f"\nring placement (bert-base, 4 GPUs):")
    print(f"  within one drawer:      "
          f"{place.within_drawer * 1e3:7.1f} ms/step")
    print(f"  split across drawers:   "
          f"{place.across_drawers_solo * 1e3:7.1f} ms/step "
          f"(+{place.crossing_penalty_pct:.0f}%)")
    print(f"  ... with a co-tenant:   "
          f"{place.across_drawers_shared * 1e3:7.1f} ms/step "
          f"(+{place.interference_pct:.0f}% interference)")
    print("\nLesson: keep each tenant's ring inside one drawer; the")
    print("crossings are the only shared resource that bites.")


if __name__ == "__main__":
    main()
