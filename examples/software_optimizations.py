#!/usr/bin/env python3
"""Software-level optimizations on BERT-large (the paper's Fig. 16).

Compares DataParallel vs DistributedDataParallel, FP32 vs FP16 mixed
precision, and ZeRO-style sharded training (per-GPU batch 6 -> 10) on
both local and Falcon-attached GPUs.

Run:  python examples/software_optimizations.py
"""

from repro.experiments import (
    render_table,
    software_optimization_study,
    time_reduction_pct,
)


def main() -> None:
    study = software_optimization_study(sim_steps=5)

    rows = []
    for variant in study["localGPUs"]:
        rows.append((
            variant,
            round(study["localGPUs"][variant] * 1e3, 3),
            round(study["falconGPUs"][variant] * 1e3, 3),
        ))
    print(render_table(
        ["Variant", "local ms/sample", "falcon ms/sample"],
        rows,
        title="BERT-large fine-tuning: software-level optimizations",
    ))

    for config in ("localGPUs", "falconGPUs"):
        v = study[config]
        print(f"\n{config}:")
        print(f"  FP16 over FP32 (DDP):  "
              f"{time_reduction_pct(v['DDP-FP32'], v['DDP-FP16']):5.1f}% "
              f"training-time reduction")
        print(f"  DDP over DP (FP16):    "
              f"{time_reduction_pct(v['DP-FP16'], v['DDP-FP16']):5.1f}%")
        print(f"  Sharded over DDP-FP16: "
              f"{time_reduction_pct(v['DDP-FP16'], v['Sharded-FP16']):5.1f}%"
              f"  (per-GPU batch 6 -> 10)")

    print("\nMixed precision pays the most where communication is the")
    print("bottleneck — exactly the Falcon-attached configuration.")


if __name__ == "__main__":
    main()
